//! Event-scoped spans: measure one region, record into a histogram.
//!
//! A [`Span`] reads its [`Clock`] once at start and once at finish and
//! records the elapsed nanoseconds into a [`Histogram`]. It records on
//! drop too, so early returns inside the measured region are still
//! counted — call [`Span::finish`] explicitly only when the elapsed
//! value itself is wanted.

use mmcs_util::time::{SimDuration, SimTime};

use crate::clock::Clock;
use crate::histogram::Histogram;

/// An in-progress measurement. See the [module docs](self).
#[derive(Debug)]
pub struct Span<'a> {
    clock: &'a dyn Clock,
    histogram: &'a Histogram,
    start: SimTime,
    finished: bool,
}

impl<'a> Span<'a> {
    /// Starts measuring now.
    pub fn start(clock: &'a dyn Clock, histogram: &'a Histogram) -> Span<'a> {
        Span {
            clock,
            histogram,
            start: clock.now(),
            finished: false,
        }
    }

    /// Stops measuring, records the elapsed time, and returns it.
    pub fn finish(mut self) -> SimDuration {
        let elapsed = self.clock.now().saturating_duration_since(self.start);
        self.histogram.record_duration(elapsed);
        self.finished = true;
        elapsed
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.finished {
            let elapsed = self.clock.now().saturating_duration_since(self.start);
            self.histogram.record_duration(elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn finish_records_elapsed() {
        let clock = ManualClock::new();
        let hist = Histogram::new();
        let span = Span::start(&clock, &hist);
        clock.advance(SimDuration::from_micros(30));
        assert_eq!(span.finish(), SimDuration::from_micros(30));
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.sum(), 30_000);
    }

    #[test]
    fn drop_records_once() {
        let clock = ManualClock::new();
        let hist = Histogram::new();
        {
            let _span = Span::start(&clock, &hist);
            clock.advance(SimDuration::from_nanos(7));
        }
        assert_eq!(hist.snapshot().sum(), 7);
        assert_eq!(hist.snapshot().count(), 1);
    }

    #[test]
    fn finish_does_not_double_record() {
        let clock = ManualClock::new();
        let hist = Histogram::new();
        Span::start(&clock, &hist).finish();
        assert_eq!(hist.snapshot().count(), 1);
    }
}
