//! Workspace telemetry: lock-free metrics, fixed-memory histograms, and
//! event-scoped spans.
//!
//! The paper's evaluation (§3.2) is entirely observational — per-packet
//! delay and jitter at the receivers, broker capacity under load — and
//! the production Global-MMCS deployment leaned on MonALISA-style
//! monitoring agents to see its media paths. This crate is the
//! reproduction's equivalent: one small, dependency-free instrumentation
//! layer that every component (broker hot path, protocol gateways, XGSP
//! session server, chaos harness, Figure-3 bench) reports through.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost ≈ zero.** [`Counter`] and [`Gauge`] are single
//!    atomics padded to a cache line; [`Histogram::record`] is an index
//!    computation plus relaxed `fetch_add`s. Nothing allocates, nothing
//!    locks, so the broker's zero-allocation warm publish path (PR 1)
//!    stays zero-allocation with full instrumentation enabled.
//! 2. **Deterministic under the simulator.** Time enters only through
//!    the [`Clock`] trait: [`WallClock`] reads the single sanctioned
//!    monotonic source (`mmcs_util::time::monotonic_now`) under the
//!    threaded/network drivers, while [`ManualClock`] is driven from
//!    virtual [`SimTime`](mmcs_util::time::SimTime) in simulation, so a
//!    chaos run's metrics dump is bit-reproducible.
//! 3. **Bounded memory, bounded error.** [`Histogram`] is HDR-style
//!    log-linear: fixed 3776-bucket layout, exact below 64, relative
//!    quantile error ≤ [`Histogram::REL_ERROR`] above, exact `count`
//!    and `sum` so means are exact. Snapshots are sparse and mergeable
//!    across threads.
//!
//! A [`Registry`] names metrics and renders them as Prometheus text or
//! JSON; golden tests pin both formats.

/// The pluggable clock abstraction spans read time through.
pub mod clock;
/// The fixed-memory log-linear histogram and its mergeable snapshots.
pub mod histogram;
/// Reusable instrument bundles shared by the protocol gateways.
pub mod instruments;
/// Lock-free counter and gauge primitives.
pub mod metric;
/// The metric registry and its Prometheus/JSON exposition.
pub mod registry;
/// Event-scoped latency spans recorded into histograms.
pub mod span;

pub use clock::{Clock, ManualClock, WallClock};
pub use histogram::{Histogram, HistogramSnapshot};
pub use instruments::CallSetupMetrics;
pub use metric::{Counter, Gauge};
pub use registry::Registry;
pub use span::Span;
