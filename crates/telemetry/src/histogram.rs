//! A fixed-memory, lock-free, log-linear histogram (HDR-style).
//!
//! Values are `u64` in caller-chosen units (the workspace convention is
//! nanoseconds for latencies, plain counts for widths). The bucket
//! layout is fixed at construction:
//!
//! - values `0..64` get one bucket each (**exact**);
//! - every power-of-two octave `[2^o, 2^(o+1))` for `o in 6..=63` is
//!   split into 64 equal sub-buckets.
//!
//! That is `64 + 58 × 64 = 3776` buckets ≈ 30 KiB per histogram,
//! covering the full `u64` range with relative quantile error bounded
//! by [`Histogram::REL_ERROR`] (reported values are bucket midpoints,
//! so the real bound is 1/128; 1/64 is the documented, conservative
//! contract). `count` and `sum` are tracked exactly, so `mean()` has no
//! bucketing error at all — the Figure-3 cross-check relies on that.
//!
//! Recording is an index computation plus relaxed `fetch_add`s: no
//! locks, no allocation, safe from any number of threads. A concurrent
//! [`Histogram::snapshot`] may observe a record in `count` but not yet
//! in `sum` (the fields are independent atomics); totals are exact once
//! writers have quiesced, which is what the concurrency tests assert.

use std::sync::atomic::{AtomicU64, Ordering};

use mmcs_util::time::SimDuration;

/// Number of sub-buckets per octave, as a power of two.
const SUB_BITS: u32 = 6;
/// Sub-buckets per octave (64).
const SUBS: usize = 1 << SUB_BITS;
/// One exact bucket per value below `SUBS`.
const LINEAR: usize = SUBS;
/// Octaves `[2^o, 2^(o+1))` for `o in SUB_BITS..64`.
const OCTAVES: usize = 64 - SUB_BITS as usize;
/// Total bucket count: 3776.
const BUCKETS: usize = LINEAR + OCTAVES * SUBS;

/// Maps a value to its bucket index.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUBS as u64 {
        value as usize
    } else {
        let octave = 63 - value.leading_zeros();
        let sub = (value >> (octave - SUB_BITS)) & (SUBS as u64 - 1);
        LINEAR + (octave - SUB_BITS) as usize * SUBS + sub as usize
    }
}

/// Returns `(lo, width)`: the bucket covers `[lo, lo + width)`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < LINEAR {
        (index as u64, 1)
    } else {
        let rel = index - LINEAR;
        let octave = SUB_BITS + (rel / SUBS) as u32;
        let sub = (rel % SUBS) as u64;
        let width = 1u64 << (octave - SUB_BITS);
        ((1u64 << octave) + sub * width, width)
    }
}

/// The value reported for a bucket: its midpoint (exact when width 1).
fn bucket_midpoint(index: usize) -> u64 {
    let (lo, width) = bucket_bounds(index);
    lo + (width - 1) / 2
}

/// A lock-free log-bucketed histogram. See the [module docs](self).
pub struct Histogram {
    /// Always exactly `BUCKETS` long.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first record.
    min: AtomicU64,
    /// `0` until the first record (indistinguishable from a recorded 0;
    /// disambiguated via `count`).
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// Upper bound on the relative error of any reported quantile:
    /// `|reported - exact| ≤ exact × REL_ERROR`. Values below 64 are
    /// exact.
    pub const REL_ERROR: f64 = 1.0 / 64.0;

    /// Creates an empty histogram (~30 KiB, allocated once here; the
    /// record path never allocates).
    pub fn new() -> Self {
        // `AtomicU64` is not Copy, so build the boxed slice from an
        // iterator.
        let buckets: Box<[AtomicU64]> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free and allocation-free.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of the same value.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        // `bucket_index` is clamped to `BUCKETS - 1`; `get` keeps the
        // recording path panic-free regardless.
        if let Some(bucket) = self.buckets.get(bucket_index(value)) {
            bucket.fetch_add(n, Ordering::Relaxed);
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.wrapping_mul(n), Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Observations recorded so far (exact).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Adds every observation summarized by `snapshot` into `self`.
    /// Bucket layouts are identical by construction, so this is exactly
    /// equivalent to having recorded the union of both sample sets.
    pub fn absorb(&self, snapshot: &HistogramSnapshot) {
        for &(index, n) in &snapshot.buckets {
            self.buckets[index as usize].fetch_add(n, Ordering::Relaxed);
        }
        if snapshot.count > 0 {
            self.count.fetch_add(snapshot.count, Ordering::Relaxed);
            self.sum.fetch_add(snapshot.sum, Ordering::Relaxed);
            self.min.fetch_min(snapshot.min, Ordering::Relaxed);
            self.max.fetch_max(snapshot.max, Ordering::Relaxed);
        }
    }

    /// Takes a point-in-time copy of the non-empty buckets and totals.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time, sparse copy of a [`Histogram`]: only non-empty
/// buckets, plus exact totals. Cheap to clone, merge, and query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(bucket index, count)`, sorted by index.
    buckets: Vec<(u32, u64)>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot of zero observations.
    pub fn empty() -> Self {
        Self {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Observations recorded (exact).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact arithmetic mean (`sum / count`), or 0.0 when empty.
    /// No bucketing error: `sum` and `count` are tracked exactly.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (clamped to `[0, 1]`), using the same
    /// nearest-rank convention as `mmcs_util::stats::SampleSeries`:
    /// rank `round((count - 1) × q)`. Returns the containing bucket's
    /// midpoint — within [`Histogram::REL_ERROR`] of the exact order
    /// statistic. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if rank < seen {
                return Some(bucket_midpoint(index as usize));
            }
        }
        // A torn snapshot can leave `count` ahead of the bucket total;
        // fall back to the largest non-empty bucket.
        self.buckets
            .last()
            .map(|&(index, _)| bucket_midpoint(index as usize))
    }

    /// Merges two snapshots. Equivalent to one histogram having
    /// recorded the union of both sample sets (the property tests pin
    /// this down).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        buckets.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        buckets.push((ib, nb));
                        b.next();
                    } else {
                        buckets.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    buckets.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    buckets.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Merges any number of snapshots into one, equivalent to a single
    /// histogram having recorded every sample set — the pooling step
    /// for per-shard histograms: each shard keeps its own pool, and the
    /// capacity-frontier report merges them. `count` and `sum` add
    /// exactly, so the merged [`HistogramSnapshot::mean`] equals the
    /// pooled mean with no bucketing error, in any merge order.
    pub fn merge_all<'a, I>(snapshots: I) -> HistogramSnapshot
    where
        I: IntoIterator<Item = &'a HistogramSnapshot>,
    {
        snapshots
            .into_iter()
            .fold(HistogramSnapshot::empty(), |acc, s| acc.merge(s))
    }

    /// Iterates non-empty buckets as `(inclusive upper bound, count)`,
    /// in increasing bound order — the shape Prometheus exposition
    /// needs for cumulative `le` buckets.
    pub fn bucket_bounds(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|&(index, n)| {
            let (lo, width) = bucket_bounds(index as usize);
            (lo + (width - 1), n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous_and_monotone() {
        // Every bucket's range starts where the previous one ended.
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, width) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} misaligned");
            assert!(width >= 1);
            expected_lo = lo.saturating_add(width);
        }
        assert_eq!(expected_lo, u64::MAX); // saturated at the top octave
    }

    #[test]
    fn index_and_bounds_agree() {
        for v in [0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            let (lo, width) = bucket_bounds(i);
            assert!(lo <= v, "value {v} below bucket {i} lo {lo}");
            assert!(
                v - lo < width,
                "value {v} beyond bucket {i} range [{lo}, {lo}+{width})"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..64 {
            h.record(v);
        }
        let s = h.snapshot();
        for v in 0..64u64 {
            let q = v as f64 / 63.0;
            assert_eq!(s.quantile(q), Some(v));
        }
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(63));
        assert_eq!(s.sum(), (0..64).sum::<u64>());
    }

    #[test]
    fn quantile_error_is_bounded() {
        let h = Histogram::new();
        let values: Vec<u64> = (0..1000).map(|i| i * i * 37 + 100).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = sorted[((sorted.len() - 1) as f64 * q).round() as usize];
            let got = s.quantile(q).expect("non-empty");
            let bound = (exact as f64 * Histogram::REL_ERROR).ceil();
            assert!(
                (got as f64 - exact as f64).abs() <= bound,
                "q={q}: got {got}, exact {exact}, bound {bound}"
            );
        }
    }

    #[test]
    fn mean_is_exact() {
        let h = Histogram::new();
        for v in [3u64, 5, 1000, 123_456_789] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.mean(), (3.0 + 5.0 + 1000.0 + 123_456_789.0) / 4.0);
    }

    #[test]
    fn merge_equals_union() {
        let (a, b, u) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..500u64 {
            let v = v * 17 + 3;
            a.record(v);
            u.record(v);
        }
        for v in 0..300u64 {
            let v = v * v + 90;
            b.record(v);
            u.record(v);
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), u.snapshot());
    }

    #[test]
    fn merge_all_equals_one_pooled_histogram() {
        // Three per-shard pools vs one histogram that saw every sample:
        // merge_all must be exactly the pooled snapshot, and the mean
        // must be exact (sum/count carry no bucketing error).
        let pools = [Histogram::new(), Histogram::new(), Histogram::new()];
        let union = Histogram::new();
        for v in 0..900u64 {
            let v = v * 131 + 7;
            pools[(v % 3) as usize].record_n(v, 1 + v % 4);
            union.record_n(v, 1 + v % 4);
        }
        let snaps: Vec<HistogramSnapshot> = pools.iter().map(Histogram::snapshot).collect();
        let merged = HistogramSnapshot::merge_all(&snaps);
        assert_eq!(merged, union.snapshot());
        assert_eq!(merged.mean(), union.snapshot().mean());
        // Order independence.
        let reversed = HistogramSnapshot::merge_all(snaps.iter().rev());
        assert_eq!(reversed, merged);
        // Empty input is the empty snapshot.
        assert_eq!(
            HistogramSnapshot::merge_all(std::iter::empty()),
            HistogramSnapshot::empty()
        );
    }

    #[test]
    fn absorb_equals_union() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [1u64, 99, 70_000] {
            a.record(v);
        }
        for v in [2u64, 99, 1 << 40] {
            b.record(v);
        }
        let union = a.snapshot().merge(&b.snapshot());
        a.absorb(&b.snapshot());
        assert_eq!(a.snapshot(), union);
    }

    #[test]
    fn empty_snapshot_behaves() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), 0.0);
        let h = Histogram::new();
        assert_eq!(h.snapshot(), s);
    }

    #[test]
    fn record_duration_uses_nanos() {
        let h = Histogram::new();
        h.record_duration(SimDuration::from_micros(2));
        assert_eq!(h.snapshot().sum(), 2000);
    }
}
