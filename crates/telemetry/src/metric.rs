//! Scalar metrics: monotone counters and signed gauges.
//!
//! Both are a single atomic word aligned to its own cache line
//! (`#[repr(align(64))]`), so two metrics updated by different threads
//! never contend on the same line (false sharing). All operations use
//! `Relaxed` ordering: metrics are statistical observations, not
//! synchronization edges — readers that need a consistent cut (tests)
//! join the writers first.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
///
/// Increments are lock-free, allocation-free, and wait-free on every
/// mainstream architecture; the value only ever grows (wrap-around at
/// `u64::MAX` is ignored as unreachable in practice).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous measurement (queue depth, live sessions).
///
/// Unlike a [`Counter`] it can move both ways and be overwritten.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set(-5);
        assert_eq!(g.get(), -5);
    }

    #[test]
    fn metrics_are_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<Counter>(), 64);
        assert_eq!(std::mem::align_of::<Gauge>(), 64);
    }
}
