//! Pluggable time sources for spans.
//!
//! Telemetry must work in two clock domains: real elapsed time under
//! the threaded/network drivers, and virtual [`SimTime`] under the
//! deterministic simulator. The [`Clock`] trait abstracts over both so
//! instrumented code (gateways, spans) is written once. [`WallClock`]
//! is the only path to the OS clock, and it goes through
//! [`mmcs_util::time::monotonic_now`] — the single file the
//! `no-direct-instant-now` lint exempts — so the lint keeps holding
//! across the workspace.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use mmcs_util::time::{SimDuration, SimTime};

/// A monotone time source. Implementations must never run backwards.
pub trait Clock: fmt::Debug + Send + Sync {
    /// The current instant in this clock's domain.
    fn now(&self) -> SimTime;
}

/// Real monotonic wall time (nanoseconds since process start), for the
/// threaded and network drivers.
#[derive(Debug, Default, Clone, Copy)]
pub struct WallClock;

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        mmcs_util::time::monotonic_now()
    }
}

/// A hand-driven clock for simulation and tests.
///
/// Drivers running under the simulator call [`ManualClock::set`] with
/// `ctx.now()` before invoking instrumented code, so spans measure
/// virtual time and stay deterministic. Tests can instead give the
/// clock a per-reading auto-advance step ([`ManualClock::with_step`]):
/// every `now()` moves time forward by the step, which makes span
/// latencies non-zero and exactly predictable.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
    step: AtomicU64,
}

impl ManualClock {
    /// Creates a clock stuck at zero until driven.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock that advances by `step` on every reading.
    pub fn with_step(step: SimDuration) -> Self {
        Self {
            nanos: AtomicU64::new(0),
            step: AtomicU64::new(step.as_nanos()),
        }
    }

    /// Jumps the clock to `t` (use with `ctx.now()` under the sim).
    pub fn set(&self, t: SimTime) {
        self.nanos.store(t.as_nanos(), Ordering::Relaxed);
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: SimDuration) {
        self.nanos.fetch_add(d.as_nanos(), Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        let step = self.step.load(Ordering::Relaxed);
        SimTime::from_nanos(self.nanos.fetch_add(step, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_driven() {
        let c = ManualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.set(SimTime::from_millis(5));
        c.advance(SimDuration::from_millis(2));
        assert_eq!(c.now(), SimTime::from_millis(7));
    }

    #[test]
    fn stepping_clock_advances_per_reading() {
        let c = ManualClock::with_step(SimDuration::from_micros(10));
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.now(), SimTime::from_nanos(10_000));
        assert_eq!(c.now(), SimTime::from_nanos(20_000));
    }
}
