//! Metric naming and exposition.
//!
//! A [`Registry`] maps stable names to metrics and renders the whole
//! set as Prometheus text or JSON. Names follow the Prometheus
//! convention (`snake_case`, counters end in `_total`, latency
//! histograms in `_ns`), live in one flat namespace, and render in
//! lexicographic order, so both formats are deterministic — golden
//! tests diff them byte-for-byte.
//!
//! The registry lock guards only registration and rendering; recording
//! into an already-registered metric touches no lock (callers hold
//! `Arc`s to the metrics themselves).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::histogram::Histogram;
use crate::metric::{Counter, Gauge};

/// A registered metric of any kind.
enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    help: String,
    slot: Slot,
}

/// A named collection of metrics with deterministic exposition. See
/// the [module docs](self).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it with
    /// `help` on first use. If `name` is already registered as a
    /// different kind, returns a fresh detached counter (recording
    /// still works; it just won't render) — names are expected to be
    /// unique across kinds.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock();
        let entry = inner.entry(name.to_owned()).or_insert_with(|| Entry {
            help: help.to_owned(),
            slot: Slot::Counter(Arc::new(Counter::new())),
        });
        match &entry.slot {
            Slot::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::new()),
        }
    }

    /// Returns the gauge registered under `name`, creating it with
    /// `help` on first use (same kind-collision rule as
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock();
        let entry = inner.entry(name.to_owned()).or_insert_with(|| Entry {
            help: help.to_owned(),
            slot: Slot::Gauge(Arc::new(Gauge::new())),
        });
        match &entry.slot {
            Slot::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Returns the histogram registered under `name`, creating it with
    /// `help` on first use (same kind-collision rule as
    /// [`Registry::counter`]).
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock();
        let entry = inner.entry(name.to_owned()).or_insert_with(|| Entry {
            help: help.to_owned(),
            slot: Slot::Histogram(Arc::new(Histogram::new())),
        });
        match &entry.slot {
            Slot::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Renders every metric in Prometheus text exposition format,
    /// names in lexicographic order. Histograms render cumulative
    /// `_bucket{le="…"}` lines over non-empty buckets (inclusive
    /// integer upper bounds), then `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for (name, entry) in inner.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&entry.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            match &entry.slot {
                Slot::Counter(c) => {
                    out.push_str(" counter\n");
                    out.push_str(&format!("{name} {}\n", c.get()));
                }
                Slot::Gauge(g) => {
                    out.push_str(" gauge\n");
                    out.push_str(&format!("{name} {}\n", g.get()));
                }
                Slot::Histogram(h) => {
                    out.push_str(" histogram\n");
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (le, n) in snap.bucket_bounds() {
                        cumulative += n;
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"+Inf\"}} {}\n",
                        snap.count()
                    ));
                    out.push_str(&format!("{name}_sum {}\n", snap.sum()));
                    out.push_str(&format!("{name}_count {}\n", snap.count()));
                }
            }
        }
        out
    }

    /// Renders every metric as a pretty-printed JSON object with three
    /// sections (`counters`, `gauges`, `histograms`), keys in
    /// lexicographic order. Histograms summarize as count/sum/min/max/
    /// mean and the p50/p90/p99 quantiles.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, entry) in inner.iter() {
            let key = json_escape(name);
            match &entry.slot {
                Slot::Counter(c) => counters.push(format!("    \"{key}\": {}", c.get())),
                Slot::Gauge(g) => gauges.push(format!("    \"{key}\": {}", g.get())),
                Slot::Histogram(h) => {
                    let s = h.snapshot();
                    let q = |p: f64| s.quantile(p).unwrap_or(0);
                    histograms.push(format!(
                        "    \"{key}\": {{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {} }}",
                        s.count(),
                        s.sum(),
                        s.min().unwrap_or(0),
                        s.max().unwrap_or(0),
                        s.mean(),
                        q(0.50),
                        q(0.90),
                        q(0.99),
                    ));
                }
            }
        }
        let section = |items: Vec<String>| {
            if items.is_empty() {
                "{}".to_owned()
            } else {
                format!("{{\n{}\n  }}", items.join(",\n"))
            }
        };
        format!(
            "{{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}}\n",
            section(counters),
            section(gauges),
            section(histograms),
        )
    }
}

/// Minimal JSON string escaping (metric names are identifiers, but be
/// safe about quotes and backslashes anyway).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_metric() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "ignored");
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn kind_collision_returns_detached() {
        let r = Registry::new();
        let _c = r.counter("name", "first");
        let g = r.gauge("name", "second");
        g.set(9); // does not panic, does not render
        assert!(!r.render_prometheus().contains(" gauge\n"));
    }

    #[test]
    fn prometheus_renders_all_kinds_in_order() {
        let r = Registry::new();
        r.counter("b_total", "a counter").add(2);
        r.gauge("a_depth", "a gauge").set(-3);
        let h = r.histogram("c_ns", "a histogram");
        h.record(5);
        h.record(70);
        let text = r.render_prometheus();
        let a = text.find("a_depth").expect("gauge present");
        let b = text.find("b_total").expect("counter present");
        let c = text.find("c_ns").expect("histogram present");
        assert!(a < b && b < c, "metrics out of order:\n{text}");
        assert!(text.contains("a_depth -3\n"));
        assert!(text.contains("b_total 2\n"));
        assert!(text.contains("c_ns_bucket{le=\"5\"} 1\n"));
        assert!(text.contains("c_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("c_ns_sum 75\n"));
        assert!(text.contains("c_ns_count 2\n"));
    }

    #[test]
    fn json_is_well_formed_ish() {
        let r = Registry::new();
        r.counter("hits_total", "hits").inc();
        r.histogram("lat_ns", "latency").record(42);
        let json = r.render_json();
        assert!(json.contains("\"hits_total\": 1"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"p50\": 42"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
    }
}
