//! Pre-bundled instrument sets shared by several components.
//!
//! The SIP and H.323 gateways measure the same thing — how long call
//! setup signaling takes and how often it succeeds — so the bundle
//! lives here once instead of twice, and the metric names only differ
//! by the community prefix (`sip_…` vs `h323_…`).

use std::sync::Arc;

use crate::clock::Clock;
use crate::histogram::Histogram;
use crate::metric::Counter;
use crate::registry::Registry;
use crate::span::Span;

/// Instruments for a protocol gateway's call signaling: setup
/// outcomes plus a setup-latency histogram timed by a pluggable
/// [`Clock`] (wall time under the threaded driver, manual/virtual time
/// in tests and simulation).
#[derive(Debug, Clone)]
pub struct CallSetupMetrics {
    /// Call setup attempts seen (e.g. SIP INVITE, H.225 Setup).
    pub attempts: Arc<Counter>,
    /// Setups that completed successfully.
    pub setups: Arc<Counter>,
    /// Setups rejected or failed.
    pub failures: Arc<Counter>,
    /// Calls torn down (e.g. SIP BYE, H.225 Release Complete).
    pub teardowns: Arc<Counter>,
    /// Setup signaling latency in nanoseconds.
    pub setup_latency: Arc<Histogram>,
    /// The clock that times [`CallSetupMetrics::setup_span`].
    pub clock: Arc<dyn Clock>,
}

impl CallSetupMetrics {
    /// Registers the bundle under `{prefix}_call_…` names.
    pub fn register(registry: &Registry, prefix: &str, clock: Arc<dyn Clock>) -> Self {
        Self {
            attempts: registry.counter(
                &format!("{prefix}_call_attempts_total"),
                "call setup attempts received",
            ),
            setups: registry.counter(
                &format!("{prefix}_call_setups_total"),
                "call setups completed successfully",
            ),
            failures: registry.counter(
                &format!("{prefix}_call_failures_total"),
                "call setups rejected or failed",
            ),
            teardowns: registry.counter(
                &format!("{prefix}_call_teardowns_total"),
                "calls torn down",
            ),
            setup_latency: registry.histogram(
                &format!("{prefix}_call_setup_latency_ns"),
                "call setup signaling latency in nanoseconds",
            ),
            clock,
        }
    }

    /// Starts a span over the setup-latency histogram.
    pub fn setup_span(&self) -> Span<'_> {
        Span::start(self.clock.as_ref(), &self.setup_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use mmcs_util::time::SimDuration;

    #[test]
    fn bundle_registers_and_times() {
        let registry = Registry::new();
        let clock = Arc::new(ManualClock::with_step(SimDuration::from_micros(5)));
        let m = CallSetupMetrics::register(&registry, "sip", clock);
        m.attempts.inc();
        m.setup_span().finish();
        m.setups.inc();
        let text = registry.render_prometheus();
        assert!(text.contains("sip_call_attempts_total 1"));
        assert!(text.contains("sip_call_setups_total 1"));
        assert!(text.contains("sip_call_setup_latency_ns_count 1"));
        assert!(text.contains("sip_call_setup_latency_ns_sum 5000"));
    }
}
