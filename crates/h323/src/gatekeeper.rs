//! The H.323 gatekeeper: registration, admission, bandwidth accounting.
//!
//! Global-MMCS runs its own gatekeeper to form "a new H.323
//! administration domain for individual H.323 endpoints". Admission
//! points every call at the H.323 gateway (which owns the XGSP
//! translation) and enforces a per-zone bandwidth budget.

use std::collections::HashMap;

use crate::msg::{RasMessage, RejectReason};

#[derive(Debug, Clone)]
struct Registration {
    alias: String,
    #[allow(dead_code)]
    signal_address: String,
}

#[derive(Debug, Clone, Copy)]
struct CallGrant {
    endpoint_id: u32,
    bandwidth: u32,
}

/// The gatekeeper. One instance per Global-MMCS H.323 zone.
#[derive(Debug)]
pub struct Gatekeeper {
    id: String,
    gateway_address: String,
    /// Total admission budget in H.225 units (100 bps each).
    zone_bandwidth: u32,
    granted: u32,
    endpoints: HashMap<u32, Registration>,
    aliases: HashMap<String, u32>,
    calls: HashMap<u16, CallGrant>,
    /// Bandwidth granted per endpoint but not yet bound to a call
    /// reference (released wholesale on DRQ when the call is unbound).
    unbound: HashMap<u32, u32>,
    next_endpoint: u32,
    next_call_reference: u16,
}

impl Gatekeeper {
    /// Creates a gatekeeper directing admitted calls at
    /// `gateway_address`, with a zone budget in units of 100 bps.
    pub fn new(
        id: impl Into<String>,
        gateway_address: impl Into<String>,
        zone_bandwidth: u32,
    ) -> Self {
        Self {
            id: id.into(),
            gateway_address: gateway_address.into(),
            zone_bandwidth,
            granted: 0,
            endpoints: HashMap::new(),
            aliases: HashMap::new(),
            calls: HashMap::new(),
            unbound: HashMap::new(),
            next_endpoint: 1,
            next_call_reference: 1,
        }
    }

    /// Registered endpoint count.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Bandwidth currently granted (100 bps units).
    pub fn granted_bandwidth(&self) -> u32 {
        self.granted
    }

    /// Allocates a fresh call reference for an admitted call.
    pub fn next_call_reference(&mut self) -> u16 {
        let cr = self.next_call_reference;
        self.next_call_reference = self.next_call_reference.wrapping_add(1).max(1);
        cr
    }

    /// Records an admitted call's bandwidth under its call reference so
    /// a later DRQ can release exactly that call's grant.
    pub fn bind_call(&mut self, call_reference: u16, endpoint_id: u32, bandwidth: u32) {
        if let Some(pool) = self.unbound.get_mut(&endpoint_id) {
            *pool = pool.saturating_sub(bandwidth);
        }
        self.calls.insert(
            call_reference,
            CallGrant {
                endpoint_id,
                bandwidth,
            },
        );
    }

    /// The alias of a registered endpoint.
    pub fn alias_of(&self, endpoint_id: u32) -> Option<&str> {
        self.endpoints.get(&endpoint_id).map(|r| r.alias.as_str())
    }

    /// Handles a RAS request, returning the RAS reply.
    pub fn handle(&mut self, request: &RasMessage) -> RasMessage {
        match request {
            RasMessage::GatekeeperRequest { .. } => RasMessage::GatekeeperConfirm {
                gatekeeper_id: self.id.clone(),
            },
            RasMessage::RegistrationRequest {
                endpoint_alias,
                signal_address,
            } => {
                if self.aliases.contains_key(endpoint_alias) {
                    return RasMessage::RegistrationReject {
                        reason: RejectReason::DuplicateAlias,
                    };
                }
                let endpoint_id = self.next_endpoint;
                self.next_endpoint += 1;
                self.endpoints.insert(
                    endpoint_id,
                    Registration {
                        alias: endpoint_alias.clone(),
                        signal_address: signal_address.clone(),
                    },
                );
                self.aliases.insert(endpoint_alias.clone(), endpoint_id);
                RasMessage::RegistrationConfirm { endpoint_id }
            }
            RasMessage::AdmissionRequest {
                endpoint_id,
                destination: _,
                bandwidth,
            } => {
                if !self.endpoints.contains_key(endpoint_id) {
                    return RasMessage::AdmissionReject {
                        reason: RejectReason::NotRegistered,
                    };
                }
                if self.granted + bandwidth > self.zone_bandwidth {
                    return RasMessage::AdmissionReject {
                        reason: RejectReason::InsufficientBandwidth,
                    };
                }
                self.granted += bandwidth;
                *self.unbound.entry(*endpoint_id).or_insert(0) += bandwidth;
                RasMessage::AdmissionConfirm {
                    bandwidth: *bandwidth,
                    call_signal_address: self.gateway_address.clone(),
                }
            }
            RasMessage::DisengageRequest {
                endpoint_id,
                call_reference,
            } => {
                match self.calls.remove(call_reference) {
                    Some(grant) if grant.endpoint_id == *endpoint_id => {
                        self.granted = self.granted.saturating_sub(grant.bandwidth);
                        RasMessage::DisengageConfirm
                    }
                    Some(grant) => {
                        // Wrong endpoint: restore and reject.
                        self.calls.insert(*call_reference, grant);
                        RasMessage::AdmissionReject {
                            reason: RejectReason::UnknownCall,
                        }
                    }
                    None => {
                        // Endpoints that never bound a call reference
                        // release their whole unbound grant.
                        match self.unbound.remove(endpoint_id) {
                            Some(pool) if pool > 0 => {
                                self.granted = self.granted.saturating_sub(pool);
                                RasMessage::DisengageConfirm
                            }
                            _ => RasMessage::AdmissionReject {
                                reason: RejectReason::UnknownCall,
                            },
                        }
                    }
                }
            }
            // Replies arriving as requests: protocol misuse.
            _ => RasMessage::GatekeeperReject {
                reason: RejectReason::InvalidZone,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gk() -> Gatekeeper {
        Gatekeeper::new("gk.mmcs", "gw.mmcs:1720", 10_000)
    }

    fn register(gk: &mut Gatekeeper, alias: &str) -> u32 {
        match gk.handle(&RasMessage::RegistrationRequest {
            endpoint_alias: alias.into(),
            signal_address: "ep:1720".into(),
        }) {
            RasMessage::RegistrationConfirm { endpoint_id } => endpoint_id,
            other => panic!("expected RCF, got {other:?}"),
        }
    }

    #[test]
    fn discovery_confirms_with_id() {
        let mut gk = gk();
        let reply = gk.handle(&RasMessage::GatekeeperRequest {
            endpoint_alias: "a".into(),
        });
        assert_eq!(
            reply,
            RasMessage::GatekeeperConfirm {
                gatekeeper_id: "gk.mmcs".into()
            }
        );
    }

    #[test]
    fn registration_assigns_unique_ids_and_rejects_duplicates() {
        let mut gk = gk();
        let a = register(&mut gk, "alice");
        let b = register(&mut gk, "bob");
        assert_ne!(a, b);
        assert_eq!(gk.endpoint_count(), 2);
        assert_eq!(gk.alias_of(a), Some("alice"));
        let reply = gk.handle(&RasMessage::RegistrationRequest {
            endpoint_alias: "alice".into(),
            signal_address: "elsewhere".into(),
        });
        assert_eq!(
            reply,
            RasMessage::RegistrationReject {
                reason: RejectReason::DuplicateAlias
            }
        );
    }

    #[test]
    fn admission_points_at_gateway_and_tracks_bandwidth() {
        let mut gk = gk();
        let ep = register(&mut gk, "alice");
        let reply = gk.handle(&RasMessage::AdmissionRequest {
            endpoint_id: ep,
            destination: "conf-1".into(),
            bandwidth: 6400,
        });
        assert_eq!(
            reply,
            RasMessage::AdmissionConfirm {
                bandwidth: 6400,
                call_signal_address: "gw.mmcs:1720".into()
            }
        );
        assert_eq!(gk.granted_bandwidth(), 6400);
    }

    #[test]
    fn admission_requires_registration() {
        let mut gk = gk();
        let reply = gk.handle(&RasMessage::AdmissionRequest {
            endpoint_id: 99,
            destination: "conf-1".into(),
            bandwidth: 100,
        });
        assert_eq!(
            reply,
            RasMessage::AdmissionReject {
                reason: RejectReason::NotRegistered
            }
        );
    }

    #[test]
    fn zone_budget_is_enforced_and_released_by_disengage() {
        let mut gk = gk();
        let ep = register(&mut gk, "alice");
        gk.handle(&RasMessage::AdmissionRequest {
            endpoint_id: ep,
            destination: "conf-1".into(),
            bandwidth: 9_000,
        });
        let cr = gk.next_call_reference();
        gk.bind_call(cr, ep, 9_000);
        // Second call does not fit.
        let reply = gk.handle(&RasMessage::AdmissionRequest {
            endpoint_id: ep,
            destination: "conf-2".into(),
            bandwidth: 2_000,
        });
        assert_eq!(
            reply,
            RasMessage::AdmissionReject {
                reason: RejectReason::InsufficientBandwidth
            }
        );
        // Disengage frees the budget.
        let reply = gk.handle(&RasMessage::DisengageRequest {
            endpoint_id: ep,
            call_reference: cr,
        });
        assert_eq!(reply, RasMessage::DisengageConfirm);
        assert_eq!(gk.granted_bandwidth(), 0);
        let reply = gk.handle(&RasMessage::AdmissionRequest {
            endpoint_id: ep,
            destination: "conf-2".into(),
            bandwidth: 2_000,
        });
        assert!(matches!(reply, RasMessage::AdmissionConfirm { .. }));
    }

    #[test]
    fn disengage_for_unknown_call_rejected() {
        let mut gk = gk();
        let ep = register(&mut gk, "alice");
        let reply = gk.handle(&RasMessage::DisengageRequest {
            endpoint_id: ep,
            call_reference: 77,
        });
        assert_eq!(
            reply,
            RasMessage::AdmissionReject {
                reason: RejectReason::UnknownCall
            }
        );
    }

    #[test]
    fn disengage_by_wrong_endpoint_rejected_and_grant_kept() {
        let mut gk = gk();
        let alice = register(&mut gk, "alice");
        let bob = register(&mut gk, "bob");
        gk.handle(&RasMessage::AdmissionRequest {
            endpoint_id: alice,
            destination: "conf-1".into(),
            bandwidth: 500,
        });
        let cr = gk.next_call_reference();
        gk.bind_call(cr, alice, 500);
        let reply = gk.handle(&RasMessage::DisengageRequest {
            endpoint_id: bob,
            call_reference: cr,
        });
        assert!(matches!(reply, RasMessage::AdmissionReject { .. }));
        assert_eq!(gk.granted_bandwidth(), 500);
    }
}
