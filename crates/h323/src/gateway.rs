//! The H.323 → XGSP gateway.
//!
//! Accepts Q.931 call signaling and H.245 media control from admitted
//! endpoints and translates them into XGSP: a Setup addressed to a
//! conference alias (`conf-<id>` or `new-conf`) becomes a session
//! `Join`, Release Complete becomes `Leave`, and OpenLogicalChannel is
//! answered with the broker RTP proxy address so the endpoint's media
//! "RTP channels are redirected to the NaradaBrokering servers".

use std::collections::HashMap;

use mmcs_telemetry::CallSetupMetrics;
use mmcs_util::id::{SessionId, TerminalId};
use mmcs_xgsp::media::{MediaDescription, MediaKind};
use mmcs_xgsp::message::{SessionMode, XgspMessage};
use mmcs_xgsp::server::{ServerOutput, SessionServer};

use crate::msg::{H245Message, H323Message, Q931Message};

/// Q.850 cause: normal call clearing.
pub const CAUSE_NORMAL: u8 = 16;
/// Q.850 cause: unallocated number (unknown conference).
pub const CAUSE_UNALLOCATED: u8 = 1;
/// Q.850 cause: call rejected.
pub const CAUSE_REJECTED: u8 = 21;

#[derive(Debug, Clone)]
struct Call {
    session: SessionId,
    user: String,
}

/// The H.323 gateway. See the [module docs](self).
#[derive(Debug)]
pub struct H323Gateway {
    h245_address: String,
    rtp_proxy_address: String,
    calls: HashMap<u16, Call>,
    next_terminal: u64,
    metrics: Option<CallSetupMetrics>,
}

impl H323Gateway {
    /// Creates a gateway; `h245_address` goes into Connect, and
    /// `rtp_proxy_address` into OpenLogicalChannelAck.
    pub fn new(h245_address: impl Into<String>, rtp_proxy_address: impl Into<String>) -> Self {
        Self {
            h245_address: h245_address.into(),
            rtp_proxy_address: rtp_proxy_address.into(),
            calls: HashMap::new(),
            next_terminal: 1,
            metrics: None,
        }
    }

    /// Installs call-setup telemetry. Every Q.931 Setup counts as an
    /// attempt; the span covers the Setup → Connect ladder, Release
    /// Complete counts a teardown.
    pub fn set_metrics(&mut self, metrics: CallSetupMetrics) {
        self.metrics = Some(metrics);
    }

    /// Live call count.
    pub fn call_count(&self) -> usize {
        self.calls.len()
    }

    /// The session a call joined, if live.
    pub fn session_of(&self, call_reference: u16) -> Option<SessionId> {
        self.calls.get(&call_reference).map(|c| c.session)
    }

    /// Handles a signaling message from an endpoint; returns the
    /// messages to send back on the same connection.
    pub fn handle(
        &mut self,
        message: &H323Message,
        server: &mut SessionServer,
    ) -> Vec<H323Message> {
        match message {
            H323Message::Q931(q931) => self.handle_q931(q931, server),
            H323Message::H245(h245) => self.handle_h245(h245),
            H323Message::Ras(_) => Vec::new(), // RAS belongs to the gatekeeper
        }
    }

    fn handle_q931(
        &mut self,
        message: &Q931Message,
        server: &mut SessionServer,
    ) -> Vec<H323Message> {
        match message {
            Q931Message::Setup {
                call_reference,
                caller,
                callee,
            } => {
                // Clone the instrument bundle out (Arc clones) so the
                // span does not borrow `self` across the `&mut` call.
                let timing = self.metrics.clone();
                let span = timing.as_ref().map(|m| {
                    m.attempts.inc();
                    m.setup_span()
                });
                let replies = self.handle_setup(*call_reference, caller, callee, server);
                if let Some(m) = &timing {
                    if let Some(span) = span {
                        span.finish();
                    }
                    let connected = replies.iter().any(|r| {
                        matches!(r, H323Message::Q931(Q931Message::Connect { .. }))
                    });
                    if connected {
                        m.setups.inc();
                    } else {
                        m.failures.inc();
                    }
                }
                replies
            }
            Q931Message::ReleaseComplete { call_reference, .. } => {
                if let Some(call) = self.calls.remove(call_reference) {
                    let _ = server.handle(
                        Some(&call.user),
                        XgspMessage::Leave {
                            session: call.session,
                            user: call.user.clone(),
                        },
                    );
                    if let Some(m) = &self.metrics {
                        m.teardowns.inc();
                    }
                }
                Vec::new()
            }
            // The gateway never receives its own ringing indications.
            Q931Message::CallProceeding { .. }
            | Q931Message::Alerting { .. }
            | Q931Message::Connect { .. } => Vec::new(),
        }
    }

    fn handle_setup(
        &mut self,
        call_reference: u16,
        caller: &str,
        callee: &str,
        server: &mut SessionServer,
    ) -> Vec<H323Message> {
        let media = vec![
            MediaDescription::new(MediaKind::Audio, "G.711"),
            MediaDescription::new(MediaKind::Video, "H.263"),
        ];
        let session = if callee == "new-conf" {
            let outputs = server.handle(
                Some(caller),
                XgspMessage::CreateSession {
                    name: format!("h323 ad-hoc by {caller}"),
                    mode: SessionMode::AdHoc,
                    media: media.clone(),
                },
            );
            match outputs.iter().find_map(|o| match o {
                ServerOutput::Reply(XgspMessage::SessionCreated { session, .. }) => {
                    Some(*session)
                }
                _ => None,
            }) {
                Some(session) => session,
                None => {
                    return vec![release(call_reference, CAUSE_REJECTED)];
                }
            }
        } else {
            match callee
                .strip_prefix("conf-")
                .and_then(|raw| raw.parse::<u64>().ok())
            {
                Some(id) => SessionId::from_raw(id),
                None => return vec![release(call_reference, CAUSE_UNALLOCATED)],
            }
        };

        let terminal = TerminalId::from_raw(self.next_terminal);
        self.next_terminal += 1;
        let outputs = server.handle(
            Some(caller),
            XgspMessage::Join {
                session,
                user: caller.to_string(),
                terminal,
                media,
            },
        );
        let joined = outputs
            .iter()
            .any(|o| matches!(o, ServerOutput::Reply(XgspMessage::JoinAck { .. })));
        if !joined {
            let cause = if outputs.iter().any(|o| {
                matches!(
                    o,
                    ServerOutput::Reply(XgspMessage::Error { code, .. })
                        if code == "unknown-session"
                )
            }) {
                CAUSE_UNALLOCATED
            } else {
                CAUSE_REJECTED
            };
            return vec![release(call_reference, cause)];
        }
        self.calls.insert(
            call_reference,
            Call {
                session,
                user: caller.to_string(),
            },
        );
        vec![
            H323Message::Q931(Q931Message::CallProceeding { call_reference }),
            H323Message::Q931(Q931Message::Alerting { call_reference }),
            H323Message::Q931(Q931Message::Connect {
                call_reference,
                h245_address: self.h245_address.clone(),
            }),
        ]
    }

    fn handle_h245(&mut self, message: &H245Message) -> Vec<H323Message> {
        match message {
            H245Message::TerminalCapabilitySet { sequence, .. } => {
                vec![H323Message::H245(H245Message::TerminalCapabilitySetAck {
                    sequence: *sequence,
                })]
            }
            H245Message::MasterSlaveDetermination { .. } => {
                // The gateway (as the MCU-side entity, terminal type 240)
                // always wins master; the remote is slave.
                vec![H323Message::H245(H245Message::MasterSlaveDeterminationAck {
                    remote_is_master: false,
                })]
            }
            H245Message::OpenLogicalChannel { channel, .. } => {
                vec![H323Message::H245(H245Message::OpenLogicalChannelAck {
                    channel: *channel,
                    media_address: self.rtp_proxy_address.clone(),
                })]
            }
            H245Message::CloseLogicalChannel { .. } | H245Message::EndSession => Vec::new(),
            _ => Vec::new(),
        }
    }
}

fn release(call_reference: u16, cause: u8) -> H323Message {
    H323Message::Q931(Q931Message::ReleaseComplete {
        call_reference,
        cause,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cr: u16, caller: &str, callee: &str) -> H323Message {
        H323Message::Q931(Q931Message::Setup {
            call_reference: cr,
            caller: caller.into(),
            callee: callee.into(),
        })
    }

    #[test]
    fn setup_to_new_conf_walks_the_q931_ladder() {
        let mut gw = H323Gateway::new("gw:2720", "rtp-proxy:5004");
        let mut server = SessionServer::new();
        let replies = gw.handle(&setup(1, "alice-h323", "new-conf"), &mut server);
        assert!(matches!(
            replies[0],
            H323Message::Q931(Q931Message::CallProceeding { call_reference: 1 })
        ));
        assert!(matches!(
            replies[1],
            H323Message::Q931(Q931Message::Alerting { call_reference: 1 })
        ));
        assert!(matches!(
            &replies[2],
            H323Message::Q931(Q931Message::Connect { call_reference: 1, h245_address })
                if h245_address == "gw:2720"
        ));
        assert_eq!(server.session_count(), 1);
        assert_eq!(gw.call_count(), 1);
    }

    #[test]
    fn setup_to_unknown_conference_releases_with_unallocated() {
        let mut gw = H323Gateway::new("gw:2720", "rtp:1");
        let mut server = SessionServer::new();
        let replies = gw.handle(&setup(2, "alice-h323", "conf-99"), &mut server);
        assert_eq!(
            replies,
            vec![H323Message::Q931(Q931Message::ReleaseComplete {
                call_reference: 2,
                cause: CAUSE_UNALLOCATED,
            })]
        );
        let replies = gw.handle(&setup(3, "alice-h323", "not-a-conf"), &mut server);
        assert!(matches!(
            replies[0],
            H323Message::Q931(Q931Message::ReleaseComplete { cause: CAUSE_UNALLOCATED, .. })
        ));
    }

    #[test]
    fn h245_handshake_hands_out_rtp_proxy() {
        let mut gw = H323Gateway::new("gw:2720", "rtp-proxy:5004");
        let tcs_ack = gw.handle_h245(&H245Message::TerminalCapabilitySet {
            sequence: 3,
            capabilities: vec![],
        });
        assert!(matches!(
            tcs_ack[0],
            H323Message::H245(H245Message::TerminalCapabilitySetAck { sequence: 3 })
        ));
        let msd_ack = gw.handle_h245(&H245Message::MasterSlaveDetermination {
            terminal_type: 60,
            determination_number: 1,
        });
        assert!(matches!(
            msd_ack[0],
            H323Message::H245(H245Message::MasterSlaveDeterminationAck {
                remote_is_master: false
            })
        ));
        let olc_ack = gw.handle_h245(&H245Message::OpenLogicalChannel {
            channel: 5,
            kind: "video".into(),
            codec: "H.263".into(),
        });
        assert!(matches!(
            &olc_ack[0],
            H323Message::H245(H245Message::OpenLogicalChannelAck { channel: 5, media_address })
                if media_address == "rtp-proxy:5004"
        ));
    }

    #[test]
    fn release_complete_leaves_the_session() {
        let mut gw = H323Gateway::new("gw:2720", "rtp:1");
        let mut server = SessionServer::new();
        gw.handle(&setup(1, "alice-h323", "new-conf"), &mut server);
        let session = server.session_ids().next().unwrap();
        assert_eq!(gw.session_of(1), Some(session));
        gw.handle(
            &H323Message::Q931(Q931Message::ReleaseComplete {
                call_reference: 1,
                cause: CAUSE_NORMAL,
            }),
            &mut server,
        );
        assert_eq!(gw.call_count(), 0);
        // Ad-hoc session evaporated when the only member left.
        assert_eq!(server.session_count(), 0);
    }

    #[test]
    fn telemetry_times_setup_and_counts_outcomes() {
        use std::sync::Arc;

        use mmcs_telemetry::{ManualClock, Registry};
        use mmcs_util::time::SimDuration;

        let registry = Registry::new();
        let clock = Arc::new(ManualClock::with_step(SimDuration::from_micros(400)));
        let metrics = CallSetupMetrics::register(&registry, "h323", clock);
        let mut gw = H323Gateway::new("gw:2720", "rtp:1");
        gw.set_metrics(metrics.clone());
        let mut server = SessionServer::new();

        gw.handle(&setup(1, "alice-h323", "new-conf"), &mut server);
        gw.handle(&setup(2, "bob-h323", "conf-99"), &mut server);
        gw.handle(
            &H323Message::Q931(Q931Message::ReleaseComplete {
                call_reference: 1,
                cause: CAUSE_NORMAL,
            }),
            &mut server,
        );

        assert_eq!(metrics.attempts.get(), 2);
        assert_eq!(metrics.setups.get(), 1);
        assert_eq!(metrics.failures.get(), 1);
        assert_eq!(metrics.teardowns.get(), 1);
        let latency = metrics.setup_latency.snapshot();
        assert_eq!(latency.count(), 2);
        // Each span reads the stepping clock exactly twice: 400us apiece.
        assert_eq!(latency.sum(), 2 * 400_000);
        assert!(registry.render_prometheus().contains("h323_call_setups_total 1"));
    }

    #[test]
    fn two_endpoints_share_one_conference() {
        let mut gw = H323Gateway::new("gw:2720", "rtp:1");
        let mut server = SessionServer::new();
        gw.handle(&setup(1, "alice-h323", "new-conf"), &mut server);
        let session = server.session_ids().next().unwrap();
        let callee = format!("conf-{}", session.value());
        gw.handle(&setup(2, "bob-h323", &callee), &mut server);
        assert_eq!(server.session(session).unwrap().member_count(), 2);
        assert_eq!(gw.session_of(1), gw.session_of(2));
    }
}
