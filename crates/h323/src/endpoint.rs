//! A client-side H.323 endpoint (terminal) state machine.
//!
//! Drives the full ladder the examples and integration tests exercise:
//! gatekeeper discovery → registration → admission → Q.931 call setup →
//! H.245 capability/master-slave/logical-channel handshakes → media
//! address learned → disengage on hangup. Sans-IO: feed replies in,
//! collect requests out.

use crate::msg::{Capability, H245Message, H323Message, Q931Message, RasMessage};

/// Endpoint call/registration state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointState {
    /// Nothing sent yet.
    Idle,
    /// GRQ sent.
    Discovering,
    /// RRQ sent.
    Registering,
    /// Registered, no call.
    Registered,
    /// ARQ sent.
    Admitting,
    /// Setup sent.
    Calling,
    /// Connect received; H.245 in progress.
    Negotiating,
    /// Logical channels open; media flows.
    InCall,
    /// Call over, still registered.
    Released,
    /// A reject ended the attempt.
    Failed,
}

/// The endpoint. See the [module docs](self).
#[derive(Debug)]
pub struct H323Endpoint {
    alias: String,
    state: EndpointState,
    endpoint_id: Option<u32>,
    call_reference: u16,
    destination: Option<String>,
    media_address: Option<String>,
    next_channel: u16,
}

impl H323Endpoint {
    /// Creates an idle endpoint with the given alias.
    pub fn new(alias: impl Into<String>) -> Self {
        Self {
            alias: alias.into(),
            state: EndpointState::Idle,
            endpoint_id: None,
            call_reference: 0,
            destination: None,
            media_address: None,
            next_channel: 1,
        }
    }

    /// Current state.
    pub fn state(&self) -> EndpointState {
        self.state
    }

    /// The media (RTP proxy) address learned from OLC Ack, once in call.
    pub fn media_address(&self) -> Option<&str> {
        self.media_address.as_deref()
    }

    /// The gatekeeper-assigned id, once registered.
    pub fn endpoint_id(&self) -> Option<u32> {
        self.endpoint_id
    }

    /// Starts discovery + registration; returns the GRQ to send.
    ///
    /// # Panics
    ///
    /// Panics unless idle.
    pub fn start(&mut self) -> H323Message {
        assert_eq!(self.state, EndpointState::Idle, "endpoint already started");
        self.state = EndpointState::Discovering;
        H323Message::Ras(RasMessage::GatekeeperRequest {
            endpoint_alias: self.alias.clone(),
        })
    }

    /// Places a call once registered; returns the ARQ.
    ///
    /// # Panics
    ///
    /// Panics unless registered and call-idle.
    pub fn place_call(&mut self, destination: impl Into<String>, bandwidth: u32) -> H323Message {
        assert!(
            matches!(self.state, EndpointState::Registered | EndpointState::Released),
            "cannot place a call in state {:?}",
            self.state
        );
        self.destination = Some(destination.into());
        self.state = EndpointState::Admitting;
        H323Message::Ras(RasMessage::AdmissionRequest {
            endpoint_id: self.endpoint_id.expect("registered implies id"),
            destination: self.destination.clone().expect("just set"),
            bandwidth,
        })
    }

    /// Hangs up; returns ReleaseComplete and the DRQ.
    ///
    /// # Panics
    ///
    /// Panics unless in a call.
    pub fn hang_up(&mut self) -> Vec<H323Message> {
        assert!(
            matches!(self.state, EndpointState::InCall | EndpointState::Negotiating),
            "no call to hang up in state {:?}",
            self.state
        );
        self.state = EndpointState::Released;
        vec![
            H323Message::Q931(Q931Message::ReleaseComplete {
                call_reference: self.call_reference,
                cause: 16,
            }),
            H323Message::Ras(RasMessage::DisengageRequest {
                endpoint_id: self.endpoint_id.expect("in call implies registered"),
                call_reference: self.call_reference,
            }),
        ]
    }

    /// Feeds a message from the gatekeeper/gateway; returns follow-ups
    /// to send. Unknown/ignorable messages produce no output.
    pub fn on_message(&mut self, message: &H323Message) -> Vec<H323Message> {
        match (self.state, message) {
            (EndpointState::Discovering, H323Message::Ras(RasMessage::GatekeeperConfirm { .. })) => {
                self.state = EndpointState::Registering;
                vec![H323Message::Ras(RasMessage::RegistrationRequest {
                    endpoint_alias: self.alias.clone(),
                    signal_address: format!("{}:1720", self.alias),
                })]
            }
            (
                EndpointState::Registering,
                H323Message::Ras(RasMessage::RegistrationConfirm { endpoint_id }),
            ) => {
                self.endpoint_id = Some(*endpoint_id);
                self.state = EndpointState::Registered;
                Vec::new()
            }
            (
                EndpointState::Admitting,
                H323Message::Ras(RasMessage::AdmissionConfirm { .. }),
            ) => {
                self.call_reference = self.call_reference.wrapping_add(1).max(1);
                self.state = EndpointState::Calling;
                vec![H323Message::Q931(Q931Message::Setup {
                    call_reference: self.call_reference,
                    caller: self.alias.clone(),
                    callee: self.destination.clone().unwrap_or_default(),
                })]
            }
            (EndpointState::Calling, H323Message::Q931(Q931Message::Connect { .. })) => {
                self.state = EndpointState::Negotiating;
                vec![
                    H323Message::H245(H245Message::TerminalCapabilitySet {
                        sequence: 1,
                        capabilities: vec![
                            Capability {
                                kind: "audio".into(),
                                codec: "G.711".into(),
                            },
                            Capability {
                                kind: "video".into(),
                                codec: "H.263".into(),
                            },
                        ],
                    }),
                    H245Message::MasterSlaveDetermination {
                        terminal_type: 60,
                        determination_number: 1,
                    }
                    .into(),
                ]
            }
            (
                EndpointState::Negotiating,
                H323Message::H245(H245Message::TerminalCapabilitySetAck { .. }),
            ) => {
                let channel = self.next_channel;
                self.next_channel += 1;
                vec![H323Message::H245(H245Message::OpenLogicalChannel {
                    channel,
                    kind: "video".into(),
                    codec: "H.263".into(),
                })]
            }
            (
                EndpointState::Negotiating,
                H323Message::H245(H245Message::OpenLogicalChannelAck { media_address, .. }),
            ) => {
                self.media_address = Some(media_address.clone());
                self.state = EndpointState::InCall;
                Vec::new()
            }
            (
                _,
                H323Message::Ras(
                    RasMessage::GatekeeperReject { .. }
                    | RasMessage::RegistrationReject { .. }
                    | RasMessage::AdmissionReject { .. },
                ),
            ) => {
                self.state = EndpointState::Failed;
                Vec::new()
            }
            (_, H323Message::Q931(Q931Message::ReleaseComplete { .. })) => {
                if matches!(
                    self.state,
                    EndpointState::Calling | EndpointState::Negotiating | EndpointState::InCall
                ) {
                    self.state = EndpointState::Released;
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }
}

impl From<H245Message> for H323Message {
    fn from(message: H245Message) -> H323Message {
        H323Message::H245(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gatekeeper::Gatekeeper;
    use crate::gateway::H323Gateway;
    use mmcs_xgsp::server::SessionServer;

    /// Drives an endpoint against a gatekeeper + gateway until quiescent.
    fn pump(
        endpoint: &mut H323Endpoint,
        outbound: Vec<H323Message>,
        gk: &mut Gatekeeper,
        gw: &mut H323Gateway,
        server: &mut SessionServer,
    ) {
        let mut queue = outbound;
        while let Some(message) = queue.pop() {
            let replies = match &message {
                H323Message::Ras(ras) => vec![H323Message::Ras(gk.handle(ras))],
                other => gw.handle(other, server),
            };
            for reply in replies {
                queue.extend(endpoint.on_message(&reply));
            }
        }
    }

    #[test]
    fn full_ladder_reaches_in_call_with_media_address() {
        let mut endpoint = H323Endpoint::new("alice-h323");
        let mut gk = Gatekeeper::new("gk", "gw:1720", 100_000);
        let mut gw = H323Gateway::new("gw:2720", "rtp-proxy:5004");
        let mut server = SessionServer::new();

        let grq = endpoint.start();
        pump(&mut endpoint, vec![grq], &mut gk, &mut gw, &mut server);
        assert_eq!(endpoint.state(), EndpointState::Registered);

        let arq = endpoint.place_call("new-conf", 6400);
        pump(&mut endpoint, vec![arq], &mut gk, &mut gw, &mut server);
        assert_eq!(endpoint.state(), EndpointState::InCall);
        assert_eq!(endpoint.media_address(), Some("rtp-proxy:5004"));
        assert_eq!(server.session_count(), 1);

        let bye = endpoint.hang_up();
        pump(&mut endpoint, bye, &mut gk, &mut gw, &mut server);
        assert_eq!(endpoint.state(), EndpointState::Released);
        assert_eq!(server.session_count(), 0);
    }

    #[test]
    fn admission_reject_fails_the_endpoint() {
        let mut endpoint = H323Endpoint::new("alice-h323");
        let mut gk = Gatekeeper::new("gk", "gw:1720", 10); // tiny budget
        let mut gw = H323Gateway::new("gw:2720", "rtp:1");
        let mut server = SessionServer::new();
        let grq = endpoint.start();
        pump(&mut endpoint, vec![grq], &mut gk, &mut gw, &mut server);
        let arq = endpoint.place_call("new-conf", 6400);
        pump(&mut endpoint, vec![arq], &mut gk, &mut gw, &mut server);
        assert_eq!(endpoint.state(), EndpointState::Failed);
    }

    #[test]
    #[should_panic(expected = "already started")]
    fn double_start_panics() {
        let mut endpoint = H323Endpoint::new("x");
        endpoint.start();
        endpoint.start();
    }

    #[test]
    #[should_panic(expected = "cannot place a call")]
    fn call_before_registration_panics() {
        let mut endpoint = H323Endpoint::new("x");
        endpoint.place_call("conf-1", 100);
    }
}
