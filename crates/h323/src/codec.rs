//! Binary TLV codec for H.323 messages.
//!
//! Layout: one tag byte per message variant, then fields in declaration
//! order. Integers are big-endian fixed width; strings and lists are
//! length-prefixed (u16 count / u16 byte length). The real protocol uses
//! ASN.1 PER — see the substitution note in the [crate docs](crate).

use bytes::{BufMut, Bytes, BytesMut};
use core::fmt;

use crate::msg::{Capability, H245Message, H323Message, Q931Message, RasMessage, RejectReason};

mod tag {
    pub const GRQ: u8 = 0x01;
    pub const GCF: u8 = 0x02;
    pub const GRJ: u8 = 0x03;
    pub const RRQ: u8 = 0x04;
    pub const RCF: u8 = 0x05;
    pub const RRJ: u8 = 0x06;
    pub const ARQ: u8 = 0x07;
    pub const ACF: u8 = 0x08;
    pub const ARJ: u8 = 0x09;
    pub const DRQ: u8 = 0x0A;
    pub const DCF: u8 = 0x0B;

    pub const SETUP: u8 = 0x20;
    pub const CALL_PROCEEDING: u8 = 0x21;
    pub const ALERTING: u8 = 0x22;
    pub const CONNECT: u8 = 0x23;
    pub const RELEASE_COMPLETE: u8 = 0x24;

    pub const TCS: u8 = 0x40;
    pub const TCS_ACK: u8 = 0x41;
    pub const MSD: u8 = 0x42;
    pub const MSD_ACK: u8 = 0x43;
    pub const OLC: u8 = 0x44;
    pub const OLC_ACK: u8 = 0x45;
    pub const CLC: u8 = 0x46;
    pub const END_SESSION: u8 = 0x47;
}

fn reason_code(reason: RejectReason) -> u8 {
    match reason {
        RejectReason::NotRegistered => 1,
        RejectReason::DuplicateAlias => 2,
        RejectReason::InsufficientBandwidth => 3,
        RejectReason::InvalidZone => 4,
        RejectReason::UnknownCall => 5,
    }
}

fn reason_from(code: u8) -> Result<RejectReason, DecodeH323Error> {
    Ok(match code {
        1 => RejectReason::NotRegistered,
        2 => RejectReason::DuplicateAlias,
        3 => RejectReason::InsufficientBandwidth,
        4 => RejectReason::InvalidZone,
        5 => RejectReason::UnknownCall,
        other => return Err(DecodeH323Error::BadField("reject reason", other as u32)),
    })
}

/// Encodes a message into its TLV wire form.
pub fn encode(message: &H323Message) -> Bytes {
    let mut buf = BytesMut::new();
    match message {
        H323Message::Ras(ras) => encode_ras(ras, &mut buf),
        H323Message::Q931(q931) => encode_q931(q931, &mut buf),
        H323Message::H245(h245) => encode_h245(h245, &mut buf),
    }
    buf.freeze()
}

fn put_str(buf: &mut BytesMut, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "string too long for wire");
    buf.put_u16(bytes.len() as u16);
    buf.put_slice(bytes);
}

fn encode_ras(ras: &RasMessage, buf: &mut BytesMut) {
    match ras {
        RasMessage::GatekeeperRequest { endpoint_alias } => {
            buf.put_u8(tag::GRQ);
            put_str(buf, endpoint_alias);
        }
        RasMessage::GatekeeperConfirm { gatekeeper_id } => {
            buf.put_u8(tag::GCF);
            put_str(buf, gatekeeper_id);
        }
        RasMessage::GatekeeperReject { reason } => {
            buf.put_u8(tag::GRJ);
            buf.put_u8(reason_code(*reason));
        }
        RasMessage::RegistrationRequest {
            endpoint_alias,
            signal_address,
        } => {
            buf.put_u8(tag::RRQ);
            put_str(buf, endpoint_alias);
            put_str(buf, signal_address);
        }
        RasMessage::RegistrationConfirm { endpoint_id } => {
            buf.put_u8(tag::RCF);
            buf.put_u32(*endpoint_id);
        }
        RasMessage::RegistrationReject { reason } => {
            buf.put_u8(tag::RRJ);
            buf.put_u8(reason_code(*reason));
        }
        RasMessage::AdmissionRequest {
            endpoint_id,
            destination,
            bandwidth,
        } => {
            buf.put_u8(tag::ARQ);
            buf.put_u32(*endpoint_id);
            put_str(buf, destination);
            buf.put_u32(*bandwidth);
        }
        RasMessage::AdmissionConfirm {
            bandwidth,
            call_signal_address,
        } => {
            buf.put_u8(tag::ACF);
            buf.put_u32(*bandwidth);
            put_str(buf, call_signal_address);
        }
        RasMessage::AdmissionReject { reason } => {
            buf.put_u8(tag::ARJ);
            buf.put_u8(reason_code(*reason));
        }
        RasMessage::DisengageRequest {
            endpoint_id,
            call_reference,
        } => {
            buf.put_u8(tag::DRQ);
            buf.put_u32(*endpoint_id);
            buf.put_u16(*call_reference);
        }
        RasMessage::DisengageConfirm => {
            buf.put_u8(tag::DCF);
        }
    }
}

fn encode_q931(q931: &Q931Message, buf: &mut BytesMut) {
    match q931 {
        Q931Message::Setup {
            call_reference,
            caller,
            callee,
        } => {
            buf.put_u8(tag::SETUP);
            buf.put_u16(*call_reference);
            put_str(buf, caller);
            put_str(buf, callee);
        }
        Q931Message::CallProceeding { call_reference } => {
            buf.put_u8(tag::CALL_PROCEEDING);
            buf.put_u16(*call_reference);
        }
        Q931Message::Alerting { call_reference } => {
            buf.put_u8(tag::ALERTING);
            buf.put_u16(*call_reference);
        }
        Q931Message::Connect {
            call_reference,
            h245_address,
        } => {
            buf.put_u8(tag::CONNECT);
            buf.put_u16(*call_reference);
            put_str(buf, h245_address);
        }
        Q931Message::ReleaseComplete {
            call_reference,
            cause,
        } => {
            buf.put_u8(tag::RELEASE_COMPLETE);
            buf.put_u16(*call_reference);
            buf.put_u8(*cause);
        }
    }
}

fn encode_h245(h245: &H245Message, buf: &mut BytesMut) {
    match h245 {
        H245Message::TerminalCapabilitySet {
            sequence,
            capabilities,
        } => {
            buf.put_u8(tag::TCS);
            buf.put_u8(*sequence);
            assert!(capabilities.len() <= u16::MAX as usize);
            buf.put_u16(capabilities.len() as u16);
            for capability in capabilities {
                put_str(buf, &capability.kind);
                put_str(buf, &capability.codec);
            }
        }
        H245Message::TerminalCapabilitySetAck { sequence } => {
            buf.put_u8(tag::TCS_ACK);
            buf.put_u8(*sequence);
        }
        H245Message::MasterSlaveDetermination {
            terminal_type,
            determination_number,
        } => {
            buf.put_u8(tag::MSD);
            buf.put_u8(*terminal_type);
            buf.put_u32(*determination_number);
        }
        H245Message::MasterSlaveDeterminationAck { remote_is_master } => {
            buf.put_u8(tag::MSD_ACK);
            buf.put_u8(u8::from(*remote_is_master));
        }
        H245Message::OpenLogicalChannel {
            channel,
            kind,
            codec,
        } => {
            buf.put_u8(tag::OLC);
            buf.put_u16(*channel);
            put_str(buf, kind);
            put_str(buf, codec);
        }
        H245Message::OpenLogicalChannelAck {
            channel,
            media_address,
        } => {
            buf.put_u8(tag::OLC_ACK);
            buf.put_u16(*channel);
            put_str(buf, media_address);
        }
        H245Message::CloseLogicalChannel { channel } => {
            buf.put_u8(tag::CLC);
            buf.put_u16(*channel);
        }
        H245Message::EndSession => {
            buf.put_u8(tag::END_SESSION);
        }
    }
}

/// A cursor over the wire bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, DecodeH323Error> {
        let v = *self
            .bytes
            .get(self.pos)
            .ok_or(DecodeH323Error::Truncated)?;
        self.pos += 1;
        Ok(v)
    }

    fn u16(&mut self) -> Result<u16, DecodeH323Error> {
        let hi = self.u8()? as u16;
        let lo = self.u8()? as u16;
        Ok(hi << 8 | lo)
    }

    fn u32(&mut self) -> Result<u32, DecodeH323Error> {
        let hi = self.u16()? as u32;
        let lo = self.u16()? as u32;
        Ok(hi << 16 | lo)
    }

    fn str(&mut self) -> Result<String, DecodeH323Error> {
        let len = self.u16()? as usize;
        let end = self.pos + len;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeH323Error::Truncated)?;
        self.pos = end;
        String::from_utf8(slice.to_vec()).map_err(|_| DecodeH323Error::BadUtf8)
    }

    fn finish(&self) -> Result<(), DecodeH323Error> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeH323Error::TrailingBytes(self.bytes.len() - self.pos))
        }
    }
}

/// Decodes a message from its TLV wire form.
///
/// # Errors
///
/// Returns [`DecodeH323Error`] on truncation, unknown tags, invalid
/// enum codes, bad UTF-8 or trailing bytes.
pub fn decode(wire: &[u8]) -> Result<H323Message, DecodeH323Error> {
    let mut r = Reader {
        bytes: wire,
        pos: 0,
    };
    let tag = r.u8()?;
    let message = match tag {
        tag::GRQ => H323Message::Ras(RasMessage::GatekeeperRequest {
            endpoint_alias: r.str()?,
        }),
        tag::GCF => H323Message::Ras(RasMessage::GatekeeperConfirm {
            gatekeeper_id: r.str()?,
        }),
        tag::GRJ => H323Message::Ras(RasMessage::GatekeeperReject {
            reason: reason_from(r.u8()?)?,
        }),
        tag::RRQ => H323Message::Ras(RasMessage::RegistrationRequest {
            endpoint_alias: r.str()?,
            signal_address: r.str()?,
        }),
        tag::RCF => H323Message::Ras(RasMessage::RegistrationConfirm {
            endpoint_id: r.u32()?,
        }),
        tag::RRJ => H323Message::Ras(RasMessage::RegistrationReject {
            reason: reason_from(r.u8()?)?,
        }),
        tag::ARQ => H323Message::Ras(RasMessage::AdmissionRequest {
            endpoint_id: r.u32()?,
            destination: r.str()?,
            bandwidth: r.u32()?,
        }),
        tag::ACF => H323Message::Ras(RasMessage::AdmissionConfirm {
            bandwidth: r.u32()?,
            call_signal_address: r.str()?,
        }),
        tag::ARJ => H323Message::Ras(RasMessage::AdmissionReject {
            reason: reason_from(r.u8()?)?,
        }),
        tag::DRQ => H323Message::Ras(RasMessage::DisengageRequest {
            endpoint_id: r.u32()?,
            call_reference: r.u16()?,
        }),
        tag::DCF => H323Message::Ras(RasMessage::DisengageConfirm),
        tag::SETUP => H323Message::Q931(Q931Message::Setup {
            call_reference: r.u16()?,
            caller: r.str()?,
            callee: r.str()?,
        }),
        tag::CALL_PROCEEDING => H323Message::Q931(Q931Message::CallProceeding {
            call_reference: r.u16()?,
        }),
        tag::ALERTING => H323Message::Q931(Q931Message::Alerting {
            call_reference: r.u16()?,
        }),
        tag::CONNECT => H323Message::Q931(Q931Message::Connect {
            call_reference: r.u16()?,
            h245_address: r.str()?,
        }),
        tag::RELEASE_COMPLETE => H323Message::Q931(Q931Message::ReleaseComplete {
            call_reference: r.u16()?,
            cause: r.u8()?,
        }),
        tag::TCS => {
            let sequence = r.u8()?;
            let count = r.u16()? as usize;
            let mut capabilities = Vec::with_capacity(count.min(64));
            for _ in 0..count {
                capabilities.push(Capability {
                    kind: r.str()?,
                    codec: r.str()?,
                });
            }
            H323Message::H245(H245Message::TerminalCapabilitySet {
                sequence,
                capabilities,
            })
        }
        tag::TCS_ACK => H323Message::H245(H245Message::TerminalCapabilitySetAck {
            sequence: r.u8()?,
        }),
        tag::MSD => H323Message::H245(H245Message::MasterSlaveDetermination {
            terminal_type: r.u8()?,
            determination_number: r.u32()?,
        }),
        tag::MSD_ACK => H323Message::H245(H245Message::MasterSlaveDeterminationAck {
            remote_is_master: r.u8()? != 0,
        }),
        tag::OLC => H323Message::H245(H245Message::OpenLogicalChannel {
            channel: r.u16()?,
            kind: r.str()?,
            codec: r.str()?,
        }),
        tag::OLC_ACK => H323Message::H245(H245Message::OpenLogicalChannelAck {
            channel: r.u16()?,
            media_address: r.str()?,
        }),
        tag::CLC => H323Message::H245(H245Message::CloseLogicalChannel {
            channel: r.u16()?,
        }),
        tag::END_SESSION => H323Message::H245(H245Message::EndSession),
        other => return Err(DecodeH323Error::UnknownTag(other)),
    };
    r.finish()?;
    Ok(message)
}

/// Error decoding an H.323 TLV message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeH323Error {
    /// The buffer ended mid-field.
    Truncated,
    /// The leading tag byte named no message.
    UnknownTag(u8),
    /// An enum field carried an invalid code.
    BadField(&'static str, u32),
    /// A string field was not UTF-8.
    BadUtf8,
    /// Bytes remained after a complete message.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeH323Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeH323Error::Truncated => write!(f, "truncated h323 message"),
            DecodeH323Error::UnknownTag(t) => write!(f, "unknown h323 tag {t:#04x}"),
            DecodeH323Error::BadField(name, v) => write!(f, "bad {name} value {v}"),
            DecodeH323Error::BadUtf8 => write!(f, "string field is not utf-8"),
            DecodeH323Error::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for DecodeH323Error {}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<H323Message> {
        vec![
            H323Message::Ras(RasMessage::GatekeeperRequest {
                endpoint_alias: "alice-h323".into(),
            }),
            H323Message::Ras(RasMessage::GatekeeperConfirm {
                gatekeeper_id: "gk.mmcs".into(),
            }),
            H323Message::Ras(RasMessage::GatekeeperReject {
                reason: RejectReason::InvalidZone,
            }),
            H323Message::Ras(RasMessage::RegistrationRequest {
                endpoint_alias: "alice-h323".into(),
                signal_address: "10.0.0.4:1720".into(),
            }),
            H323Message::Ras(RasMessage::RegistrationConfirm { endpoint_id: 42 }),
            H323Message::Ras(RasMessage::RegistrationReject {
                reason: RejectReason::DuplicateAlias,
            }),
            H323Message::Ras(RasMessage::AdmissionRequest {
                endpoint_id: 42,
                destination: "conf-7".into(),
                bandwidth: 6400,
            }),
            H323Message::Ras(RasMessage::AdmissionConfirm {
                bandwidth: 6400,
                call_signal_address: "gw.mmcs:1720".into(),
            }),
            H323Message::Ras(RasMessage::AdmissionReject {
                reason: RejectReason::InsufficientBandwidth,
            }),
            H323Message::Ras(RasMessage::DisengageRequest {
                endpoint_id: 42,
                call_reference: 9,
            }),
            H323Message::Ras(RasMessage::DisengageConfirm),
            H323Message::Q931(Q931Message::Setup {
                call_reference: 9,
                caller: "alice-h323".into(),
                callee: "conf-7".into(),
            }),
            H323Message::Q931(Q931Message::CallProceeding { call_reference: 9 }),
            H323Message::Q931(Q931Message::Alerting { call_reference: 9 }),
            H323Message::Q931(Q931Message::Connect {
                call_reference: 9,
                h245_address: "gw.mmcs:2720".into(),
            }),
            H323Message::Q931(Q931Message::ReleaseComplete {
                call_reference: 9,
                cause: 16,
            }),
            H323Message::H245(H245Message::TerminalCapabilitySet {
                sequence: 1,
                capabilities: vec![
                    Capability {
                        kind: "audio".into(),
                        codec: "G.711".into(),
                    },
                    Capability {
                        kind: "video".into(),
                        codec: "H.263".into(),
                    },
                ],
            }),
            H323Message::H245(H245Message::TerminalCapabilitySetAck { sequence: 1 }),
            H323Message::H245(H245Message::MasterSlaveDetermination {
                terminal_type: 60,
                determination_number: 123456,
            }),
            H323Message::H245(H245Message::MasterSlaveDeterminationAck {
                remote_is_master: true,
            }),
            H323Message::H245(H245Message::OpenLogicalChannel {
                channel: 1,
                kind: "video".into(),
                codec: "H.263".into(),
            }),
            H323Message::H245(H245Message::OpenLogicalChannelAck {
                channel: 1,
                media_address: "rtp-proxy.mmcs:5004".into(),
            }),
            H323Message::H245(H245Message::CloseLogicalChannel { channel: 1 }),
            H323Message::H245(H245Message::EndSession),
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for message in all_messages() {
            let wire = encode(&message);
            let back = decode(&wire).unwrap_or_else(|e| panic!("{message:?}: {e}"));
            assert_eq!(back, message);
        }
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error_not_a_panic() {
        for message in all_messages() {
            let wire = encode(&message);
            for cut in 0..wire.len() {
                let result = decode(&wire[..cut]);
                assert!(result.is_err(), "{message:?} decoded from prefix {cut}");
            }
        }
    }

    #[test]
    fn unknown_tag_and_trailing_bytes() {
        assert_eq!(decode(&[0xFF]), Err(DecodeH323Error::UnknownTag(0xFF)));
        let mut wire = encode(&H323Message::Ras(RasMessage::DisengageConfirm)).to_vec();
        wire.push(0);
        assert_eq!(decode(&wire), Err(DecodeH323Error::TrailingBytes(1)));
    }

    #[test]
    fn bad_reason_code_is_an_error() {
        // GRJ with reason byte 99.
        assert!(matches!(
            decode(&[0x03, 99]),
            Err(DecodeH323Error::BadField("reject reason", 99))
        ));
    }

    #[test]
    fn bad_utf8_is_an_error() {
        // GRQ with a 2-byte string that is invalid UTF-8.
        let wire = [0x01, 0x00, 0x02, 0xFF, 0xFE];
        assert_eq!(decode(&wire), Err(DecodeH323Error::BadUtf8));
    }
}
