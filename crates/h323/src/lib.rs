//! H.323 subset for Global-MMCS: H.225 RAS, Q.931 call signaling, H.245
//! media control, a gatekeeper and the H.323 → XGSP gateway.
//!
//! "The H.323 Servers including a H.323 Gatekeeper and H.323 gateway
//! create a new H.323 administration domain for individual H.323
//! endpoints, translate H.225 and H.245 signaling from these endpoints
//! into XGSP signaling messages, and redirect their RTP channels to the
//! NaradaBrokering servers" (§3.2). This crate provides exactly those
//! pieces:
//!
//! * [`msg`] — the message sets: H.225 RAS (GRQ/GCF/GRJ, RRQ/RCF/RRJ,
//!   ARQ/ACF/ARJ, DRQ/DCF), Q.931 call signaling (Setup, Call
//!   Proceeding, Alerting, Connect, Release Complete) and H.245
//!   (TerminalCapabilitySet/Ack, MasterSlaveDetermination/Ack,
//!   OpenLogicalChannel/Ack, CloseLogicalChannel, EndSession).
//! * [`codec`] — a compact binary TLV codec for those messages. The
//!   real wire format is ASN.1 PER; per `DESIGN.md` §2 we substitute a
//!   TLV encoding because Global-MMCS exercises the signaling state
//!   machines, not the bit packing.
//! * [`gatekeeper`] — endpoint registration, admission control and
//!   bandwidth accounting.
//! * [`endpoint`] — a client-side call state machine (the "H.323
//!   terminal" used by examples and tests).
//! * [`gateway`] — translation into XGSP: an admitted Setup to a
//!   conference alias becomes `Join`, Release Complete becomes `Leave`,
//!   and H.245 OpenLogicalChannel returns the broker RTP proxy as the
//!   media sink.

pub mod codec;
pub mod endpoint;
pub mod gatekeeper;
pub mod gateway;
pub mod msg;

pub use gatekeeper::Gatekeeper;
pub use gateway::H323Gateway;
pub use msg::H323Message;
