//! H.225 RAS, Q.931 and H.245 message definitions.
//!
//! Field coverage is the working set the Global-MMCS signaling paths
//! exercise; see the [crate docs](crate) for the substitution note on
//! the wire format.

/// Reasons a gatekeeper rejects a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The alias or endpoint is not registered.
    NotRegistered,
    /// Another endpoint owns the alias.
    DuplicateAlias,
    /// Admission would exceed the zone's bandwidth budget.
    InsufficientBandwidth,
    /// The gatekeeper does not serve this endpoint/zone.
    InvalidZone,
    /// The call reference is unknown.
    UnknownCall,
}

/// H.225 RAS messages (endpoint ⇄ gatekeeper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RasMessage {
    /// Gatekeeper discovery request.
    GatekeeperRequest {
        /// The endpoint's alias.
        endpoint_alias: String,
    },
    /// Discovery confirm.
    GatekeeperConfirm {
        /// The gatekeeper's identifier.
        gatekeeper_id: String,
    },
    /// Discovery reject.
    GatekeeperReject {
        /// Why.
        reason: RejectReason,
    },
    /// Registration request.
    RegistrationRequest {
        /// The endpoint's alias (e.g. `alice-h323`).
        endpoint_alias: String,
        /// The endpoint's signaling address.
        signal_address: String,
    },
    /// Registration confirm.
    RegistrationConfirm {
        /// Gatekeeper-assigned endpoint identifier.
        endpoint_id: u32,
    },
    /// Registration reject.
    RegistrationReject {
        /// Why.
        reason: RejectReason,
    },
    /// Admission request (before placing a call).
    AdmissionRequest {
        /// The registered endpoint id.
        endpoint_id: u32,
        /// The callee alias (a user or a conference alias).
        destination: String,
        /// Requested bandwidth in units of 100 bps (H.225 convention).
        bandwidth: u32,
    },
    /// Admission confirm.
    AdmissionConfirm {
        /// Granted bandwidth (may be less than requested).
        bandwidth: u32,
        /// Where to send the Q.931 Setup (the gateway, in Global-MMCS).
        call_signal_address: String,
    },
    /// Admission reject.
    AdmissionReject {
        /// Why.
        reason: RejectReason,
    },
    /// Disengage request (call ended; release bandwidth).
    DisengageRequest {
        /// The registered endpoint id.
        endpoint_id: u32,
        /// The call reference being released.
        call_reference: u16,
    },
    /// Disengage confirm.
    DisengageConfirm,
}

/// Q.931 call-signaling messages (endpoint ⇄ gateway).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Q931Message {
    /// Call setup.
    Setup {
        /// Caller-chosen call reference value.
        call_reference: u16,
        /// Caller alias.
        caller: String,
        /// Callee alias (conference alias for Global-MMCS calls).
        callee: String,
    },
    /// The network is working on it.
    CallProceeding {
        /// Echoed call reference.
        call_reference: u16,
    },
    /// Remote is alerting.
    Alerting {
        /// Echoed call reference.
        call_reference: u16,
    },
    /// Call accepted; H.245 control channel address included.
    Connect {
        /// Echoed call reference.
        call_reference: u16,
        /// Address of the H.245 control channel.
        h245_address: String,
    },
    /// Call torn down.
    ReleaseComplete {
        /// Echoed call reference.
        call_reference: u16,
        /// Q.850-style cause value (16 = normal clearing).
        cause: u8,
    },
}

/// A media capability advertised in a TerminalCapabilitySet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capability {
    /// Capability kind: `audio` or `video`.
    pub kind: String,
    /// Codec name (G.711, GSM, H.261, H.263 …).
    pub codec: String,
}

/// H.245 control messages (after Connect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H245Message {
    /// Capability exchange.
    TerminalCapabilitySet {
        /// Sequence number.
        sequence: u8,
        /// Capabilities offered.
        capabilities: Vec<Capability>,
    },
    /// Capability ack.
    TerminalCapabilitySetAck {
        /// Echoed sequence number.
        sequence: u8,
    },
    /// Master/slave determination.
    MasterSlaveDetermination {
        /// Terminal type (higher wins master).
        terminal_type: u8,
        /// Tie-break random number.
        determination_number: u32,
    },
    /// Master/slave result.
    MasterSlaveDeterminationAck {
        /// `true` when the *recipient* is master.
        remote_is_master: bool,
    },
    /// Open a media channel.
    OpenLogicalChannel {
        /// Channel number.
        channel: u16,
        /// `audio` or `video`.
        kind: String,
        /// Codec.
        codec: String,
    },
    /// Channel accepted; media goes to this transport address.
    OpenLogicalChannelAck {
        /// Echoed channel number.
        channel: u16,
        /// Where to send RTP (the broker RTP proxy).
        media_address: String,
    },
    /// Close a media channel.
    CloseLogicalChannel {
        /// Channel number.
        channel: u16,
    },
    /// End the H.245 session.
    EndSession,
}

/// Any H.323 signaling message (the unit the TLV codec encodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H323Message {
    /// An H.225 RAS message.
    Ras(RasMessage),
    /// A Q.931 call-signaling message.
    Q931(Q931Message),
    /// An H.245 control message.
    H245(H245Message),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_compare_and_clone() {
        let setup = Q931Message::Setup {
            call_reference: 7,
            caller: "alice-h323".into(),
            callee: "conf-1".into(),
        };
        assert_eq!(setup.clone(), setup);
        let wrapped = H323Message::Q931(setup);
        assert!(matches!(wrapped, H323Message::Q931(Q931Message::Setup { .. })));
    }

    #[test]
    fn reject_reasons_are_distinct() {
        let reasons = [
            RejectReason::NotRegistered,
            RejectReason::DuplicateAlias,
            RejectReason::InsufficientBandwidth,
            RejectReason::InvalidZone,
            RejectReason::UnknownCall,
        ];
        for (i, a) in reasons.iter().enumerate() {
            for (j, b) in reasons.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
        }
    }
}
