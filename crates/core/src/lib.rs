//! Global-MMCS: the Global Multimedia Collaboration System.
//!
//! This crate is the paper's headline artifact: the integration layer
//! that makes one conference span H.323 endpoints, SIP endpoints,
//! IM-born ad-hoc groups, the Admire community and streaming players —
//! all over a NaradaBrokering-style event broker, coordinated by the
//! XGSP session server and described/driven through web services.
//!
//! * [`system`] — [`system::GlobalMmcs`]: owns every server (XGSP
//!   session server, directories, calendar, gatekeeper, gateways, IM,
//!   presence, Helix, archive, the broker network) and routes each
//!   protocol's messages to its gateway and the resulting notifications
//!   back out to the right endpoints.
//! * [`web`] — the XGSP web server: the SOAP facade (`createSession`,
//!   `join`, `schedule`, …) and the calendar-driven opening of
//!   scheduled meetings.
//! * [`avs`] — the A/V service: active-speaker selection and video
//!   switching over the session's media streams.
//! * [`bridge`] — community bridging: mirror a session into a WSDL-CI
//!   collaboration server and run the paper's SOAP rendezvous exchange
//!   with Admire.
//! * [`hearme`] — the HearMe audio-only VoIP community service the
//!   paper reports having wrapped in web services.
//! * [`accessgrid`] — the Access Grid community: venues bound to
//!   multicast groups, bridged through multicast relays.
//! * [`quality`] — RTCP-driven conference quality monitoring.
//!
//! # Examples
//!
//! ```
//! use global_mmcs::system::GlobalMmcs;
//! use mmcs_xgsp::media::{MediaDescription, MediaKind};
//! use mmcs_xgsp::message::{SessionMode, XgspMessage};
//!
//! let mut mmcs = GlobalMmcs::new();
//! let outputs = mmcs.handle_xgsp(
//!     Some("alice"),
//!     XgspMessage::CreateSession {
//!         name: "quickstart".into(),
//!         mode: SessionMode::AdHoc,
//!         media: vec![MediaDescription::new(MediaKind::Audio, "PCMU")],
//!     },
//! );
//! assert!(!outputs.is_empty());
//! ```

pub mod accessgrid;
pub mod avs;
pub mod bridge;
pub mod hearme;
pub mod quality;
pub mod system;
pub mod web;

pub use system::GlobalMmcs;
