//! Community bridging: mirror sessions into WSDL-CI servers.
//!
//! "For Admire community, XGSP Web Server invokes the web-services of
//! Admire to notify the address of the rendezvous point. And Admire
//! responds with its rendezvous point in SOAP reply. After that, both
//! sides will create RTP agents on this rendezvous" (§3.2).
//! [`CommunityBridge`] runs that flow against any
//! [`CollaborationServer`] — the Admire service, a third-party MCU, a
//! HearMe-style VoIP bridge.

use std::collections::HashMap;

use mmcs_admire::agent::RtpAgent;
use mmcs_util::id::{SessionId, TerminalId};
use mmcs_xgsp::wsdl_ci::{CiError, CollaborationServer};

/// One bridged session's state.
#[derive(Debug)]
pub struct BridgedSession {
    /// The rendezvous address the community answered with.
    pub remote_rendezvous: String,
    /// Our RTP agent at the rendezvous.
    pub agent: RtpAgent,
}

/// Bridges XGSP sessions into one community. See the [module docs](self).
pub struct CommunityBridge {
    community: String,
    server: Box<dyn CollaborationServer>,
    bridged: HashMap<SessionId, BridgedSession>,
    local_rendezvous: String,
}

impl CommunityBridge {
    /// Wraps a community's collaboration server; `local_rendezvous` is
    /// the address Global-MMCS proposes for the RTP agents.
    pub fn new(
        community: impl Into<String>,
        server: Box<dyn CollaborationServer>,
        local_rendezvous: impl Into<String>,
    ) -> Self {
        Self {
            community: community.into(),
            server,
            bridged: HashMap::new(),
            local_rendezvous: local_rendezvous.into(),
        }
    }

    /// The community name.
    pub fn community(&self) -> &str {
        &self.community
    }

    /// The bridged-session record, if this session is bridged.
    pub fn bridged(&self, session: SessionId) -> Option<&BridgedSession> {
        self.bridged.get(&session)
    }

    /// Mutable access (tests relay through the agent).
    pub fn bridged_mut(&mut self, session: SessionId) -> Option<&mut BridgedSession> {
        self.bridged.get_mut(&session)
    }

    /// The underlying collaboration server.
    pub fn server(&self) -> &dyn CollaborationServer {
        self.server.as_ref()
    }

    /// Mutable access to the underlying collaboration server.
    pub fn server_mut(&mut self) -> &mut dyn CollaborationServer {
        self.server.as_mut()
    }

    /// Bridges a session: establish it remotely, run the rendezvous
    /// exchange, stand up our RTP agent. Returns the remote rendezvous.
    ///
    /// # Errors
    ///
    /// Propagates [`CiError`] from the community.
    pub fn bridge_session(&mut self, session: SessionId, name: &str) -> Result<String, CiError> {
        self.server.establish_session(session, name)?;
        let result = self.server.control(
            session,
            "rendezvous",
            &[(
                "proposedAddress".to_owned(),
                self.local_rendezvous.clone(),
            )],
        )?;
        let remote = result
            .iter()
            .find(|(name, _)| name == "admireAddress" || name == "rendezvous")
            .map(|(_, value)| value.clone())
            .ok_or_else(|| CiError::Refused("no rendezvous in reply".to_owned()))?;
        let mut agent = RtpAgent::new(self.local_rendezvous.clone());
        agent.start();
        self.bridged.insert(
            session,
            BridgedSession {
                remote_rendezvous: remote.clone(),
                agent,
            },
        );
        Ok(remote)
    }

    /// Mirrors a member join into the community.
    ///
    /// # Errors
    ///
    /// Propagates [`CiError`].
    pub fn mirror_join(
        &mut self,
        session: SessionId,
        user: &str,
        terminal: TerminalId,
    ) -> Result<(), CiError> {
        self.server.add_member(session, user, terminal)
    }

    /// Mirrors a member departure.
    ///
    /// # Errors
    ///
    /// Propagates [`CiError`].
    pub fn mirror_leave(&mut self, session: SessionId, user: &str) -> Result<(), CiError> {
        self.server.remove_member(session, user)
    }

    /// Unbridges (tears the mirrored session down, stops the agent).
    ///
    /// # Errors
    ///
    /// Propagates [`CiError`].
    pub fn unbridge_session(&mut self, session: SessionId) -> Result<(), CiError> {
        self.server.teardown_session(session)?;
        if let Some(mut bridged) = self.bridged.remove(&session) {
            bridged.agent.stop();
        }
        Ok(())
    }
}

impl std::fmt::Debug for CommunityBridge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommunityBridge")
            .field("community", &self.community)
            .field("bridged", &self.bridged.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmcs_admire::agent::Direction;
    use mmcs_admire::service::AdmireService;

    fn bridge() -> CommunityBridge {
        CommunityBridge::new(
            "admire.cn",
            Box::new(AdmireService::new("admire.cn", "rdv.admire.cn")),
            "rdv.mmcs.example:8000",
        )
    }

    #[test]
    fn rendezvous_flow_stands_up_both_agents() {
        let mut bridge = bridge();
        let session = SessionId::from_raw(7);
        let remote = bridge.bridge_session(session, "joint seminar").unwrap();
        assert!(remote.starts_with("rdv.admire.cn:"));
        let bridged = bridge.bridged(session).unwrap();
        assert!(bridged.agent.is_started());
        assert_eq!(bridged.agent.rendezvous(), "rdv.mmcs.example:8000");
        assert_eq!(bridged.remote_rendezvous, remote);
    }

    #[test]
    fn members_mirror_into_admire() {
        let mut bridge = bridge();
        let session = SessionId::from_raw(1);
        bridge.bridge_session(session, "s").unwrap();
        bridge
            .mirror_join(session, "alice", TerminalId::from_raw(1))
            .unwrap();
        bridge
            .mirror_join(session, "bob", TerminalId::from_raw(2))
            .unwrap();
        bridge.mirror_leave(session, "alice").unwrap();
        assert!(matches!(
            bridge.mirror_leave(session, "alice"),
            Err(CiError::UnknownMember(_))
        ));
    }

    #[test]
    fn media_can_relay_through_the_agent() {
        let mut bridge = bridge();
        let session = SessionId::from_raw(2);
        bridge.bridge_session(session, "s").unwrap();
        let bridged = bridge.bridged_mut(session).unwrap();
        bridged.agent.relay(Direction::Inbound, 1000).unwrap();
        bridged.agent.relay(Direction::Outbound, 500).unwrap();
        assert_eq!(bridged.agent.inbound_stats().0, 1);
    }

    #[test]
    fn unbridge_stops_everything() {
        let mut bridge = bridge();
        let session = SessionId::from_raw(3);
        bridge.bridge_session(session, "s").unwrap();
        bridge.unbridge_session(session).unwrap();
        assert!(bridge.bridged(session).is_none());
        assert!(matches!(
            bridge.unbridge_session(session),
            Err(CiError::UnknownSession(_))
        ));
    }

    #[test]
    fn bridging_unknown_control_errors() {
        let mut bridge = bridge();
        let session = SessionId::from_raw(4);
        bridge.bridge_session(session, "s").unwrap();
        assert!(matches!(
            bridge.server_mut().control(session, "warp", &[]),
            Err(CiError::UnsupportedOperation(_))
        ));
    }
}
