//! The XGSP web server: the SOAP facade and scheduled-meeting opening.
//!
//! "The XGSP Web Server … can invoke web-services provided by other
//! communities" and users "log into some web site … to make reservation
//! of some virtual meeting room" (§2.1, §3.2). [`XgspWebServer`]
//! publishes the session operations over SOAP (`createSession`, `join`,
//! `leave`, `terminate`, `schedule`, `listSessions`) and turns due
//! calendar reservations into live scheduled sessions.

use std::cell::RefCell;
use std::rc::Rc;

use mmcs_soap::envelope::SoapFault;
use mmcs_soap::service::SoapServer;
use mmcs_util::id::{SessionId, TerminalId};
use mmcs_util::time::{SimDuration, SimTime};
use mmcs_xgsp::calendar::Calendar;
use mmcs_xgsp::media::{MediaDescription, MediaKind};
use mmcs_xgsp::message::{SessionMode, XgspMessage};
use mmcs_xgsp::server::{ServerOutput, SessionServer};

/// Which reservations have already been opened.
#[derive(Debug, Default)]
struct OpenedLog {
    opened: Vec<u64>,
}

/// The shared state behind the SOAP handlers.
pub struct WebState {
    /// The XGSP session server.
    pub sessions: SessionServer,
    /// The meeting calendar.
    pub calendar: Calendar,
    opened: OpenedLog,
}

/// The XGSP web server. See the [module docs](self).
pub struct XgspWebServer {
    state: Rc<RefCell<WebState>>,
}

/// A handle for direct (non-SOAP) access to the shared state.
pub type SharedWebState = Rc<RefCell<WebState>>;

impl XgspWebServer {
    /// Creates a web server around fresh state.
    pub fn new() -> Self {
        Self {
            state: Rc::new(RefCell::new(WebState {
                sessions: SessionServer::new(),
                calendar: Calendar::new(),
                opened: OpenedLog::default(),
            })),
        }
    }

    /// The shared state handle (session server + calendar).
    pub fn state(&self) -> SharedWebState {
        Rc::clone(&self.state)
    }

    /// Opens every due, not-yet-opened reservation as a scheduled
    /// session (chaired by the organizer); returns the new session ids.
    pub fn open_due_meetings(&self, now: SimTime) -> Vec<SessionId> {
        let mut state = self.state.borrow_mut();
        let due: Vec<(u64, String, String, Vec<String>)> = state
            .calendar
            .due(now)
            .into_iter()
            .filter(|r| !state.opened.opened.contains(&r.id.value()))
            .map(|r| {
                (
                    r.id.value(),
                    r.title.clone(),
                    r.organizer.clone(),
                    r.invitees.clone(),
                )
            })
            .collect();
        let mut created = Vec::new();
        for (reservation, title, organizer, invitees) in due {
            let outputs = state.sessions.handle(
                Some(&organizer),
                XgspMessage::CreateSession {
                    name: title,
                    mode: SessionMode::Scheduled,
                    media: vec![
                        MediaDescription::new(MediaKind::Audio, "PCMU"),
                        MediaDescription::new(MediaKind::Video, "H263"),
                    ],
                },
            );
            let Some(session) = outputs.iter().find_map(|o| match o {
                ServerOutput::Reply(XgspMessage::SessionCreated { session, .. }) => Some(*session),
                _ => None,
            }) else {
                continue;
            };
            // The organizer joins (and chairs); invitees get invites via
            // the session server's normal invite path once they join.
            let _ = state.sessions.handle(
                Some(&organizer),
                XgspMessage::Join {
                    session,
                    user: organizer.clone(),
                    terminal: TerminalId::from_raw(1),
                    media: vec![],
                },
            );
            let _ = invitees;
            state.opened.opened.push(reservation);
            created.push(session);
        }
        created
    }

    /// Builds the SOAP endpoint exposing the session/calendar operations.
    pub fn soap_server(&self) -> SoapServer {
        let mut soap = SoapServer::new();
        let part = |parts: &[(String, String)], name: &str| -> Result<String, SoapFault> {
            parts
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| SoapFault {
                    code: "Client".into(),
                    reason: format!("missing part {name:?}"),
                })
        };
        let session_id = move |parts: &[(String, String)]| -> Result<SessionId, SoapFault> {
            part(parts, "sessionId")?
                .parse::<u64>()
                .map(SessionId::from_raw)
                .map_err(|_| SoapFault {
                    code: "Client".into(),
                    reason: "bad sessionId".into(),
                })
        };
        let xgsp_fault = |outputs: &[ServerOutput]| -> Option<SoapFault> {
            outputs.iter().find_map(|o| match o {
                ServerOutput::Reply(XgspMessage::Error { code, detail }) => Some(SoapFault {
                    code: "Server".into(),
                    reason: format!("{code}: {detail}"),
                }),
                _ => None,
            })
        };

        {
            let state = self.state();
            soap.register("createSession", move |parts| {
                let name = part(parts, "name")?;
                let mode = match part(parts, "mode")?.as_str() {
                    "adhoc" => SessionMode::AdHoc,
                    "scheduled" => SessionMode::Scheduled,
                    other => {
                        return Err(SoapFault {
                            code: "Client".into(),
                            reason: format!("bad mode {other:?}"),
                        })
                    }
                };
                let organizer = part(parts, "organizer")?;
                let outputs = state.borrow_mut().sessions.handle(
                    Some(&organizer),
                    XgspMessage::CreateSession {
                        name,
                        mode,
                        media: vec![
                            MediaDescription::new(MediaKind::Audio, "PCMU"),
                            MediaDescription::new(MediaKind::Video, "H263"),
                        ],
                    },
                );
                let session = outputs
                    .iter()
                    .find_map(|o| match o {
                        ServerOutput::Reply(XgspMessage::SessionCreated { session, .. }) => {
                            Some(*session)
                        }
                        _ => None,
                    })
                    .ok_or_else(|| SoapFault {
                        code: "Server".into(),
                        reason: "creation failed".into(),
                    })?;
                Ok(vec![("sessionId".into(), session.value().to_string())])
            });
        }
        {
            let state = self.state();
            soap.register("join", move |parts| {
                let session = session_id(parts)?;
                let user = part(parts, "user")?;
                let terminal: u64 = part(parts, "terminal")?.parse().unwrap_or(1);
                let outputs = state.borrow_mut().sessions.handle(
                    Some(&user),
                    XgspMessage::Join {
                        session,
                        user: user.clone(),
                        terminal: TerminalId::from_raw(terminal),
                        media: vec![
                            MediaDescription::new(MediaKind::Audio, "PCMU"),
                            MediaDescription::new(MediaKind::Video, "H263"),
                        ],
                    },
                );
                if let Some(fault) = xgsp_fault(&outputs) {
                    return Err(fault);
                }
                let topics: Vec<(String, String)> = outputs
                    .iter()
                    .find_map(|o| match o {
                        ServerOutput::Reply(XgspMessage::JoinAck { topics, .. }) => {
                            Some(topics.clone())
                        }
                        _ => None,
                    })
                    .unwrap_or_default();
                Ok(topics
                    .into_iter()
                    .map(|(kind, topic)| (format!("topic-{kind}"), topic))
                    .collect())
            });
        }
        {
            let state = self.state();
            soap.register("leave", move |parts| {
                let session = session_id(parts)?;
                let user = part(parts, "user")?;
                let outputs = state.borrow_mut().sessions.handle(
                    Some(&user),
                    XgspMessage::Leave {
                        session,
                        user: user.clone(),
                    },
                );
                if let Some(fault) = xgsp_fault(&outputs) {
                    return Err(fault);
                }
                Ok(vec![("status".into(), "ok".into())])
            });
        }
        {
            let state = self.state();
            soap.register("terminate", move |parts| {
                let session = session_id(parts)?;
                let user = part(parts, "user")?;
                let outputs = state
                    .borrow_mut()
                    .sessions
                    .handle(Some(&user), XgspMessage::TerminateSession { session });
                if let Some(fault) = xgsp_fault(&outputs) {
                    return Err(fault);
                }
                Ok(vec![("status".into(), "ok".into())])
            });
        }
        {
            let state = self.state();
            soap.register("schedule", move |parts| {
                let room = part(parts, "room")?;
                let organizer = part(parts, "organizer")?;
                let title = part(parts, "title")?;
                let start_secs: u64 = part(parts, "startSecs")?.parse().map_err(|_| SoapFault {
                    code: "Client".into(),
                    reason: "bad startSecs".into(),
                })?;
                let duration_secs: u64 =
                    part(parts, "durationSecs")?.parse().map_err(|_| SoapFault {
                        code: "Client".into(),
                        reason: "bad durationSecs".into(),
                    })?;
                let invitees: Vec<String> = part(parts, "invitees")
                    .map(|list| {
                        list.split(',')
                            .filter(|invitee| !invitee.is_empty())
                            .map(str::to_owned)
                            .collect()
                    })
                    .unwrap_or_default();
                let reservation = state
                    .borrow_mut()
                    .calendar
                    .book(
                        room,
                        organizer,
                        invitees,
                        SimTime::from_secs(start_secs),
                        SimDuration::from_secs(duration_secs),
                        title,
                    )
                    .map_err(|e| SoapFault {
                        code: "Server".into(),
                        reason: e.to_string(),
                    })?;
                Ok(vec![("reservationId".into(), reservation.value().to_string())])
            });
        }
        {
            let state = self.state();
            soap.register("listSessions", move |_parts| {
                let state = state.borrow();
                let mut ids: Vec<u64> = state
                    .sessions
                    .session_ids()
                    .map(|id| id.value())
                    .collect();
                ids.sort_unstable();
                let list = ids
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                Ok(vec![("sessions".into(), list)])
            });
        }
        soap
    }
}

impl Default for XgspWebServer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for XgspWebServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XgspWebServer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmcs_soap::service::SoapClient;

    #[test]
    fn soap_create_join_list_terminate_cycle() {
        let web = XgspWebServer::new();
        let mut soap = web.soap_server();

        let response = soap.handle(&SoapClient::request(
            "createSession",
            &[("name", "demo"), ("mode", "adhoc"), ("organizer", "alice")],
        ));
        let parts = SoapClient::decode_response("createSession", &response).unwrap();
        let session_id = parts[0].1.clone();

        let response = soap.handle(&SoapClient::request(
            "join",
            &[("sessionId", &session_id), ("user", "alice"), ("terminal", "1")],
        ));
        let topics = SoapClient::decode_response("join", &response).unwrap();
        assert!(topics.iter().any(|(k, _)| k == "topic-audio"));
        assert!(topics.iter().any(|(k, v)| k == "topic-video" && v.contains("/video")));

        let response = soap.handle(&SoapClient::request("listSessions", &[]));
        let sessions = SoapClient::decode_response("listSessions", &response).unwrap();
        assert_eq!(sessions[0].1, session_id);

        let response = soap.handle(&SoapClient::request(
            "terminate",
            &[("sessionId", &session_id), ("user", "alice")],
        ));
        SoapClient::decode_response("terminate", &response).unwrap();
        assert_eq!(web.state().borrow().sessions.session_count(), 0);
    }

    #[test]
    fn join_unknown_session_faults() {
        let web = XgspWebServer::new();
        let mut soap = web.soap_server();
        let response = soap.handle(&SoapClient::request(
            "join",
            &[("sessionId", "99"), ("user", "alice"), ("terminal", "1")],
        ));
        let fault = SoapClient::decode_response("join", &response).unwrap_err();
        assert!(fault.reason.contains("unknown-session"));
    }

    #[test]
    fn schedule_then_open_due_meetings() {
        let web = XgspWebServer::new();
        let mut soap = web.soap_server();
        let response = soap.handle(&SoapClient::request(
            "schedule",
            &[
                ("room", "room-a"),
                ("organizer", "prof-fox"),
                ("title", "grid seminar"),
                ("startSecs", "600"),
                ("durationSecs", "3600"),
                ("invitees", "wu,uyar,bulut"),
            ],
        ));
        SoapClient::decode_response("schedule", &response).unwrap();

        // Before start: nothing opens.
        assert!(web.open_due_meetings(SimTime::from_secs(599)).is_empty());
        // At start: the session opens, chaired by the organizer.
        let opened = web.open_due_meetings(SimTime::from_secs(600));
        assert_eq!(opened.len(), 1);
        {
            let state = web.state();
            let state = state.borrow();
            let session = state.sessions.session(opened[0]).unwrap();
            assert_eq!(session.name(), "grid seminar");
            assert_eq!(session.chair(), Some("prof-fox"));
        }
        // Idempotent: the same reservation does not reopen.
        assert!(web.open_due_meetings(SimTime::from_secs(700)).is_empty());
    }

    #[test]
    fn conflicting_schedule_faults() {
        let web = XgspWebServer::new();
        let mut soap = web.soap_server();
        let book = |soap: &mut mmcs_soap::service::SoapServer, start: &str| {
            soap.handle(&SoapClient::request(
                "schedule",
                &[
                    ("room", "room-a"),
                    ("organizer", "x"),
                    ("title", "t"),
                    ("startSecs", start),
                    ("durationSecs", "3600"),
                ],
            ))
        };
        SoapClient::decode_response("schedule", &book(&mut soap, "0")).unwrap();
        let fault =
            SoapClient::decode_response("schedule", &book(&mut soap, "1800")).unwrap_err();
        assert!(fault.reason.contains("reserved"));
    }

    #[test]
    fn bad_mode_faults() {
        let web = XgspWebServer::new();
        let mut soap = web.soap_server();
        let response = soap.handle(&SoapClient::request(
            "createSession",
            &[("name", "x"), ("mode", "hybrid"), ("organizer", "a")],
        ));
        assert!(SoapClient::decode_response("createSession", &response).is_err());
    }
}
