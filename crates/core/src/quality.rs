//! Conference quality monitoring from RTCP receiver reports.
//!
//! The messaging middleware "helps to ensure QoS requirements of
//! various collaboration applications over diverse network
//! environments" (§2). The monitor aggregates the RTCP receiver reports
//! each member's RTP proxy forwards, keeps per-member reception state,
//! and flags members whose loss or jitter exceed the interactive-quality
//! bar — the signal an operator (or an adaptive layer) acts on.

use std::collections::HashMap;

use mmcs_rtp::rtcp::ReportBlock;
use mmcs_util::id::SessionId;
use mmcs_util::time::SimTime;

/// Quality thresholds for "good" interactive A/V.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityBar {
    /// Maximum acceptable loss fraction.
    pub max_loss: f64,
    /// Maximum acceptable jitter in milliseconds.
    pub max_jitter_ms: f64,
}

impl Default for QualityBar {
    /// 2 % loss, 60 ms jitter — the usual conferencing bar.
    fn default() -> Self {
        Self {
            max_loss: 0.02,
            max_jitter_ms: 60.0,
        }
    }
}

/// One member's latest reception state.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberQuality {
    /// Loss fraction from the latest report.
    pub loss: f64,
    /// Jitter in milliseconds from the latest report.
    pub jitter_ms: f64,
    /// Cumulative packets lost.
    pub cumulative_lost: u32,
    /// When the latest report arrived.
    pub reported_at: SimTime,
}

/// The per-session quality monitor.
#[derive(Debug, Default)]
pub struct QualityMonitor {
    bar: QualityBar,
    members: HashMap<(SessionId, String), MemberQuality>,
}

impl QualityMonitor {
    /// Creates a monitor with the default quality bar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the quality bar, builder style.
    pub fn with_bar(mut self, bar: QualityBar) -> Self {
        self.bar = bar;
        self
    }

    /// Ingests one RTCP report block from a member, with the RTP clock
    /// rate of the reported stream (to convert jitter to ms).
    pub fn ingest(
        &mut self,
        session: SessionId,
        member: &str,
        block: &ReportBlock,
        clock_rate: u32,
        now: SimTime,
    ) {
        let jitter_ms = block.jitter as f64 / clock_rate.max(1) as f64 * 1e3;
        self.members.insert(
            (session, member.to_owned()),
            MemberQuality {
                loss: block.fraction_lost as f64 / 256.0,
                jitter_ms,
                cumulative_lost: block.cumulative_lost,
                reported_at: now,
            },
        );
    }

    /// A member's latest quality, if reported.
    pub fn member(&self, session: SessionId, member: &str) -> Option<&MemberQuality> {
        self.members.get(&(session, member.to_owned()))
    }

    /// Members of a session currently below the quality bar, sorted by
    /// name (worst problems are an operator display; determinism aids
    /// testing).
    pub fn degraded(&self, session: SessionId) -> Vec<(&str, &MemberQuality)> {
        let mut out: Vec<(&str, &MemberQuality)> = self
            .members
            .iter()
            .filter(|((s, _), q)| {
                *s == session && (q.loss > self.bar.max_loss || q.jitter_ms > self.bar.max_jitter_ms)
            })
            .map(|((_, member), q)| (member.as_str(), q))
            .collect();
        out.sort_by_key(|(member, _)| *member);
        out
    }

    /// Whether every reporting member of the session meets the bar.
    pub fn session_is_good(&self, session: SessionId) -> bool {
        self.degraded(session).is_empty()
    }

    /// Drops a member's state (they left).
    pub fn forget_member(&mut self, session: SessionId, member: &str) {
        self.members.remove(&(session, member.to_owned()));
    }

    /// Drops a session's state.
    pub fn forget_session(&mut self, session: SessionId) {
        self.members.retain(|(s, _), _| *s != session);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(fraction_lost: u8, jitter_units: u32) -> ReportBlock {
        ReportBlock {
            ssrc: 1,
            fraction_lost,
            cumulative_lost: 10,
            highest_seq: 100,
            jitter: jitter_units,
            last_sr: 0,
            delay_since_last_sr: 0,
        }
    }

    fn sid() -> SessionId {
        SessionId::from_raw(1)
    }

    #[test]
    fn good_reports_keep_the_session_good() {
        let mut monitor = QualityMonitor::new();
        // 0.4% loss, 10 ms jitter at 8 kHz (80 units).
        monitor.ingest(sid(), "alice", &block(1, 80), 8000, SimTime::ZERO);
        assert!(monitor.session_is_good(sid()));
        let q = monitor.member(sid(), "alice").unwrap();
        assert!((q.jitter_ms - 10.0).abs() < 1e-9);
        assert!(q.loss < 0.01);
    }

    #[test]
    fn lossy_member_is_flagged() {
        let mut monitor = QualityMonitor::new();
        monitor.ingest(sid(), "alice", &block(1, 80), 8000, SimTime::ZERO);
        // 12.5% loss.
        monitor.ingest(sid(), "bob", &block(32, 80), 8000, SimTime::ZERO);
        let degraded = monitor.degraded(sid());
        assert_eq!(degraded.len(), 1);
        assert_eq!(degraded[0].0, "bob");
        assert!(!monitor.session_is_good(sid()));
    }

    #[test]
    fn jittery_member_is_flagged() {
        let mut monitor = QualityMonitor::new();
        // 100 ms jitter at 90 kHz = 9000 units.
        monitor.ingest(sid(), "carol", &block(0, 9000), 90_000, SimTime::ZERO);
        assert_eq!(monitor.degraded(sid()).len(), 1);
    }

    #[test]
    fn newer_reports_replace_older() {
        let mut monitor = QualityMonitor::new();
        monitor.ingest(sid(), "alice", &block(64, 80), 8000, SimTime::ZERO);
        assert!(!monitor.session_is_good(sid()));
        monitor.ingest(sid(), "alice", &block(0, 80), 8000, SimTime::from_secs(5));
        assert!(monitor.session_is_good(sid()));
        assert_eq!(
            monitor.member(sid(), "alice").unwrap().reported_at,
            SimTime::from_secs(5)
        );
    }

    #[test]
    fn forgetting_clears_state() {
        let mut monitor = QualityMonitor::new();
        monitor.ingest(sid(), "alice", &block(64, 80), 8000, SimTime::ZERO);
        monitor.forget_member(sid(), "alice");
        assert!(monitor.session_is_good(sid()));
        monitor.ingest(sid(), "bob", &block(64, 80), 8000, SimTime::ZERO);
        monitor.forget_session(sid());
        assert!(monitor.member(sid(), "bob").is_none());
    }

    #[test]
    fn custom_bar_applies() {
        let mut monitor = QualityMonitor::new().with_bar(QualityBar {
            max_loss: 0.5,
            max_jitter_ms: 1000.0,
        });
        monitor.ingest(sid(), "alice", &block(64, 9000), 90_000, SimTime::ZERO);
        assert!(monitor.session_is_good(sid()), "lenient bar tolerates it");
    }
}
