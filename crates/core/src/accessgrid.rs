//! The Access Grid community service.
//!
//! Access Grid — "the de facto Internet2 multimedia collaborative
//! environment" (§3.1) — organizes collaboration around *venues*:
//! persistent virtual rooms bound to IP multicast groups, joined by
//! room-based nodes running MBONE tools (vic/rat). Its WSDL-CI facade
//! maps XGSP sessions onto venues and hands back the venue's multicast
//! groups, which Global-MMCS bridges through multicast relays
//! ([`mmcs_broker::simdrv::MulticastRelay`]) exactly as ablation A3
//! measures.

use std::collections::HashMap;

use mmcs_util::id::{SessionId, TerminalId};
use mmcs_xgsp::wsdl_ci::{CiError, CollaborationServer, OperationDescriptor, ServiceDescriptor};

/// One Access Grid venue.
#[derive(Debug, Clone)]
pub struct Venue {
    /// Venue title.
    pub title: String,
    /// Multicast group for audio (address:port).
    pub audio_group: String,
    /// Multicast group for video.
    pub video_group: String,
    /// Nodes (room installations) currently in the venue.
    pub nodes: Vec<String>,
}

/// The Access Grid community service.
#[derive(Debug)]
pub struct AccessGridService {
    venues: HashMap<SessionId, Venue>,
    /// Multicast base address pool (administratively scoped).
    next_group: u16,
}

impl AccessGridService {
    /// Creates the service with an empty venue map.
    pub fn new() -> Self {
        Self {
            venues: HashMap::new(),
            next_group: 1,
        }
    }

    /// The venue mirroring a session, if established.
    pub fn venue(&self, session: SessionId) -> Option<&Venue> {
        self.venues.get(&session)
    }

    /// Number of live venues.
    pub fn venue_count(&self) -> usize {
        self.venues.len()
    }
}

impl Default for AccessGridService {
    fn default() -> Self {
        Self::new()
    }
}

impl CollaborationServer for AccessGridService {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor {
            service: "AccessGridVenueService".into(),
            community: "accessgrid.org".into(),
            endpoint: "http://accessgrid.org/soap".into(),
            operations: vec![OperationDescriptor {
                name: "venueGroups".into(),
                inputs: vec!["sessionId".into()],
                outputs: vec!["audioGroup".into(), "videoGroup".into()],
            }],
        }
    }

    fn establish_session(&mut self, session: SessionId, name: &str) -> Result<(), CiError> {
        let id = self.next_group;
        self.next_group += 1;
        self.venues.insert(
            session,
            Venue {
                title: name.to_owned(),
                audio_group: format!("239.255.{}.{}:16384", id / 256, id % 256),
                video_group: format!("239.255.{}.{}:16386", id / 256, id % 256),
                nodes: Vec::new(),
            },
        );
        Ok(())
    }

    fn add_member(
        &mut self,
        session: SessionId,
        user: &str,
        _terminal: TerminalId,
    ) -> Result<(), CiError> {
        let venue = self
            .venues
            .get_mut(&session)
            .ok_or(CiError::UnknownSession(session))?;
        if !venue.nodes.iter().any(|n| n == user) {
            venue.nodes.push(user.to_owned());
        }
        Ok(())
    }

    fn remove_member(&mut self, session: SessionId, user: &str) -> Result<(), CiError> {
        let venue = self
            .venues
            .get_mut(&session)
            .ok_or(CiError::UnknownSession(session))?;
        let before = venue.nodes.len();
        venue.nodes.retain(|n| n != user);
        if venue.nodes.len() == before {
            return Err(CiError::UnknownMember(user.to_owned()));
        }
        Ok(())
    }

    fn control(
        &mut self,
        session: SessionId,
        operation: &str,
        _args: &[(String, String)],
    ) -> Result<Vec<(String, String)>, CiError> {
        let venue = self
            .venues
            .get(&session)
            .ok_or(CiError::UnknownSession(session))?;
        match operation {
            "venueGroups" => Ok(vec![
                ("audioGroup".into(), venue.audio_group.clone()),
                ("videoGroup".into(), venue.video_group.clone()),
            ]),
            // The venue's multicast groups ARE its rendezvous: answer the
            // generic flow with the video group so the bridge can stand
            // its relay up there.
            "rendezvous" => Ok(vec![("rendezvous".into(), venue.video_group.clone())]),
            other => Err(CiError::UnsupportedOperation(other.to_owned())),
        }
    }

    fn teardown_session(&mut self, session: SessionId) -> Result<(), CiError> {
        self.venues
            .remove(&session)
            .map(|_| ())
            .ok_or(CiError::UnknownSession(session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::CommunityBridge;

    fn sid() -> SessionId {
        SessionId::from_raw(5)
    }

    #[test]
    fn venues_get_distinct_multicast_groups() {
        let mut ag = AccessGridService::new();
        ag.establish_session(SessionId::from_raw(1), "venue a").unwrap();
        ag.establish_session(SessionId::from_raw(2), "venue b").unwrap();
        let a = ag.venue(SessionId::from_raw(1)).unwrap();
        let b = ag.venue(SessionId::from_raw(2)).unwrap();
        assert_ne!(a.audio_group, b.audio_group);
        assert!(a.audio_group.starts_with("239.255."));
        assert_ne!(a.audio_group, a.video_group);
    }

    #[test]
    fn nodes_join_and_leave() {
        let mut ag = AccessGridService::new();
        ag.establish_session(sid(), "lobby").unwrap();
        ag.add_member(sid(), "anl-node", TerminalId::from_raw(1)).unwrap();
        ag.add_member(sid(), "anl-node", TerminalId::from_raw(1)).unwrap(); // idempotent
        assert_eq!(ag.venue(sid()).unwrap().nodes.len(), 1);
        ag.remove_member(sid(), "anl-node").unwrap();
        assert!(matches!(
            ag.remove_member(sid(), "anl-node"),
            Err(CiError::UnknownMember(_))
        ));
    }

    #[test]
    fn venue_groups_control() {
        let mut ag = AccessGridService::new();
        ag.establish_session(sid(), "lobby").unwrap();
        let groups = ag.control(sid(), "venueGroups", &[]).unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "audioGroup");
        assert!(matches!(
            ag.control(SessionId::from_raw(99), "venueGroups", &[]),
            Err(CiError::UnknownSession(_))
        ));
    }

    #[test]
    fn bridges_via_generic_rendezvous() {
        let mut bridge = CommunityBridge::new(
            "accessgrid.org",
            Box::new(AccessGridService::new()),
            "rdv.mmcs:8200",
        );
        let remote = bridge.bridge_session(sid(), "joint venue").unwrap();
        // The "remote rendezvous" is the venue's video multicast group.
        assert!(remote.starts_with("239.255."));
        assert!(bridge.bridged(sid()).unwrap().agent.is_started());
    }

    #[test]
    fn teardown_frees_the_venue() {
        let mut ag = AccessGridService::new();
        ag.establish_session(sid(), "lobby").unwrap();
        ag.teardown_session(sid()).unwrap();
        assert_eq!(ag.venue_count(), 0);
        assert_eq!(ag.teardown_session(sid()), Err(CiError::UnknownSession(sid())));
    }
}
