//! The A/V service: audio mixing selection and video switching.
//!
//! A 2003 conference could not decode 40 video streams at every client;
//! Global-MMCS's A/V service picks the *selected video* (normally the
//! active speaker) per session and lets clients subscribe to just the
//! selected stream's topic. Audio selection follows reported energy
//! levels with hysteresis so brief noise does not steal the floor.

use std::collections::HashMap;

use mmcs_util::id::SessionId;
use mmcs_util::time::{SimDuration, SimTime};

/// Per-member audio activity state.
#[derive(Debug, Clone)]
struct Activity {
    level: f64,
    last_update: SimTime,
}

/// The switch state for one session.
#[derive(Debug, Clone, Default)]
struct SessionSwitch {
    activity: HashMap<String, Activity>,
    selected: Option<String>,
    selected_since: SimTime,
    /// Manual override (chair's `MediaControl::Select`).
    pinned: Option<String>,
}

/// The A/V switch across sessions. See the [module docs](self).
#[derive(Debug)]
pub struct MediaSwitch {
    sessions: HashMap<SessionId, SessionSwitch>,
    /// A challenger must beat the incumbent by this factor.
    hysteresis: f64,
    /// …and the incumbent holds the slot at least this long.
    min_hold: SimDuration,
    /// Activity older than this is treated as silence.
    staleness: SimDuration,
}

impl MediaSwitch {
    /// Creates a switch with 1.5× hysteresis, a 2 s minimum hold and a
    /// 3 s staleness window.
    pub fn new() -> Self {
        Self {
            sessions: HashMap::new(),
            hysteresis: 1.5,
            min_hold: SimDuration::from_secs(2),
            staleness: SimDuration::from_secs(3),
        }
    }

    /// Reports a member's audio energy (0–1) at `now`; returns the newly
    /// selected member when the selection changes.
    pub fn report_audio(
        &mut self,
        session: SessionId,
        user: &str,
        level: f64,
        now: SimTime,
    ) -> Option<String> {
        let switch = self.sessions.entry(session).or_default();
        switch.activity.insert(
            user.to_owned(),
            Activity {
                level: level.clamp(0.0, 1.0),
                last_update: now,
            },
        );
        if switch.pinned.is_some() {
            return None;
        }

        let staleness = self.staleness;
        let loudest = switch
            .activity
            .iter()
            .filter(|(_, a)| now.saturating_duration_since(a.last_update) < staleness)
            .max_by(|a, b| a.1.level.total_cmp(&b.1.level))
            .map(|(user, a)| (user.clone(), a.level));
        let (candidate, candidate_level) = loudest?;

        let incumbent_level = switch
            .selected
            .as_ref()
            .and_then(|user| switch.activity.get(user))
            .filter(|a| now.saturating_duration_since(a.last_update) < staleness)
            .map(|a| a.level)
            .unwrap_or(0.0);

        let held_long_enough =
            now.saturating_duration_since(switch.selected_since) >= self.min_hold;
        let beats_incumbent = candidate_level > incumbent_level * self.hysteresis;
        let incumbent_gone = switch
            .selected
            .as_ref()
            .is_none_or(|user| !switch.activity.contains_key(user));

        if switch.selected.as_deref() != Some(candidate.as_str())
            && (incumbent_gone || (held_long_enough && beats_incumbent))
        {
            switch.selected = Some(candidate.clone());
            switch.selected_since = now;
            Some(candidate)
        } else {
            None
        }
    }

    /// Pins the selected video to one member (chair override); `None`
    /// unpins and lets audio drive again.
    pub fn pin(&mut self, session: SessionId, user: Option<&str>) {
        let switch = self.sessions.entry(session).or_default();
        switch.pinned = user.map(str::to_owned);
        if let Some(user) = user {
            switch.selected = Some(user.to_owned());
        }
    }

    /// The currently selected video source for a session.
    pub fn selected(&self, session: SessionId) -> Option<&str> {
        let switch = self.sessions.get(&session)?;
        switch
            .pinned
            .as_deref()
            .or(switch.selected.as_deref())
    }

    /// Removes a departing member (unpins/deselects them).
    pub fn remove_member(&mut self, session: SessionId, user: &str) {
        if let Some(switch) = self.sessions.get_mut(&session) {
            switch.activity.remove(user);
            if switch.pinned.as_deref() == Some(user) {
                switch.pinned = None;
            }
            if switch.selected.as_deref() == Some(user) {
                switch.selected = None;
            }
        }
    }

    /// Drops a terminated session's state.
    pub fn remove_session(&mut self, session: SessionId) {
        self.sessions.remove(&session);
    }
}

impl Default for MediaSwitch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid() -> SessionId {
        SessionId::from_raw(1)
    }

    #[test]
    fn first_speaker_is_selected_immediately() {
        let mut switch = MediaSwitch::new();
        let changed = switch.report_audio(sid(), "alice", 0.5, SimTime::ZERO);
        assert_eq!(changed.as_deref(), Some("alice"));
        assert_eq!(switch.selected(sid()), Some("alice"));
    }

    #[test]
    fn hysteresis_protects_the_incumbent() {
        let mut switch = MediaSwitch::new();
        switch.report_audio(sid(), "alice", 0.5, SimTime::ZERO);
        // Slightly louder challenger within the hold window: no change.
        let t1 = SimTime::from_millis(500);
        assert_eq!(switch.report_audio(sid(), "bob", 0.6, t1), None);
        // After the hold, a 1.5x louder challenger wins.
        let t2 = SimTime::from_secs(3);
        switch.report_audio(sid(), "alice", 0.5, t2);
        let changed = switch.report_audio(sid(), "bob", 0.9, t2);
        assert_eq!(changed.as_deref(), Some("bob"));
    }

    #[test]
    fn stale_incumbent_loses_immediately() {
        let mut switch = MediaSwitch::new();
        switch.report_audio(sid(), "alice", 0.9, SimTime::ZERO);
        // Alice goes silent for 5 s; bob speaks quietly.
        let t = SimTime::from_secs(5);
        let changed = switch.report_audio(sid(), "bob", 0.2, t);
        assert_eq!(changed.as_deref(), Some("bob"));
    }

    #[test]
    fn pin_overrides_audio() {
        let mut switch = MediaSwitch::new();
        switch.report_audio(sid(), "alice", 0.5, SimTime::ZERO);
        switch.pin(sid(), Some("carol"));
        assert_eq!(switch.selected(sid()), Some("carol"));
        // Loud speakers do not displace a pin.
        assert_eq!(
            switch.report_audio(sid(), "bob", 1.0, SimTime::from_secs(10)),
            None
        );
        assert_eq!(switch.selected(sid()), Some("carol"));
        switch.pin(sid(), None);
        let changed = switch.report_audio(sid(), "bob", 1.0, SimTime::from_secs(20));
        assert_eq!(changed.as_deref(), Some("bob"));
    }

    #[test]
    fn departures_clear_selection() {
        let mut switch = MediaSwitch::new();
        switch.report_audio(sid(), "alice", 0.5, SimTime::ZERO);
        switch.remove_member(sid(), "alice");
        assert_eq!(switch.selected(sid()), None);
        // Next speaker takes over at once.
        let changed = switch.report_audio(sid(), "bob", 0.1, SimTime::from_millis(100));
        assert_eq!(changed.as_deref(), Some("bob"));
        switch.remove_session(sid());
        assert_eq!(switch.selected(sid()), None);
    }

    #[test]
    fn levels_are_clamped() {
        let mut switch = MediaSwitch::new();
        switch.report_audio(sid(), "alice", 7.0, SimTime::ZERO);
        // A "louder than 1.0" report cannot create an unbeatable ghost:
        // bob at 1.0 can never beat 1.0 * 1.5, but after staleness alice
        // fades and bob wins.
        let changed = switch.report_audio(sid(), "bob", 1.0, SimTime::from_secs(5));
        assert_eq!(changed.as_deref(), Some("bob"));
    }
}
