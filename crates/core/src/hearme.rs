//! The HearMe VoIP community service.
//!
//! "We have built web-services of HearMe, a SIP based Voice-over-IP
//! system. Similar interface can also be implemented based on other SIP
//! or H.323 collaboration systems" (§3.2). HearMe was an audio-only
//! conference bridge; its WSDL-CI facade mirrors XGSP sessions into
//! HearMe audio rooms and supports dial-in/dial-out control operations.

use std::collections::HashMap;

use mmcs_util::id::{SessionId, TerminalId};
use mmcs_xgsp::wsdl_ci::{CiError, CollaborationServer, OperationDescriptor, ServiceDescriptor};

/// One HearMe audio room mirroring an XGSP session.
#[derive(Debug, Default, Clone)]
struct Room {
    name: String,
    participants: Vec<String>,
    /// Phone numbers dialed out to (the PSTN side HearMe sold).
    dialed_out: Vec<String>,
    muted: Vec<String>,
}

/// The HearMe community service. Audio-only: it refuses video-related
/// control operations, exactly the "limited collaboration capabilities"
/// of a single-purpose community the paper's framework absorbs anyway.
#[derive(Debug, Default)]
pub struct HearMeService {
    rooms: HashMap<SessionId, Room>,
}

impl HearMeService {
    /// Creates the service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live rooms.
    pub fn room_count(&self) -> usize {
        self.rooms.len()
    }

    /// Participants of a mirrored session's room.
    pub fn participants(&self, session: SessionId) -> &[String] {
        self.rooms
            .get(&session)
            .map(|room| room.participants.as_slice())
            .unwrap_or(&[])
    }

    /// Whether a participant is muted.
    pub fn is_muted(&self, session: SessionId, user: &str) -> bool {
        self.rooms
            .get(&session)
            .is_some_and(|room| room.muted.iter().any(|m| m == user))
    }
}

impl CollaborationServer for HearMeService {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor {
            service: "HearMeAudioService".into(),
            community: "hearme.example".into(),
            endpoint: "http://hearme.example/soap".into(),
            operations: vec![
                OperationDescriptor {
                    name: "dialOut".into(),
                    inputs: vec!["sessionId".into(), "phoneNumber".into()],
                    outputs: vec!["status".into()],
                },
                OperationDescriptor {
                    name: "muteParticipant".into(),
                    inputs: vec!["sessionId".into(), "user".into()],
                    outputs: vec!["status".into()],
                },
            ],
        }
    }

    fn establish_session(&mut self, session: SessionId, name: &str) -> Result<(), CiError> {
        self.rooms.insert(
            session,
            Room {
                name: name.to_owned(),
                ..Room::default()
            },
        );
        Ok(())
    }

    fn add_member(
        &mut self,
        session: SessionId,
        user: &str,
        _terminal: TerminalId,
    ) -> Result<(), CiError> {
        let room = self
            .rooms
            .get_mut(&session)
            .ok_or(CiError::UnknownSession(session))?;
        if !room.participants.iter().any(|p| p == user) {
            room.participants.push(user.to_owned());
        }
        Ok(())
    }

    fn remove_member(&mut self, session: SessionId, user: &str) -> Result<(), CiError> {
        let room = self
            .rooms
            .get_mut(&session)
            .ok_or(CiError::UnknownSession(session))?;
        let before = room.participants.len();
        room.participants.retain(|p| p != user);
        room.muted.retain(|m| m != user);
        if room.participants.len() == before {
            return Err(CiError::UnknownMember(user.to_owned()));
        }
        Ok(())
    }

    fn control(
        &mut self,
        session: SessionId,
        operation: &str,
        args: &[(String, String)],
    ) -> Result<Vec<(String, String)>, CiError> {
        let room = self
            .rooms
            .get_mut(&session)
            .ok_or(CiError::UnknownSession(session))?;
        let arg = |name: &str| {
            args.iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
        };
        match operation {
            "dialOut" => {
                let number = arg("phoneNumber")
                    .ok_or_else(|| CiError::Refused("missing phoneNumber".into()))?;
                room.dialed_out.push(number.clone());
                room.participants.push(format!("pstn:{number}"));
                Ok(vec![("status".into(), "ringing".into())])
            }
            "muteParticipant" => {
                let user =
                    arg("user").ok_or_else(|| CiError::Refused("missing user".into()))?;
                if !room.participants.contains(&user) {
                    return Err(CiError::UnknownMember(user));
                }
                if !room.muted.contains(&user) {
                    room.muted.push(user);
                }
                Ok(vec![("status".into(), "muted".into())])
            }
            // The audio-only community cannot do these.
            "rendezvous" | "selectVideo" => Err(CiError::Refused(format!(
                "HearMe is audio-only; {operation:?} unsupported for room {:?}",
                room.name
            ))),
            other => Err(CiError::UnsupportedOperation(other.to_owned())),
        }
    }

    fn teardown_session(&mut self, session: SessionId) -> Result<(), CiError> {
        self.rooms
            .remove(&session)
            .map(|_| ())
            .ok_or(CiError::UnknownSession(session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid() -> SessionId {
        SessionId::from_raw(3)
    }

    #[test]
    fn lifecycle_and_dial_out() {
        let mut hearme = HearMeService::new();
        hearme.establish_session(sid(), "earnings call").unwrap();
        hearme
            .add_member(sid(), "alice", TerminalId::from_raw(1))
            .unwrap();
        let result = hearme
            .control(
                sid(),
                "dialOut",
                &[("phoneNumber".into(), "+1-555-0100".into())],
            )
            .unwrap();
        assert_eq!(result[0].1, "ringing");
        assert_eq!(hearme.participants(sid()).len(), 2);
        assert!(hearme
            .participants(sid())
            .iter()
            .any(|p| p == "pstn:+1-555-0100"));
        hearme.teardown_session(sid()).unwrap();
        assert_eq!(hearme.room_count(), 0);
    }

    #[test]
    fn mute_and_unknown_member() {
        let mut hearme = HearMeService::new();
        hearme.establish_session(sid(), "room").unwrap();
        hearme
            .add_member(sid(), "bob", TerminalId::from_raw(2))
            .unwrap();
        hearme
            .control(sid(), "muteParticipant", &[("user".into(), "bob".into())])
            .unwrap();
        assert!(hearme.is_muted(sid(), "bob"));
        assert!(matches!(
            hearme.control(sid(), "muteParticipant", &[("user".into(), "ghost".into())]),
            Err(CiError::UnknownMember(_))
        ));
        // Removing bob clears the mute too.
        hearme.remove_member(sid(), "bob").unwrap();
        assert!(!hearme.is_muted(sid(), "bob"));
    }

    #[test]
    fn audio_only_refuses_video_controls() {
        let mut hearme = HearMeService::new();
        hearme.establish_session(sid(), "room").unwrap();
        assert!(matches!(
            hearme.control(sid(), "selectVideo", &[]),
            Err(CiError::Refused(_))
        ));
        assert!(matches!(
            hearme.control(sid(), "rendezvous", &[]),
            Err(CiError::Refused(_))
        ));
    }

    #[test]
    fn works_behind_the_community_bridge() {
        use crate::bridge::CommunityBridge;
        let mut bridge = CommunityBridge::new(
            "hearme.example",
            Box::new(HearMeService::new()),
            "rdv.mmcs:8100",
        );
        // HearMe refuses the rendezvous control, so bridging (which is a
        // video-plane concept) fails cleanly…
        assert!(bridge.bridge_session(sid(), "call").is_err());
        // …but membership mirroring still works through the trait.
        bridge
            .server_mut()
            .establish_session(SessionId::from_raw(9), "call")
            .unwrap();
        bridge
            .mirror_join(SessionId::from_raw(9), "alice", TerminalId::from_raw(1))
            .unwrap();
    }
}
