//! [`GlobalMmcs`]: the assembled system.
//!
//! One value owning every server in Figure 2 of the paper, with the
//! message routing between them:
//!
//! * protocol ingress: [`GlobalMmcs::handle_sip`],
//!   [`GlobalMmcs::handle_h323`], [`GlobalMmcs::handle_stanza`],
//!   [`GlobalMmcs::handle_xgsp`];
//! * XGSP effects: broker topic commands create Helix streams and
//!   RealProducers, notifications are translated per endpoint protocol
//!   and returned as [`Egress`] items;
//! * media plane: [`GlobalMmcs::publish_rtp`] publishes into the broker
//!   network; deliveries to subscribed endpoints come back, and the
//!   media service taps every session topic to feed streaming/archive.

use std::collections::HashMap;

use mmcs_broker::event::EventClass;
use mmcs_broker::network::{BrokerNetwork, NetworkError};
use mmcs_broker::topic::{Topic, TopicFilter};
use mmcs_directory::communities::CommunityDirectory;
use mmcs_directory::users::UserDirectory;
use mmcs_h323::gatekeeper::Gatekeeper;
use mmcs_h323::gateway::H323Gateway;
use mmcs_h323::msg::H323Message;
use mmcs_im::server::{ImServer, Outgoing};
use mmcs_im::stanza::Stanza;
use mmcs_rtp::packet::RtpPacket;
use mmcs_sip::gateway::SipGateway;
use mmcs_sip::message::{SipMessage, SipMethod, StartLine};
use mmcs_sip::presence::PresenceServer;
use mmcs_sip::proxy::{Proxy, ProxyAction};
use mmcs_sip::registrar::Registrar;
use mmcs_streaming::archive::Archive;
use mmcs_streaming::helix::HelixServer;
use mmcs_streaming::producer::RealProducer;
use mmcs_util::id::{BrokerId, ClientId, SessionId};
use mmcs_util::time::SimTime;
use mmcs_util::xml::Element;
use mmcs_xgsp::calendar::Calendar;
use mmcs_xgsp::message::XgspMessage;
use mmcs_xgsp::server::{BrokerCommand, ServerOutput, SessionServer};

use crate::avs::MediaSwitch;
use crate::quality::QualityMonitor;

/// How a user's endpoint is reached (for notification translation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndpointKind {
    /// A SIP UA at this URI (notifications become SIP NOTIFY).
    Sip(String),
    /// An IM client (notifications become message stanzas).
    Im(String),
    /// An H.323 terminal (no notification channel; state arrives via
    /// H.245/Q.931 which the gateway already drives).
    H323,
}

/// An outbound item produced while handling ingress.
#[derive(Debug, Clone)]
pub enum Egress {
    /// A SIP message toward a UA.
    Sip(SipMessage),
    /// An IM stanza toward a JID.
    Stanza {
        /// Recipient JID.
        to: String,
        /// The stanza.
        stanza: Stanza,
    },
    /// An H.323 message toward a terminal.
    H323(H323Message),
    /// An RTP media delivery to a subscribed media client.
    Media {
        /// The broker client that received it.
        client: ClientId,
        /// The topic it arrived on.
        topic: String,
        /// The decoded RTP packet.
        rtp: RtpPacket,
    },
}

/// The assembled Global-MMCS. See the [module docs](self).
pub struct GlobalMmcs {
    session_server: SessionServer,
    broker_node: BrokerId,
    users: UserDirectory,
    communities: CommunityDirectory,
    calendar: Calendar,
    broker: BrokerNetwork,
    media_service: ClientId,
    sip_gateway: SipGateway,
    sip_proxy: Proxy,
    registrar: Registrar,
    presence: PresenceServer,
    gatekeeper: Gatekeeper,
    h323_gateway: H323Gateway,
    im: ImServer,
    helix: HelixServer,
    archive: Archive,
    switch: MediaSwitch,
    quality: QualityMonitor,
    endpoints: HashMap<String, EndpointKind>,
    producers: HashMap<String, RealProducer>,
    media_clients: HashMap<ClientId, String>,
    now: SimTime,
}

impl GlobalMmcs {
    /// Assembles a system with one broker and default server settings.
    pub fn new() -> Self {
        let mut broker = BrokerNetwork::new();
        let node = broker.add_broker();
        let media_service = broker.attach_client(node);
        broker
            .subscribe(media_service, TopicFilter::parse("globalmmcs/#").expect("static filter"))
            .expect("fresh client");
        Self {
            session_server: SessionServer::new(),
            broker_node: node,
            users: UserDirectory::new(),
            communities: CommunityDirectory::new(),
            calendar: Calendar::new(),
            broker,
            media_service,
            sip_gateway: SipGateway::new("mmcs.example", "rtp-proxy.mmcs.example"),
            sip_proxy: Proxy::new("proxy.mmcs.example"),
            registrar: Registrar::new(),
            presence: PresenceServer::new(),
            gatekeeper: Gatekeeper::new("gk.mmcs.example", "gw.mmcs.example:1720", 1_000_000),
            h323_gateway: H323Gateway::new("gw.mmcs.example:2720", "rtp-proxy.mmcs.example:5004"),
            im: ImServer::new(),
            helix: HelixServer::new(),
            archive: Archive::new(),
            switch: MediaSwitch::new(),
            quality: QualityMonitor::new(),
            endpoints: HashMap::new(),
            producers: HashMap::new(),
            media_clients: HashMap::new(),
            now: SimTime::ZERO,
        }
    }

    /// Advances the system clock (expiry checks use it).
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// The current system clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The XGSP session server (read access).
    pub fn session_server(&self) -> &SessionServer {
        &self.session_server
    }

    /// The user/terminal directory.
    pub fn users_mut(&mut self) -> &mut UserDirectory {
        &mut self.users
    }

    /// The community directory.
    pub fn communities_mut(&mut self) -> &mut CommunityDirectory {
        &mut self.communities
    }

    /// The meeting calendar.
    pub fn calendar_mut(&mut self) -> &mut Calendar {
        &mut self.calendar
    }

    /// The IM server.
    pub fn im(&self) -> &ImServer {
        &self.im
    }

    /// The streaming server.
    pub fn helix(&self) -> &HelixServer {
        &self.helix
    }

    /// Mutable streaming server (RTSP control path).
    pub fn helix_mut(&mut self) -> &mut HelixServer {
        &mut self.helix
    }

    /// The archive.
    pub fn archive_mut(&mut self) -> &mut Archive {
        &mut self.archive
    }

    /// The A/V switch.
    pub fn switch_mut(&mut self) -> &mut MediaSwitch {
        &mut self.switch
    }

    /// The RTCP-driven quality monitor.
    pub fn quality(&self) -> &QualityMonitor {
        &self.quality
    }

    /// Ingests an RTCP receiver report forwarded by a member's RTP
    /// proxy.
    pub fn ingest_rtcp(
        &mut self,
        session: SessionId,
        member: &str,
        block: &mmcs_rtp::rtcp::ReportBlock,
        clock_rate: u32,
    ) {
        let now = self.now;
        self.quality.ingest(session, member, block, clock_rate, now);
    }

    /// Authenticates a user against the directory and joins them to a
    /// session with their active terminal — the "unique user
    /// identifications help to authenticate valid users and bind the
    /// user to his media terminal" flow (§2.2).
    ///
    /// # Errors
    ///
    /// Returns the directory error as a string for bad credentials or a
    /// missing active terminal; XGSP-level failures come back in the
    /// returned outputs like any other join.
    pub fn join_authenticated(
        &mut self,
        name: &str,
        password: &str,
        session: SessionId,
    ) -> Result<Vec<ServerOutput>, String> {
        let user = self
            .users
            .authenticate(name, password)
            .map_err(|e| e.to_string())?;
        let terminal = self
            .users
            .active_terminal(user)
            .ok_or_else(|| format!("user {name} has no active terminal"))?;
        let terminal_id = terminal.id;
        let media = terminal
            .capabilities
            .iter()
            .filter_map(|capability| {
                let (kind, codec) = capability.split_once('/')?;
                let kind = mmcs_xgsp::media::MediaKind::from_str_opt(kind)?;
                Some(mmcs_xgsp::media::MediaDescription::new(kind, codec))
            })
            .collect();
        Ok(self.handle_xgsp(
            Some(name),
            XgspMessage::Join {
                session,
                user: name.to_owned(),
                terminal: terminal_id,
                media,
            },
        ))
    }

    /// The H.323 gatekeeper.
    pub fn gatekeeper_mut(&mut self) -> &mut Gatekeeper {
        &mut self.gatekeeper
    }

    /// The SIP registrar.
    pub fn registrar(&self) -> &Registrar {
        &self.registrar
    }

    /// Declares how a user's endpoint is reached, for notification
    /// translation.
    pub fn bind_endpoint(&mut self, user: impl Into<String>, kind: EndpointKind) {
        self.endpoints.insert(user.into(), kind);
    }

    /// Attaches a media-plane client subscribed to a session's media
    /// topic; RTP published to the topic comes back as [`Egress::Media`]
    /// for this client.
    ///
    /// # Errors
    ///
    /// Propagates broker subscription errors.
    pub fn attach_media_client(
        &mut self,
        user: impl Into<String>,
        topic: &str,
    ) -> Result<ClientId, NetworkError> {
        let filter = TopicFilter::parse(topic).expect("caller passes topics from JoinAck");
        let client = self.broker.attach_client(self.broker_node);
        self.broker.subscribe(client, filter)?;
        self.media_clients.insert(client, user.into());
        Ok(client)
    }

    /// Publishes an RTP packet from a media client onto a session topic;
    /// returns every egress the publish caused (deliveries to other
    /// media clients; streaming/archiving happen internally).
    ///
    /// # Panics
    ///
    /// Panics if `client` was not attached through this system.
    pub fn publish_rtp(&mut self, client: ClientId, topic: &str, rtp: &RtpPacket) -> Vec<Egress> {
        let parsed = Topic::parse(topic).expect("caller passes topics from JoinAck");
        self.broker
            .publish_class(client, parsed, EventClass::Rtp, rtp.encode());
        self.drain_media()
    }

    /// Drains broker deliveries into egress + streaming side effects.
    fn drain_media(&mut self) -> Vec<Egress> {
        let mut egress = Vec::new();
        for delivery in self.broker.drain_deliveries() {
            let topic = delivery.event.topic.to_string();
            let Ok(rtp) = RtpPacket::decode(&delivery.event.payload) else {
                continue;
            };
            if delivery.client == self.media_service {
                // The media service taps every topic: feed the producer
                // for this stream, the Helix server and the archive.
                let producer = self
                    .producers
                    .entry(topic.clone())
                    .or_insert_with(|| RealProducer::new(topic.clone()));
                producer.ingest(&rtp, self.now);
                for chunk in producer.drain() {
                    self.archive.observe(&chunk);
                    self.helix.feed(chunk);
                }
            } else {
                egress.push(Egress::Media {
                    client: delivery.client,
                    topic,
                    rtp,
                });
            }
        }
        egress
    }

    /// Handles an XGSP message directly (the web-services path), routing
    /// notifications to bound endpoints. Returns protocol egress; the
    /// raw XGSP replies are available via the returned outputs of
    /// [`SessionServer`] semantics — callers needing them should use
    /// [`GlobalMmcs::handle_xgsp`].
    pub fn handle_xgsp(&mut self, from: Option<&str>, message: XgspMessage) -> Vec<ServerOutput> {
        // Keep the A/V switch in step with selection and membership.
        match &message {
            XgspMessage::MediaControl {
                session,
                user,
                op: mmcs_xgsp::message::MediaOp::Select,
                kind,
            } if kind == "video" => {
                self.switch.pin(*session, Some(user));
            }
            XgspMessage::Leave { session, user } => {
                self.switch.remove_member(*session, user);
            }
            XgspMessage::TerminateSession { session } => {
                self.switch.remove_session(*session);
            }
            _ => {}
        }
        let outputs = self.session_server.handle(from, message);
        self.apply_outputs(&outputs);
        outputs
    }

    /// The currently selected (broadcast) video source for a session,
    /// driven by audio activity reports and chair pins.
    pub fn selected_video(&self, session: SessionId) -> Option<&str> {
        self.switch.selected(session)
    }

    /// Reports a member's audio energy to the A/V switch (the RTP
    /// proxies do this from RTCP in the full deployment).
    pub fn report_audio_level(&mut self, session: SessionId, user: &str, level: f64) {
        let now = self.now;
        self.switch.report_audio(session, user, level, now);
    }

    /// Applies XGSP server outputs: broker commands create/remove
    /// streaming taps; notifications/invites become egress.
    fn apply_outputs(&mut self, outputs: &[ServerOutput]) -> Vec<Egress> {
        let mut egress = Vec::new();
        for output in outputs {
            match output {
                ServerOutput::Broker(BrokerCommand::CreateTopic(topic)) => {
                    self.helix.add_stream(topic.clone());
                    self.producers
                        .entry(topic.clone())
                        .or_insert_with(|| RealProducer::new(topic.clone()));
                }
                ServerOutput::Broker(BrokerCommand::RemoveTopic(topic)) => {
                    self.producers.remove(topic);
                }
                ServerOutput::Notify { user, message } => {
                    if let Some(item) = self.notification_egress(user, message) {
                        egress.push(item);
                    }
                }
                ServerOutput::Invite { to, message } => {
                    if let Some(item) = self.notification_egress(to, message) {
                        egress.push(item);
                    }
                }
                ServerOutput::Reply(_) => {}
            }
        }
        egress
    }

    /// Translates one XGSP notification for a user's endpoint (public
    /// so operators/tests can preview the mapping).
    pub fn egress_for_notification(&self, user: &str, message: &XgspMessage) -> Option<Egress> {
        self.notification_egress(user, message)
    }

    /// Translates one XGSP notification for a user's endpoint.
    fn notification_egress(&self, user: &str, message: &XgspMessage) -> Option<Egress> {
        match self.endpoints.get(user) {
            Some(EndpointKind::Sip(uri)) => Some(Egress::Sip(
                SipMessage::request(SipMethod::Notify, uri.clone())
                    .with_header("Via", "SIP/2.0/UDP mmcs.example;branch=z9hG4bK-core")
                    .with_header("From", "<sip:mmcs@mmcs.example>")
                    .with_header("To", format!("<{uri}>"))
                    .with_header("Event", "conference")
                    .with_body("application/xgsp+xml", message.to_xml()),
            )),
            Some(EndpointKind::Im(jid)) => Some(Egress::Stanza {
                to: jid.clone(),
                stanza: Stanza::Message {
                    from: "mmcs".into(),
                    to: jid.clone(),
                    body: message.to_xml(),
                },
            }),
            Some(EndpointKind::H323) | None => None,
        }
    }

    /// Handles a SIP request: REGISTER → registrar, SUBSCRIBE →
    /// presence, conference URIs → gateway (XGSP), anything else →
    /// proxy. Returns the SIP messages to send.
    pub fn handle_sip(&mut self, request: &SipMessage) -> Vec<SipMessage> {
        let StartLine::Request { method, uri } = &request.start else {
            // A response: route through the proxy's Via handling.
            return match self.sip_proxy.handle_response(request) {
                ProxyAction::ForwardResponse { response, .. } => vec![response],
                ProxyAction::Respond(response) => vec![response],
                ProxyAction::ForwardRequest { request, .. } => vec![request],
            };
        };
        match method {
            SipMethod::Register => vec![self.registrar.handle_register(request, self.now)],
            SipMethod::Subscribe => self.presence.handle_subscribe(request, self.now),
            _ if self.sip_gateway.is_conference_uri(uri) => {
                let replies = self
                    .sip_gateway
                    .handle_request(request, &mut self.session_server);
                // The gateway's session mutations may have created topics.
                self.sync_streams();
                replies
            }
            _ => match self.sip_proxy.handle_request(request, &self.registrar, self.now) {
                ProxyAction::ForwardRequest { request, .. } => vec![request],
                ProxyAction::ForwardResponse { response, .. } => vec![response],
                ProxyAction::Respond(response) => vec![response],
            },
        }
    }

    /// Handles an H.323 message: RAS → gatekeeper, Q.931/H.245 →
    /// gateway (XGSP).
    pub fn handle_h323(&mut self, message: &H323Message) -> Vec<H323Message> {
        match message {
            H323Message::Ras(ras) => vec![H323Message::Ras(self.gatekeeper.handle(ras))],
            other => {
                let replies = self.h323_gateway.handle(other, &mut self.session_server);
                self.sync_streams();
                replies
            }
        }
    }

    /// Handles an IM stanza.
    pub fn handle_stanza(&mut self, stanza: Stanza) -> Vec<Outgoing> {
        self.im.handle(stanza)
    }

    /// Escalates an IM room into an ad-hoc session, delivering invites.
    ///
    /// # Errors
    ///
    /// Propagates [`mmcs_im::adhoc::EscalateError`].
    pub fn escalate_room(
        &mut self,
        room: &str,
        initiator: &str,
    ) -> Result<mmcs_im::adhoc::Escalation, mmcs_im::adhoc::EscalateError> {
        let terminal = mmcs_util::id::TerminalId::from_raw(1);
        let escalation = mmcs_im::adhoc::escalate_room(
            &self.im,
            &mut self.session_server,
            room,
            initiator,
            terminal,
        )?;
        self.sync_streams();
        Ok(escalation)
    }

    /// Ensures every live session's media topics have streaming taps.
    fn sync_streams(&mut self) {
        let topics: Vec<String> = self
            .session_server
            .session_ids()
            .filter_map(|id| self.session_server.session(id))
            .flat_map(|session| session.streams().iter().map(|s| s.topic.clone()))
            .collect();
        for topic in topics {
            self.helix.add_stream(topic.clone());
            self.producers
                .entry(topic.clone())
                .or_insert_with(|| RealProducer::new(topic));
        }
    }

    /// Renders the system's WSDL-CI directory as a web page-ish XML
    /// summary (the XGSP naming & directory server's listing).
    pub fn directory_listing(&self) -> Element {
        let mut root = Element::new("globalmmcs-directory");
        for community in self.communities.communities() {
            let mut community_el = Element::new("community").with_attr("name", &community.name);
            for server in &community.servers {
                community_el.push_child(
                    Element::new("server")
                        .with_attr("service", &server.service)
                        .with_attr("kind", &server.kind)
                        .with_attr("endpoint", &server.endpoint),
                );
            }
            root.push_child(community_el);
        }
        let mut sessions_el = Element::new("sessions");
        let mut ids: Vec<SessionId> = self.session_server.session_ids().collect();
        ids.sort();
        for id in ids {
            if let Some(session) = self.session_server.session(id) {
                sessions_el.push_child(
                    Element::new("session")
                        .with_attr("id", id.value().to_string())
                        .with_attr("name", session.name())
                        .with_attr("members", session.member_count().to_string()),
                );
            }
        }
        root.push_child(sessions_el);
        root
    }
}

impl Default for GlobalMmcs {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for GlobalMmcs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalMmcs")
            .field("sessions", &self.session_server.session_count())
            .field("users", &self.users.user_count())
            .field("now", &self.now)
            .finish()
    }
}
