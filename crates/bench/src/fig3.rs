//! Figure 3: per-packet delay and jitter, NaradaBrokering vs JMF.
//!
//! Paper setup (§3.2): one client sends a 600 Kbps video stream through a
//! single broker (or the JMF reflector); 400 receivers subscribe, 12 of
//! them on the same machine as the sender — only those 12 are measured
//! (they share the sender's clock). 2000 packets are observed. Paper
//! results: NaradaBrokering avg delay 80.76 ms vs JMF 229.23 ms; avg
//! jitter 13.38 ms vs 15.55 ms.
//!
//! Machine model (see `DESIGN.md` §2 and `EXPERIMENTS.md` for the
//! calibration): three hosts on a 200 µs LAN — the sender machine
//! (sender + the 12 measured receivers), the client machine (the other
//! 388 receivers) and the relay machine (broker or reflector) whose NIC
//! runs at ~275 Mbps effective (2003-era PCI-bus-limited gigabit),
//! putting the 400-receiver fan-out at ≈0.96 utilization — the regime
//! that produces the paper's ~80 ms average.

use mmcs_broker::batch::CostModel;
use mmcs_broker::shardsim::{ShardedSimCluster, ShardedSimConfig};
use mmcs_broker::simdrv::{BrokerProcess, PublisherConfig, RtpReceiver, VideoPublisher};
use mmcs_broker::topic::{Topic, TopicFilter};
use mmcs_jmf::{DirectMedia, GcModel, ReflectorCost, ReflectorProcess, RtpDirectSender, RtpDirectSink};
use mmcs_rtp::packet::payload_type;
use mmcs_rtp::source::{VideoSource, VideoSourceConfig};
use mmcs_sim::net::NicConfig;
use mmcs_sim::Simulation;
use mmcs_telemetry::{Histogram, HistogramSnapshot};
use mmcs_util::id::{BrokerId, ClientId};
use mmcs_util::rate::Bandwidth;
use mmcs_util::rng::DetRng;
use mmcs_util::time::{SimDuration, SimTime};

/// Parameters of the Figure 3 experiment.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// RNG seed (the experiment is bit-reproducible per seed).
    pub seed: u64,
    /// Total receivers (paper: 400).
    pub receivers: usize,
    /// Receivers co-located with the sender and measured (paper: 12).
    pub measured: usize,
    /// Packets to observe (paper: 2000).
    pub packets: u64,
    /// The video stream (paper: 600 Kbps).
    pub video: VideoSourceConfig,
    /// Relay (broker/reflector) machine NIC capacity.
    pub relay_nic: Bandwidth,
    /// One-way LAN latency between machines.
    pub lan_latency: SimDuration,
    /// Per-packet receive cost at each client.
    pub recv_cpu: SimDuration,
    /// Broker cost model (NaradaBrokering side).
    pub broker_cost: CostModel,
    /// Reflector cost model (JMF side).
    pub reflector_cost: ReflectorCost,
    /// Reflector GC model (JMF side).
    pub gc: GcModel,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Self {
            seed: 20030915, // the venue year; any seed reproduces the shape
            receivers: 400,
            measured: 12,
            packets: 2000,
            video: VideoSourceConfig::default(),
            relay_nic: Bandwidth::from_mbps(275),
            lan_latency: SimDuration::from_micros(200),
            recv_cpu: SimDuration::from_micros(30),
            broker_cost: CostModel::narada(),
            reflector_cost: ReflectorCost::jmf(),
            gc: GcModel::java_1_4(),
        }
    }
}

impl Fig3Config {
    /// A reduced-scale configuration for CI tests (~40 receivers, 300
    /// packets) that preserves the relative utilizations and therefore
    /// the result shape.
    pub fn reduced() -> Self {
        let full = Self::default();
        // 10× fewer receivers: scale the relay NIC down 10× (same NIC
        // utilization) and the per-send CPU costs up 10× (same CPU
        // utilization) so both bottlenecks keep their full-scale roles.
        let mut broker_cost = full.broker_cost;
        broker_cost.per_send = broker_cost.per_send * 10;
        broker_cost.per_kilobyte = broker_cost.per_kilobyte * 10;
        let mut reflector_cost = full.reflector_cost;
        reflector_cost.per_send = reflector_cost.per_send * 10;
        reflector_cost.per_kilobyte = reflector_cost.per_kilobyte * 10;
        Self {
            receivers: 40,
            measured: 4,
            packets: 300,
            relay_nic: Bandwidth::from_mbps(31),
            broker_cost,
            reflector_cost,
            ..full
        }
    }

    fn relay_nic_config(&self) -> NicConfig {
        NicConfig {
            bandwidth: self.relay_nic,
            // Large socket buffers (the paper's optimized transmission
            // path); I-frame bursts need several MB of backlog headroom.
            queue_bytes: 64 * 1024 * 1024,
            ..NicConfig::default()
        }
    }

    fn run_duration(&self) -> SimTime {
        // packets at ~75 pps plus generous slack for queue drain.
        let media_secs = self.packets as f64
            / (self.video.bitrate_bps as f64 / 8.0 / 1000.0)
            * (self.video.mtu_payload as f64 / 1000.0);
        SimTime::from_secs(media_secs as u64 + 20)
    }
}

/// One system's measured outcome.
#[derive(Debug, Clone)]
pub struct SystemResult {
    /// Mean one-way delay across all measured packets (ms).
    pub avg_delay_ms: f64,
    /// Mean RFC 3550 smoothed jitter at end of run, averaged over the
    /// measured receivers (ms).
    pub avg_jitter_ms: f64,
    /// Per-packet delay, averaged across the measured receivers (ms).
    pub delay_series: Vec<f64>,
    /// Per-packet smoothed jitter, averaged across receivers (ms).
    pub jitter_series: Vec<f64>,
    /// Packets received per measured receiver (mean).
    pub received: f64,
    /// Loss fraction across measured receivers.
    pub loss_fraction: f64,
    /// Every measured per-packet delay, pooled across receivers, as a
    /// telemetry histogram snapshot (nanosecond samples). The headline
    /// `avg_delay_ms` is derived from this snapshot's exact mean — the
    /// bench and the telemetry pipeline share one accounting code path.
    pub delay_hist: HistogramSnapshot,
    /// Final RFC 3550 smoothed jitter per measured receiver, as a
    /// telemetry histogram snapshot (nanosecond samples); `avg_jitter_ms`
    /// is its mean.
    pub jitter_hist: HistogramSnapshot,
}

/// Per-receiver series: (delay samples, jitter samples, received count,
/// final jitter ms).
type ReceiverSeries = (Vec<f64>, Vec<f64>, u64, f64);

fn summarize(per_receiver: Vec<ReceiverSeries>) -> SystemResult {
    let receivers = per_receiver.len().max(1) as f64;
    let min_len = per_receiver
        .iter()
        .map(|(d, _, _, _)| d.len())
        .min()
        .unwrap_or(0);
    let mut delay_series = vec![0.0; min_len];
    let mut jitter_series = vec![0.0; min_len];
    let mut received = 0.0;
    let delay_hist = Histogram::new();
    let jitter_hist = Histogram::new();
    for (delays, jitters, recv, jitter) in &per_receiver {
        for i in 0..min_len {
            delay_series[i] += delays[i] / receivers;
            jitter_series[i] += jitters[i] / receivers;
        }
        for delay in delays {
            delay_hist.record_duration(SimDuration::from_millis_f64(*delay));
        }
        jitter_hist.record_duration(SimDuration::from_millis_f64(*jitter));
        received += *recv as f64 / receivers;
    }
    let delay_hist = delay_hist.snapshot();
    let jitter_hist = jitter_hist.snapshot();
    SystemResult {
        // Exact pooled means (histogram count and sum carry no bucketing
        // error), converted ns → ms.
        avg_delay_ms: delay_hist.mean() / 1e6,
        avg_jitter_ms: jitter_hist.mean() / 1e6,
        delay_series,
        jitter_series,
        received,
        loss_fraction: 0.0,
        delay_hist,
        jitter_hist,
    }
}

/// Runs the NaradaBrokering side of Figure 3.
pub fn run_narada(config: &Fig3Config) -> SystemResult {
    let mut sim = Simulation::new(config.seed);
    let sender_host = sim.add_host("sender-machine", NicConfig::default());
    let broker_host = sim.add_host("broker-machine", config.relay_nic_config());
    let client_host = sim.add_host("client-machine", NicConfig::default());
    sim.set_default_latency(config.lan_latency);

    let broker = sim.add_typed_process(
        broker_host,
        BrokerProcess::new(BrokerId::from_raw(1), config.broker_cost),
    );

    let topic = Topic::parse("globalmmcs/session-1/video").expect("static topic");
    let filter = TopicFilter::exact(&topic);

    let mut measured_ids = Vec::new();
    for i in 0..config.receivers {
        let co_located = i < config.measured;
        let host = if co_located { sender_host } else { client_host };
        let mut receiver = RtpReceiver::new(
            broker,
            ClientId::from_raw(100 + i as u64),
            filter.clone(),
            payload_type::H263,
            config.recv_cpu,
        );
        if co_located {
            receiver = receiver.with_series_capture();
        }
        let id = sim.add_typed_process(host, receiver);
        if co_located {
            measured_ids.push(id);
        }
    }

    let mut publisher_config =
        PublisherConfig::new(broker, ClientId::from_raw(1), topic);
    publisher_config.max_packets = config.packets;
    let source = VideoSource::new(config.video, 0xABCD, DetRng::new(config.seed ^ 0x5EED));
    sim.add_typed_process(sender_host, VideoPublisher::new(publisher_config, source));

    sim.run_until(config.run_duration());

    let per_receiver = measured_ids
        .iter()
        .map(|id| {
            let stats = sim
                .process_ref::<RtpReceiver>(*id)
                .expect("receiver process")
                .stats();
            (
                stats.delay_series().expect("capture on").samples().to_vec(),
                stats.jitter_series().expect("capture on").samples().to_vec(),
                stats.received(),
                stats.jitter_ms(),
            )
        })
        .collect();
    let mut result = summarize(per_receiver);
    result.loss_fraction = measured_loss(&sim, &measured_ids);
    result
}

fn measured_loss(sim: &Simulation, ids: &[mmcs_sim::ProcessId]) -> f64 {
    let mut total = 0.0;
    for id in ids {
        if let Some(receiver) = sim.process_ref::<RtpReceiver>(*id) {
            total += receiver.stats().loss_fraction();
        } else if let Some(sink) = sim.process_ref::<RtpDirectSink>(*id) {
            total += sink.stats().loss_fraction();
        }
    }
    total / ids.len().max(1) as f64
}

/// Runs the JMF-reflector side of Figure 3.
pub fn run_jmf(config: &Fig3Config) -> SystemResult {
    let mut sim = Simulation::new(config.seed);
    let sender_host = sim.add_host("sender-machine", NicConfig::default());
    let reflector_host = sim.add_host("reflector-machine", config.relay_nic_config());
    let client_host = sim.add_host("client-machine", NicConfig::default());
    sim.set_default_latency(config.lan_latency);

    let mut measured_ids = Vec::new();
    let mut all_sinks = Vec::new();
    for i in 0..config.receivers {
        let co_located = i < config.measured;
        let host = if co_located { sender_host } else { client_host };
        let mut sink = RtpDirectSink::new(payload_type::H263, config.recv_cpu);
        if co_located {
            sink = sink.with_series_capture();
        }
        let id = sim.add_typed_process(host, sink);
        all_sinks.push(id);
        if co_located {
            measured_ids.push(id);
        }
    }

    let mut reflector = ReflectorProcess::new(config.reflector_cost, config.gc);
    for sink in &all_sinks {
        reflector.add_receiver(*sink);
    }
    let reflector_id = sim.add_typed_process(reflector_host, reflector);

    let source = VideoSource::new(config.video, 0xABCD, DetRng::new(config.seed ^ 0x5EED));
    sim.add_typed_process(
        sender_host,
        RtpDirectSender::new(
            reflector_id,
            DirectMedia::Video(source),
            SimDuration::from_millis(100),
            config.packets,
        ),
    );

    sim.run_until(config.run_duration());

    let per_receiver = measured_ids
        .iter()
        .map(|id| {
            let stats = sim
                .process_ref::<RtpDirectSink>(*id)
                .expect("sink process")
                .stats();
            (
                stats.delay_series().expect("capture on").samples().to_vec(),
                stats.jitter_series().expect("capture on").samples().to_vec(),
                stats.received(),
                stats.jitter_ms(),
            )
        })
        .collect();
    let mut result = summarize(per_receiver);
    result.loss_fraction = measured_loss(&sim, &measured_ids);
    result
}

/// Figure 3's methodology re-run on the *sharded* runtime: the same
/// stream, receivers and measurement, but the relay is a
/// [`ShardedSimCluster`] — receivers attach to their home shard and the
/// publisher to the topic's owner shard, so cross-shard deliveries take
/// the forward hop exactly as in the thread runtime.
#[derive(Debug, Clone)]
pub struct ShardedFig3Result {
    /// The usual Figure 3 summary over the measured receivers.
    pub system: SystemResult,
    /// The measured delay samples pooled *per home shard* (index =
    /// shard). Merging these snapshots reproduces
    /// `system.delay_hist`'s count, sum and therefore exact mean —
    /// the cross-check `tests/fig3_crosscheck.rs` pins down.
    pub shard_delay: Vec<HistogramSnapshot>,
    /// Shard count the cluster ran with.
    pub shards: usize,
}

/// Runs the NaradaBrokering side of Figure 3 on a sharded cluster of
/// `shards` brokers splitting `config.relay_nic` evenly.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn run_narada_sharded(config: &Fig3Config, shards: usize) -> ShardedFig3Result {
    assert!(shards > 0, "shard count must be positive");
    let mut sim = Simulation::new(config.seed);
    let cluster = ShardedSimCluster::build(&mut sim, &{
        let mut sharded = ShardedSimConfig::split(shards, config.relay_nic);
        sharded.cost = config.broker_cost;
        sharded
    });
    let sender_host = sim.add_host("sender-machine", NicConfig::default());
    let client_host = sim.add_host("client-machine", NicConfig::default());
    sim.set_default_latency(config.lan_latency);

    let topic = Topic::parse("globalmmcs/session-1/video").expect("static topic");
    let filter = TopicFilter::exact(&topic);

    let mut measured = Vec::new();
    for i in 0..config.receivers {
        let co_located = i < config.measured;
        let host = if co_located { sender_host } else { client_host };
        let client = ClientId::from_raw(100 + i as u64);
        let mut receiver = RtpReceiver::new(
            cluster.home_process(client),
            client,
            filter.clone(),
            payload_type::H263,
            config.recv_cpu,
        );
        if co_located {
            receiver = receiver.with_series_capture();
        }
        let id = sim.add_typed_process(host, receiver);
        if co_located {
            measured.push((id, cluster.home_shard(client)));
        }
    }

    let mut publisher_config = PublisherConfig::new(
        cluster.owner_process(&topic),
        ClientId::from_raw(1),
        topic,
    );
    publisher_config.max_packets = config.packets;
    let source = VideoSource::new(config.video, 0xABCD, DetRng::new(config.seed ^ 0x5EED));
    sim.add_typed_process(sender_host, VideoPublisher::new(publisher_config, source));

    sim.run_until(config.run_duration());

    // Pool each measured receiver's delay samples by its home shard,
    // through the same ms → SimDuration conversion `summarize` uses, so
    // the merged pools and `delay_hist` see bit-identical samples.
    let shard_pools: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
    let measured_ids: Vec<mmcs_sim::ProcessId> = measured.iter().map(|(id, _)| *id).collect();
    let per_receiver = measured
        .iter()
        .map(|(id, home)| {
            let stats = sim
                .process_ref::<RtpReceiver>(*id)
                .expect("receiver process")
                .stats();
            let delays = stats.delay_series().expect("capture on").samples().to_vec();
            for delay in &delays {
                shard_pools[*home].record_duration(SimDuration::from_millis_f64(*delay));
            }
            (
                delays,
                stats.jitter_series().expect("capture on").samples().to_vec(),
                stats.received(),
                stats.jitter_ms(),
            )
        })
        .collect();
    let mut system = summarize(per_receiver);
    system.loss_fraction = measured_loss(&sim, &measured_ids);
    ShardedFig3Result {
        system,
        shard_delay: shard_pools.iter().map(Histogram::snapshot).collect(),
        shards,
    }
}

/// Both sides of Figure 3 on the same configuration.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// NaradaBrokering measurements.
    pub narada: SystemResult,
    /// JMF reflector measurements.
    pub jmf: SystemResult,
}

/// Runs the complete Figure 3 experiment.
pub fn run(config: &Fig3Config) -> Fig3Result {
    Fig3Result {
        narada: run_narada(config),
        jmf: run_jmf(config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_fig3_preserves_the_paper_shape() {
        let config = Fig3Config::reduced();
        let result = run(&config);
        // Everything was delivered.
        assert!(result.narada.received >= config.packets as f64 * 0.98);
        assert!(result.jmf.received >= config.packets as f64 * 0.90);
        // The headline: the broker beats the reflector on delay by a
        // clear factor, and jitter is no worse.
        assert!(
            result.jmf.avg_delay_ms > result.narada.avg_delay_ms * 1.5,
            "jmf {} vs narada {}",
            result.jmf.avg_delay_ms,
            result.narada.avg_delay_ms
        );
        assert!(
            result.narada.avg_jitter_ms <= result.jmf.avg_jitter_ms * 1.5,
            "narada jitter {} vs jmf {}",
            result.narada.avg_jitter_ms,
            result.jmf.avg_jitter_ms
        );
    }

    #[test]
    fn fig3_is_deterministic() {
        let config = Fig3Config {
            packets: 100,
            receivers: 10,
            measured: 2,
            relay_nic: Bandwidth::from_mbps(8),
            ..Fig3Config::default()
        };
        let a = run_narada(&config);
        let b = run_narada(&config);
        assert_eq!(a.avg_delay_ms, b.avg_delay_ms);
        assert_eq!(a.delay_series, b.delay_series);
    }
}
