//! A minimal JSON tree: parse, query, render.
//!
//! The workspace vendors no serde (no registry access), but the
//! capacity-frontier harness needs to *read* its committed baseline and
//! the golden-schema tests need to compare structure while ignoring
//! volatile numbers. This module is the few hundred lines that cover
//! exactly that: a strict RFC 8259 subset parser into an order-preserving
//! tree, accessors, a deterministic renderer, and a schema-normal form.
//!
//! Not a general-purpose JSON library: numbers are `f64`, `\u` escapes
//! outside the BMP are rejected, and rendering uses the shortest-f64
//! `{}` format (stable for round-tripping our own fixed-precision
//! output, which is all we render).

use std::fmt;

/// A parsed JSON value. Object keys keep their source order — the
/// schema-golden tests treat key order as part of the schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what was wrong and the byte offset it was found at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, JsonError> {
        Err(JsonError {
            message: message.to_owned(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", byte as char))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.err(&format!("expected '{text}'"))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex.and_then(char::from_u32) else {
                                return self.err("bad \\u escape");
                            };
                            self.pos += 4;
                            out.push(code);
                        }
                        _ => return self.err("bad escape"),
                    }
                }
                _ => {
                    // Re-decode from the byte position: multi-byte UTF-8.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| JsonError {
                            message: "invalid utf-8".to_owned(),
                            offset: start,
                        })?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => self.err("bad number"),
        }
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// content rejected).
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return parser.err("trailing content");
        }
        Ok(value)
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    /// (Named `member`, not `get`, so the analyzer's name-keyed call
    /// graph doesn't link it into the broker's hot-path `.get(` sites.)
    pub fn member(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace), keys in stored order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                escape(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape(key, out);
                    out.push_str("\":");
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// The schema-normal form the golden tests compare: numbers → `0`,
    /// booleans → `false`, arrays truncated to their first element
    /// (normalized), strings and object keys/order kept. Two documents
    /// with the same keys in the same order and the same nesting have
    /// equal normal forms no matter what was measured.
    pub fn schema_normal(&self) -> Json {
        match self {
            Json::Null => Json::Null,
            Json::Bool(_) => Json::Bool(false),
            Json::Num(_) => Json::Num(0.0),
            Json::Str(s) => Json::Str(s.clone()),
            Json::Arr(items) => {
                Json::Arr(items.first().map(Json::schema_normal).into_iter().collect())
            }
            Json::Obj(entries) => Json::Obj(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.schema_normal()))
                    .collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#" {"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\n\"yé"} "#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.member("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.member("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.member("b").unwrap().member("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.member("b").unwrap().member("d"), Some(&Json::Null));
        assert_eq!(v.member("e").unwrap().as_str(), Some("x\n\"y\u{e9}"));
    }

    #[test]
    fn rejects_garbage_with_offsets() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("nul").is_err());
        let err = Json::parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn render_round_trips() {
        let doc = r#"{"k":[1,2.5,true,null,"s"],"m":{"n":-7}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.render(), doc);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn schema_normal_erases_measurements_keeps_shape() {
        let a = Json::parse(r#"{"knee":120,"pts":[{"c":30,"ok":true},{"c":60,"ok":false}]}"#)
            .unwrap();
        let b = Json::parse(r#"{"knee":480,"pts":[{"c":99,"ok":false}]}"#).unwrap();
        assert_eq!(a.schema_normal(), b.schema_normal());
        // A key rename is a schema change.
        let c = Json::parse(r#"{"knee":1,"pts":[{"C":1,"ok":true}]}"#).unwrap();
        assert_ne!(a.schema_normal(), c.schema_normal());
        // Key order is part of the schema.
        let d = Json::parse(r#"{"pts":[{"c":1,"ok":true}],"knee":1}"#).unwrap();
        assert_ne!(a.schema_normal(), d.schema_normal());
    }

    #[test]
    fn as_u64_accepts_integers_only() {
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
