//! Experiment harnesses reproducing the Global-MMCS evaluation.
//!
//! Each module builds one experiment from `EXPERIMENTS.md` on top of the
//! deterministic simulator and returns structured results; the
//! `harness = false` bench targets (`benches/fig3.rs`,
//! `benches/capacity.rs`, `benches/ablation.rs`) print the paper's
//! rows/series and write CSVs to `bench_results/`, while reduced-scale
//! versions run as ordinary tests to guard the experiment *shape* in CI.
//!
//! * [`fig3`] — Figure 3: delay and jitter per packet for 12 measured
//!   (of 400) video receivers, NaradaBrokering vs the JMF reflector.
//! * [`capacity`] — the in-text capacity claims: > 1000 audio clients,
//!   > 400 video clients per broker with good quality.
//! * [`ablation`] — A1 (send batching on/off) and A2 (1–4 broker
//!   dissemination trees).
//! * [`frontier`] — the capacity frontier on the *sharded* runtime:
//!   clients × shards × fan-out swept to the knee, the
//!   million-subscriber broadcast, and the `BENCH_capacity.json`
//!   artifact CI diffs against its baseline.
//! * [`json`] — dependency-free JSON parse/render used by the frontier
//!   baseline comparison and the golden schema tests.
//! * [`report`] — CSV/table helpers shared by the bench targets.

pub mod ablation;
pub mod capacity;
pub mod fig3;
pub mod frontier;
pub mod json;
pub mod report;
