//! The capacity frontier: clients × shards × fan-out on the sharded
//! broker, swept to the knee.
//!
//! ROADMAP item 3: push the paper's capacity claims (C1/C2, >1000 audio
//! / >400 video clients on *one* broker) onto the sharded runtime and
//! into the millions. This harness rebuilds the `ShardedBroker` topology
//! inside the deterministic simulator
//! ([`mmcs_broker::shardsim::ShardedSimCluster`] — same placement
//! hashes, same one-hop forward ring), loads it with conference sessions
//! of a given fan-out, and walks a client-count ladder until the pooled
//! delay histogram's p99 or the loss fraction leaves the quality bound
//! ("IP Video Conferencing: A Tutorial"'s interactive budget). The knee
//! — the last rung of the leading good prefix, see
//! [`crate::capacity::knee_index`] — is the tracked number.
//!
//! Client bundling: a [`mmcs_broker::simdrv::ClientBundle`] of weight W
//! stands in for W co-located clients behind one multicast delivery (the
//! paper's multicast-relay tier, ablation A3), which is what makes a
//! simulated **million-subscriber broadcast** cost thousands — not
//! millions — of simulator events. Knee sweeps run with weight 1
//! (honest per-client broker cost); the headline scenarios run bundled,
//! with unbundled spot receivers asserting exact delivery so the bundled
//! numbers stay trustworthy.
//!
//! Everything is bit-reproducible per seed: the report renders to a
//! stable JSON document (`BENCH_capacity.json`, fixed key order, fixed
//! float precision) that CI diffs against a committed baseline.

use std::sync::Arc;

use mmcs_broker::batch::CostModel;
use mmcs_broker::cluster::LatencyMap;
use mmcs_broker::clustersim::{ClusterSimConfig, ClusterSimNet};
use mmcs_broker::shardsim::{ShardedSimCluster, ShardedSimConfig};
use mmcs_broker::simdrv::{
    AudioPublisher, ClientBundle, PublisherConfig, RtpReceiver, VideoPublisher,
};
use mmcs_broker::topic::{Topic, TopicFilter};
use mmcs_rtp::packet::payload_type;
use mmcs_rtp::source::{AudioCodec, AudioSource, VideoSource, VideoSourceConfig};
use mmcs_sim::net::NicConfig;
use mmcs_sim::Simulation;
use mmcs_telemetry::{Histogram, HistogramSnapshot};
use mmcs_util::id::ClientId;
use mmcs_util::rate::Bandwidth;
use mmcs_util::rng::DetRng;
use mmcs_util::time::{monotonic_now, SimDuration, SimTime};

use crate::capacity::{knee_index, Media, GOOD_LOSS};
use crate::json::Json;

/// Quality bound: pooled p99 one-way delay must stay under this.
///
/// The interactive budget ("IP Video Conferencing: A Tutorial", and
/// ITU-T G.114's 150 ms one-way rule of thumb) applied to the tail
/// rather than the mean — a conference is only as good as its worst
/// regular frame.
pub const GOOD_P99_DELAY_MS: f64 = 150.0;

/// Knee-regression tolerance for baseline comparison: the current knee
/// must be at least 2/3 of the committed baseline knee (one ladder rung
/// of headroom) — checked in integer arithmetic as
/// `current × 3 ≥ baseline × 2`.
pub const KNEE_TOLERANCE_NUM: u64 = 2;
/// Denominator of the knee tolerance ratio (see [`KNEE_TOLERANCE_NUM`]).
pub const KNEE_TOLERANCE_DEN: u64 = 3;

/// Parameters of one frontier measurement.
#[derive(Debug, Clone)]
pub struct FrontierConfig {
    /// RNG seed (the whole report is bit-reproducible per seed).
    pub seed: u64,
    /// Media type for every session.
    pub media: Media,
    /// Shard count of the simulated cluster.
    pub shards: usize,
    /// Total subscribing clients, summed over all sessions.
    pub clients: u64,
    /// Session size: each session is one publisher plus `fanout`
    /// subscribers on the session's own topic. `fanout == clients`
    /// degenerates to a single-topic broadcast.
    pub fanout: u64,
    /// Clients represented per [`ClientBundle`] process. 1 = honest
    /// unicast (one broker delivery per client); >1 = the multicast
    /// relay tier (one delivery per bundle, weighted accounting).
    pub bundle: u64,
    /// RTP packets each session's publisher emits.
    pub packets: u64,
    /// Aggregate cluster NIC capacity, split evenly across shards.
    pub total_nic: Bandwidth,
    /// Broker CPU cost model, charged per shard.
    pub cost: CostModel,
    /// Per-client per-packet receive CPU.
    pub recv_cpu: SimDuration,
    /// One-way LAN latency between simulated hosts.
    pub lan_latency: SimDuration,
    /// Media starts this long after simulation start (subscription
    /// settling, matching the other experiments).
    pub start_delay: SimDuration,
    /// Per-session start offset step, wrapped at the media tick
    /// interval. Zero starts every publisher at `start_delay` exactly —
    /// synchronized ticks, the worst case for queueing. Nonzero spreads
    /// session starts (deterministically, no RNG) the way real
    /// conferences arrive, which is what the interactive scenarios use.
    pub stagger: SimDuration,
    /// Publisher processes grouped per simulated sender host.
    pub publishers_per_host: u64,
    /// Bundle processes grouped per simulated client host.
    pub bundles_per_host: u64,
    /// Unbundled [`RtpReceiver`] spot-check clients subscribed to the
    /// first session's topic; each must receive exactly `packets`.
    pub spot_clients: u64,
    /// Simulation engine worker threads. `1` runs sequentially; more
    /// drives the point through `Simulation::run_parallel_until`, which
    /// is bit-deterministic, so every reported number is unchanged —
    /// only the wall clock moves.
    pub workers: usize,
}

impl FrontierConfig {
    /// Full-scale configuration: calibrated NaradaBrokering cost model
    /// and a 310 Mbps-per-310-clients-era aggregate NIC scaled to the
    /// cluster (10 Gbps — a modern machine hosting all shards).
    pub fn new(media: Media, shards: usize, clients: u64, fanout: u64) -> Self {
        Self {
            seed: 77,
            media,
            shards,
            clients,
            fanout,
            bundle: 1,
            packets: 150,
            total_nic: Bandwidth::from_mbps(10_000),
            cost: CostModel::narada(),
            recv_cpu: SimDuration::from_micros(15),
            lan_latency: SimDuration::from_micros(200),
            start_delay: SimDuration::from_millis(200),
            stagger: SimDuration::from_nanos(0),
            publishers_per_host: 25,
            bundles_per_host: 50,
            spot_clients: 0,
            workers: 1,
        }
    }

    /// Reduced-scale configuration for CI: per-send CPU costs ×10 (so
    /// knees land at ~1/10 the client count and sweeps stay cheap), the
    /// same trick as `Fig3Config::reduced`. Audio keeps a wide NIC (it
    /// is CPU-bound; the knee must scale with shards); video gets a
    /// 31 Mbps aggregate NIC so it stays NIC-bound — the knee must NOT
    /// scale with shards, which is the frontier's headline contrast.
    pub fn reduced(media: Media, shards: usize, clients: u64, fanout: u64) -> Self {
        let mut config = Self::new(media, shards, clients, fanout);
        config.cost.per_send = config.cost.per_send * 10;
        config.cost.per_kilobyte = config.cost.per_kilobyte * 10;
        config.packets = 100;
        config.total_nic = match media {
            Media::Audio => Bandwidth::from_mbps(310),
            Media::Video => Bandwidth::from_mbps(31),
        };
        config
    }

    /// The media pacing interval: one packet per tick.
    fn tick_interval_ns(&self) -> u64 {
        match self.media {
            // AudioPublisher paces at 20 ms per packet.
            Media::Audio => 20_000_000,
            // VideoPublisher: 600 Kbps in ~1000-byte packets ≈ 75 pps.
            Media::Video => 13_334_000,
        }
    }

    /// Deterministic start offset for `session`'s publisher.
    fn stagger_offset(&self, session: u64) -> SimDuration {
        let tick = self.tick_interval_ns();
        SimDuration::from_nanos((session * self.stagger.as_nanos()) % tick)
    }

    /// Virtual-time deadline: start delay + media duration + fixed
    /// drain slack. Bounded so overloaded points cost bounded work —
    /// whatever the broker has not delivered by the deadline is loss.
    fn deadline(&self) -> SimTime {
        SimTime::ZERO
            + self.start_delay
            + SimDuration::from_nanos(self.packets * self.tick_interval_ns())
            + SimDuration::from_secs(5)
    }
}

/// One measured point of the frontier.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Total represented clients.
    pub clients: u64,
    /// Shard count.
    pub shards: usize,
    /// Session size.
    pub fanout: u64,
    /// Pooled mean one-way delay (ms), exact (histogram count+sum).
    pub mean_delay_ms: f64,
    /// Pooled p99 one-way delay (ms), within the histogram's 1/64
    /// relative bucket error.
    pub p99_delay_ms: f64,
    /// Client-weighted loss fraction: deliveries that had not arrived
    /// by the deadline.
    pub loss: f64,
    /// Client-deliveries expected (`Σ bundle weight × packets`).
    pub expected: u64,
    /// Client-deliveries observed by the deadline.
    pub delivered: u64,
    /// Spot-check deliveries expected (`spot_clients × packets`).
    pub spot_expected: u64,
    /// Spot-check deliveries observed.
    pub spot_delivered: u64,
    /// Whether p99 and loss are inside the quality bound.
    pub good: bool,
    /// Per-shard delay pool snapshots (index = home shard), whose
    /// merge is the pooled histogram the summary numbers came from.
    pub shard_delay: Vec<HistogramSnapshot>,
}

impl FrontierPoint {
    /// Whether every spot receiver got exactly every packet.
    pub fn spot_exact(&self) -> bool {
        self.spot_delivered == self.spot_expected
    }
}

/// Measures one point: builds the cluster, loads `clients` across
/// sessions of `fanout`, runs to the deadline, pools delay histograms
/// per home shard and merges them for the summary.
pub fn run_point(config: &FrontierConfig) -> FrontierPoint {
    assert!(config.shards > 0, "need at least one shard");
    assert!(config.fanout > 0, "need a positive session size");
    assert!(config.bundle > 0, "need a positive bundle weight");
    let mut sim = Simulation::new(config.seed);
    let cluster = ShardedSimCluster::build(
        &mut sim,
        &ShardedSimConfig {
            shards: config.shards,
            cost: config.cost,
            shard_nic: Bandwidth::from_bps(config.total_nic.bps() / config.shards as u64),
            queue_bytes: 64 * 1024 * 1024,
        },
    );
    sim.set_default_latency(config.lan_latency);

    // Sessions: fanout-sized, the last one taking the remainder.
    let sessions = config.clients.div_ceil(config.fanout).max(1);
    let mut next_client = 1_000u64;
    let mut bundles = Vec::new();
    let pools: Vec<Arc<Histogram>> = (0..config.shards).map(|_| Arc::new(Histogram::new())).collect();

    let mut bundle_host = None;
    let mut bundles_on_host = 0u64;
    let mut remaining = config.clients;
    for session in 0..sessions {
        let session_size = config.fanout.min(remaining);
        remaining -= session_size;
        let topic = Topic::parse(&format!("s{session}/av")).expect("static session topic");
        let filter = TopicFilter::exact(&topic);
        let mut left = session_size;
        while left > 0 {
            let weight = config.bundle.min(left);
            left -= weight;
            if bundles_on_host == 0 {
                bundle_host = Some(sim.add_host(
                    &format!("segment-{}", bundles.len() / config.bundles_per_host as usize),
                    NicConfig::default(),
                ));
            }
            let host = bundle_host.expect("host created above");
            bundles_on_host = (bundles_on_host + 1) % config.bundles_per_host;
            let client = ClientId::from_raw(next_client);
            next_client += 1;
            let home = cluster.home_shard(client);
            let process = sim.add_typed_process(
                host,
                ClientBundle::new(
                    cluster.home_process(client),
                    client,
                    filter.clone(),
                    weight,
                    config.recv_cpu,
                    Arc::clone(&pools[home]),
                ),
            );
            bundles.push((process, weight));
        }
    }

    // Spot checks: honest unicast receivers on session 0's topic.
    let spot_topic = Topic::parse("s0/av").expect("static session topic");
    let mut spot_ids = Vec::new();
    if config.spot_clients > 0 {
        let spot_host = sim.add_host("spot", NicConfig::default());
        let pt = match config.media {
            Media::Audio => payload_type::PCMU,
            Media::Video => payload_type::H263,
        };
        for _ in 0..config.spot_clients {
            let client = ClientId::from_raw(next_client);
            next_client += 1;
            spot_ids.push(sim.add_typed_process(
                spot_host,
                RtpReceiver::new(
                    cluster.home_process(client),
                    client,
                    TopicFilter::exact(&spot_topic),
                    pt,
                    config.recv_cpu,
                ),
            ));
        }
    }

    // One publisher per session, publishing straight to the topic's
    // owner shard (exactly where `ShardedClient::publish` lands).
    let mut sender_host = None;
    for session in 0..sessions {
        if session % config.publishers_per_host == 0 {
            sender_host = Some(sim.add_host(
                &format!("senders-{}", session / config.publishers_per_host),
                NicConfig::default(),
            ));
        }
        let host = sender_host.expect("host created above");
        let topic = Topic::parse(&format!("s{session}/av")).expect("static session topic");
        let mut publisher_config = PublisherConfig::new(
            cluster.owner_process(&topic),
            ClientId::from_raw(next_client),
            topic,
        );
        next_client += 1;
        publisher_config.start_delay = config.start_delay + config.stagger_offset(session);
        publisher_config.max_packets = config.packets;
        match config.media {
            Media::Audio => {
                let source = AudioSource::new(AudioCodec::Pcmu, 0xA0D10 + session as u32);
                sim.add_typed_process(host, AudioPublisher::new(publisher_config, source));
            }
            Media::Video => {
                let source = VideoSource::new(
                    VideoSourceConfig::default(),
                    0x71DE0 + session as u32,
                    DetRng::new(config.seed ^ (0xFEED + session)),
                );
                sim.add_typed_process(host, VideoPublisher::new(publisher_config, source));
            }
        }
    }

    if config.workers > 1 {
        sim.run_parallel_until(config.deadline(), config.workers);
    } else {
        sim.run_until(config.deadline());
    }

    let mut expected = 0u64;
    let mut delivered = 0u64;
    for (process, weight) in &bundles {
        let bundle = sim
            .process_ref::<ClientBundle>(*process)
            .expect("bundle process");
        expected += weight * config.packets;
        delivered += weight * bundle.received().min(config.packets);
    }
    let spot_expected = config.spot_clients * config.packets;
    let mut spot_delivered = 0u64;
    for id in &spot_ids {
        spot_delivered += sim
            .process_ref::<RtpReceiver>(*id)
            .expect("spot receiver")
            .stats()
            .received();
    }

    let shard_delay: Vec<HistogramSnapshot> = pools.iter().map(|p| p.snapshot()).collect();
    let merged = HistogramSnapshot::merge_all(&shard_delay);
    let mean_delay_ms = merged.mean() / 1e6;
    let p99_delay_ms = merged.quantile(0.99).unwrap_or(0) as f64 / 1e6;
    let loss = if expected == 0 {
        0.0
    } else {
        1.0 - delivered as f64 / expected as f64
    };
    let good = p99_delay_ms < GOOD_P99_DELAY_MS && loss < GOOD_LOSS && delivered > 0;
    FrontierPoint {
        clients: config.clients,
        shards: config.shards,
        fanout: config.fanout,
        mean_delay_ms,
        p99_delay_ms,
        loss,
        expected,
        delivered,
        spot_expected,
        spot_delivered,
        good,
        shard_delay,
    }
}

/// One sweep's specification: a (media, shards, fanout) cell and the
/// ascending client-count ladder walked inside it.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Media type.
    pub media: Media,
    /// Shard count.
    pub shards: usize,
    /// Session size.
    pub fanout: u64,
    /// Ascending client counts to measure.
    pub ladder: Vec<u64>,
}

impl SweepSpec {
    /// Stable identity of this sweep in reports and baselines.
    pub fn key(&self) -> String {
        format!(
            "{}/shards={}/fanout={}",
            media_name(self.media),
            self.shards,
            self.fanout
        )
    }
}

/// One sweep's measured outcome.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The specification that produced it.
    pub spec: SweepSpec,
    /// One point per ladder rung, in ladder order.
    pub points: Vec<FrontierPoint>,
    /// The knee: the last rung of the leading good prefix.
    pub knee: Option<u64>,
}

/// Walks `spec`'s ladder with every other parameter from `make`, and
/// finds the knee (leading-good-prefix semantics — see
/// [`crate::capacity::knee`]).
pub fn run_sweep(spec: &SweepSpec, make: impl Fn(&SweepSpec, u64) -> FrontierConfig) -> SweepResult {
    let points: Vec<FrontierPoint> = spec
        .ladder
        .iter()
        .map(|&clients| run_point(&make(spec, clients)))
        .collect();
    let goods: Vec<bool> = points.iter().map(|p| p.good).collect();
    let knee = knee_index(&goods).map(|i| points[i].clients);
    SweepResult {
        spec: spec.clone(),
        points,
        knee,
    }
}

/// A named headline scenario (million-subscriber broadcast, 100k
/// conference) with its full configuration and measured point.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Stable scenario name.
    pub name: String,
    /// The configuration it ran with.
    pub config: FrontierConfig,
    /// The measurement.
    pub point: FrontierPoint,
}

/// The million-subscriber broadcast: one publisher, one topic, the
/// fan-out distributed across all shards by the forward ring —
/// subscribers live in multicast bundles (the paper's relay tier), with
/// unbundled spot receivers proving exact delivery.
pub fn million_broadcast() -> ScenarioResult {
    let mut config = FrontierConfig::new(Media::Video, 8, 1_000_000, 1_000_000);
    config.bundle = 1_000;
    config.packets = 20;
    config.bundles_per_host = 1;
    config.recv_cpu = SimDuration::from_nanos(40);
    config.spot_clients = 3;
    let point = run_point(&config);
    ScenarioResult {
        name: "broadcast_1m".to_owned(),
        config,
        point,
    }
}

/// The ≥100k-client interactive conference: 2000 audio sessions of 50
/// on a 16-shard cluster, one publisher each, spread across shards by
/// topic hash, session starts staggered the way real conferences
/// arrive. 125 sessions per shard × 50 pps × ~74 µs per publish keeps
/// every shard under half CPU utilization — comfortably inside the
/// interactive quality bound, which is the point of the scenario.
pub fn conference_100k() -> ScenarioResult {
    let mut config = FrontierConfig::new(Media::Audio, 16, 100_000, 50);
    config.bundle = 50;
    config.packets = 12;
    config.bundles_per_host = 4;
    config.recv_cpu = SimDuration::from_micros(1);
    config.stagger = SimDuration::from_micros(1_618);
    config.spot_clients = 2;
    let point = run_point(&config);
    ScenarioResult {
        name: "conference_100k".to_owned(),
        config,
        point,
    }
}

/// Measures one federation point: the same conference load as
/// [`run_point`], but spread across a full-mesh
/// [`ClusterSimNet`] of `nodes` gateway nodes instead of the shards of
/// one process. Clients and publishers home round-robin to zone
/// gateways (zone `z` → node `z % nodes`), so most deliveries cross at
/// least one inter-node link — the federation counterpart of the
/// sharded sweeps, holding aggregate NIC constant while adding nodes.
pub fn run_federation_point(config: &FrontierConfig, nodes: usize) -> FrontierPoint {
    assert!(nodes > 0, "need at least one node");
    assert!(config.fanout > 0, "need a positive session size");
    assert!(config.bundle > 0, "need a positive bundle weight");
    let mut sim = Simulation::new(config.seed);
    let net = ClusterSimNet::build(
        &mut sim,
        &ClusterSimConfig {
            latency: LatencyMap::full_mesh(nodes, 2),
            cost: config.cost,
            node_nic: Bandwidth::from_bps(config.total_nic.bps() / nodes as u64),
            queue_bytes: 64 * 1024 * 1024,
        },
    );
    sim.set_default_latency(config.lan_latency);

    let sessions = config.clients.div_ceil(config.fanout).max(1);
    let mut next_client = 1_000u64;
    let mut next_zone = 0usize;
    let mut bundles = Vec::new();
    let pools: Vec<Arc<Histogram>> = (0..nodes).map(|_| Arc::new(Histogram::new())).collect();

    let mut bundle_host = None;
    let mut bundles_on_host = 0u64;
    let mut remaining = config.clients;
    for session in 0..sessions {
        let session_size = config.fanout.min(remaining);
        remaining -= session_size;
        let topic = Topic::parse(&format!("s{session}/av")).expect("static session topic");
        let filter = TopicFilter::exact(&topic);
        let mut left = session_size;
        while left > 0 {
            let weight = config.bundle.min(left);
            left -= weight;
            if bundles_on_host == 0 {
                bundle_host = Some(sim.add_host(
                    &format!("zone-seg-{}", bundles.len() / config.bundles_per_host as usize),
                    NicConfig::default(),
                ));
            }
            let host = bundle_host.expect("host created above");
            bundles_on_host = (bundles_on_host + 1) % config.bundles_per_host;
            let client = ClientId::from_raw(next_client);
            next_client += 1;
            let zone = next_zone;
            next_zone += 1;
            let home = net.home_node(zone);
            let process = sim.add_typed_process(
                host,
                ClientBundle::new(
                    net.home_process(zone),
                    client,
                    filter.clone(),
                    weight,
                    config.recv_cpu,
                    Arc::clone(&pools[home]),
                ),
            );
            bundles.push((process, weight));
        }
    }

    let spot_topic = Topic::parse("s0/av").expect("static session topic");
    let mut spot_ids = Vec::new();
    if config.spot_clients > 0 {
        let spot_host = sim.add_host("spot", NicConfig::default());
        let pt = match config.media {
            Media::Audio => payload_type::PCMU,
            Media::Video => payload_type::H263,
        };
        for _ in 0..config.spot_clients {
            let client = ClientId::from_raw(next_client);
            next_client += 1;
            let zone = next_zone;
            next_zone += 1;
            spot_ids.push(sim.add_typed_process(
                spot_host,
                RtpReceiver::new(
                    net.home_process(zone),
                    client,
                    TopicFilter::exact(&spot_topic),
                    pt,
                    config.recv_cpu,
                ),
            ));
        }
    }

    // One publisher per session, entering at its own zone gateway —
    // where a federation client would publish — not at some owner node.
    let mut sender_host = None;
    for session in 0..sessions {
        if session % config.publishers_per_host == 0 {
            sender_host = Some(sim.add_host(
                &format!("zone-senders-{}", session / config.publishers_per_host),
                NicConfig::default(),
            ));
        }
        let host = sender_host.expect("host created above");
        let topic = Topic::parse(&format!("s{session}/av")).expect("static session topic");
        let mut publisher_config = PublisherConfig::new(
            net.home_process(session as usize),
            ClientId::from_raw(next_client),
            topic,
        );
        next_client += 1;
        publisher_config.start_delay = config.start_delay + config.stagger_offset(session);
        publisher_config.max_packets = config.packets;
        match config.media {
            Media::Audio => {
                let source = AudioSource::new(AudioCodec::Pcmu, 0xA0D10 + session as u32);
                sim.add_typed_process(host, AudioPublisher::new(publisher_config, source));
            }
            Media::Video => {
                let source = VideoSource::new(
                    VideoSourceConfig::default(),
                    0x71DE0 + session as u32,
                    DetRng::new(config.seed ^ (0xFEED + session)),
                );
                sim.add_typed_process(host, VideoPublisher::new(publisher_config, source));
            }
        }
    }

    if config.workers > 1 {
        sim.run_parallel_until(config.deadline(), config.workers);
    } else {
        sim.run_until(config.deadline());
    }

    let mut expected = 0u64;
    let mut delivered = 0u64;
    for (process, weight) in &bundles {
        let bundle = sim
            .process_ref::<ClientBundle>(*process)
            .expect("bundle process");
        expected += weight * config.packets;
        delivered += weight * bundle.received().min(config.packets);
    }
    let spot_expected = config.spot_clients * config.packets;
    let mut spot_delivered = 0u64;
    for id in &spot_ids {
        spot_delivered += sim
            .process_ref::<RtpReceiver>(*id)
            .expect("spot receiver")
            .stats()
            .received();
    }

    let shard_delay: Vec<HistogramSnapshot> = pools.iter().map(|p| p.snapshot()).collect();
    let merged = HistogramSnapshot::merge_all(&shard_delay);
    let mean_delay_ms = merged.mean() / 1e6;
    let p99_delay_ms = merged.quantile(0.99).unwrap_or(0) as f64 / 1e6;
    let loss = if expected == 0 {
        0.0
    } else {
        1.0 - delivered as f64 / expected as f64
    };
    let good = p99_delay_ms < GOOD_P99_DELAY_MS && loss < GOOD_LOSS && delivered > 0;
    FrontierPoint {
        clients: config.clients,
        shards: nodes,
        fanout: config.fanout,
        mean_delay_ms,
        p99_delay_ms,
        loss,
        expected,
        delivered,
        spot_expected,
        spot_delivered,
        good,
        shard_delay,
    }
}

/// The federation point in the frontier report: a reduced-scale audio
/// conference across a 3-node full-mesh federation, with spot
/// receivers proving exact cross-gateway delivery.
pub fn federation_point() -> ScenarioResult {
    let nodes = 3usize;
    let mut config = FrontierConfig::reduced(Media::Audio, nodes, 120, 10);
    config.packets = 60;
    config.spot_clients = 2;
    let point = run_federation_point(&config, nodes);
    ScenarioResult {
        name: "federation_audio_3node".to_owned(),
        config,
        point,
    }
}

/// A full frontier report: sweeps plus headline scenarios, renderable
/// as the `BENCH_capacity.json` artifact.
#[derive(Debug, Clone)]
pub struct FrontierReport {
    /// Report mode: `"reduced"` (CI), `"full"`, or `"mini"` (tests).
    pub mode: String,
    /// The seed every measurement used.
    pub seed: u64,
    /// Sweep results, in specification order.
    pub sweeps: Vec<SweepResult>,
    /// Headline scenarios, in run order.
    pub scenarios: Vec<ScenarioResult>,
}

fn media_name(media: Media) -> &'static str {
    match media {
        Media::Audio => "audio",
        Media::Video => "video",
    }
}

/// The reduced sweep set CI runs: audio (CPU-bound — the knee must
/// climb with shards) and video (NIC-bound — it must not) at 1/2/4
/// shards, plus a fan-out axis at 4 shards.
pub fn reduced_sweep_specs() -> Vec<SweepSpec> {
    let audio_ladder = vec![40, 80, 120, 180, 240, 320, 400, 480, 560];
    let video_ladder = vec![10, 20, 30, 40, 50, 60, 80];
    let mut specs = Vec::new();
    for shards in [1usize, 2, 4] {
        specs.push(SweepSpec {
            media: Media::Audio,
            shards,
            fanout: 10,
            ladder: audio_ladder.clone(),
        });
    }
    for shards in [1usize, 2, 4] {
        specs.push(SweepSpec {
            media: Media::Video,
            shards,
            fanout: 10,
            ladder: video_ladder.clone(),
        });
    }
    // The fan-out axis: bigger sessions batch better (the cost model's
    // per-send discount) but hash fewer topics across the shards.
    for fanout in [5u64, 40] {
        specs.push(SweepSpec {
            media: Media::Audio,
            shards: 4,
            fanout,
            ladder: audio_ladder.clone(),
        });
    }
    specs
}

/// Runs the reduced report: the CI sweep set plus both headline
/// scenarios. Minutes of virtual time, seconds of wall clock in
/// release mode.
pub fn reduced_report() -> FrontierReport {
    reduced_report_with_workers(1)
}

/// [`reduced_report`] with every sweep point run on `workers` engine
/// threads. The engine is bit-deterministic, so the report — knees,
/// histograms, JSON — is byte-identical to the sequential one; only
/// wall clock changes. The headline scenarios stay sequential (they
/// are bundled and cheap).
pub fn reduced_report_with_workers(workers: usize) -> FrontierReport {
    let sweeps = reduced_sweep_specs()
        .iter()
        .map(|spec| {
            run_sweep(spec, |spec, clients| {
                let mut config =
                    FrontierConfig::reduced(spec.media, spec.shards, clients, spec.fanout);
                config.workers = workers;
                config
            })
        })
        .collect();
    FrontierReport {
        mode: "reduced".to_owned(),
        seed: 77,
        sweeps,
        scenarios: vec![million_broadcast(), conference_100k(), federation_point()],
    }
}

/// Wall-clock comparison of one frontier point on the sequential vs
/// the parallel engine (see [`crate::frontier`] and `DESIGN.md` §14).
#[derive(Debug, Clone)]
pub struct SpeedupProbe {
    /// Worker threads the parallel run used.
    pub workers: usize,
    /// Sequential wall clock (ms).
    pub serial_ms: f64,
    /// Parallel wall clock (ms).
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
    /// Whether the two runs produced identical measurements — they
    /// must; anything else is an engine determinism bug.
    pub identical: bool,
}

/// Measures parallel-engine speedup on a heavyweight reduced 4-shard
/// audio point (4× the CI sweep's top rung, where per-event CPU
/// dominates). The LAN latency is raised to 5 ms so the conservative
/// engine's lookahead window carries thousands of events per
/// synchronization round and the two barriers per round amortize away
/// (see `DESIGN.md` §14). Runs the identical config sequentially and
/// on `workers` threads, wall-clocks both, and cross-checks every
/// reported number.
pub fn parallel_speedup_probe(workers: usize) -> SpeedupProbe {
    let mut config = FrontierConfig::reduced(Media::Audio, 4, 2240, 10);
    config.lan_latency = SimDuration::from_millis(5);
    let t0 = monotonic_now();
    let serial = run_point(&config);
    let t1 = monotonic_now();
    config.workers = workers;
    let t2 = monotonic_now();
    let parallel = run_point(&config);
    let t3 = monotonic_now();
    let serial_ms = (t1 - t0).as_millis_f64();
    let parallel_ms = (t3 - t2).as_millis_f64();
    let identical = serial.delivered == parallel.delivered
        && serial.expected == parallel.expected
        && serial.spot_delivered == parallel.spot_delivered
        && serial.shard_delay == parallel.shard_delay;
    SpeedupProbe {
        workers,
        serial_ms,
        parallel_ms,
        speedup: if parallel_ms > 0.0 {
            serial_ms / parallel_ms
        } else {
            0.0
        },
        identical,
    }
}

/// A miniature report for debug-mode tests: two tiny audio sweeps and a
/// bundled broadcast scenario, exercising every JSON field in seconds.
pub fn mini_report() -> FrontierReport {
    let specs = [
        SweepSpec {
            media: Media::Audio,
            shards: 1,
            fanout: 5,
            ladder: vec![10, 20, 40],
        },
        SweepSpec {
            media: Media::Audio,
            shards: 2,
            fanout: 5,
            ladder: vec![10, 20, 40],
        },
    ];
    let sweeps = specs
        .iter()
        .map(|spec| {
            run_sweep(spec, |spec, clients| {
                let mut config =
                    FrontierConfig::reduced(spec.media, spec.shards, clients, spec.fanout);
                config.packets = 40;
                config
            })
        })
        .collect();
    let mut scenario_config = FrontierConfig::new(Media::Video, 2, 5_000, 5_000);
    scenario_config.bundle = 100;
    scenario_config.packets = 15;
    scenario_config.bundles_per_host = 4;
    scenario_config.recv_cpu = SimDuration::from_nanos(40);
    scenario_config.spot_clients = 2;
    let point = run_point(&scenario_config);
    FrontierReport {
        mode: "mini".to_owned(),
        seed: 77,
        sweeps,
        scenarios: vec![ScenarioResult {
            name: "broadcast_mini".to_owned(),
            config: scenario_config,
            point,
        }],
    }
}

fn render_point(point: &FrontierPoint, out: &mut String, indent: &str) {
    out.push_str(&format!(
        "{indent}{{\"clients\": {}, \"mean_delay_ms\": {:.3}, \"p99_delay_ms\": {:.3}, \
         \"loss\": {:.6}, \"delivered\": {}, \"expected\": {}, \"good\": {}}}",
        point.clients,
        point.mean_delay_ms,
        point.p99_delay_ms,
        point.loss,
        point.delivered,
        point.expected,
        point.good
    ));
}

impl FrontierReport {
    /// Renders the stable `BENCH_capacity.json` document: fixed key
    /// order, fixed float precision, newline-terminated — byte-identical
    /// across runs at the same seed and configuration.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"mmcs.capacity.v1\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"quality\": {{\"p99_delay_ms\": {GOOD_P99_DELAY_MS:.3}, \"max_loss\": {GOOD_LOSS:.6}}},\n"
        ));
        out.push_str("  \"sweeps\": [\n");
        for (i, sweep) in self.sweeps.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"key\": \"{}\",\n", sweep.spec.key()));
            out.push_str(&format!(
                "      \"media\": \"{}\",\n",
                media_name(sweep.spec.media)
            ));
            out.push_str(&format!("      \"shards\": {},\n", sweep.spec.shards));
            out.push_str(&format!("      \"fanout\": {},\n", sweep.spec.fanout));
            match sweep.knee {
                Some(knee) => out.push_str(&format!("      \"knee\": {knee},\n")),
                None => out.push_str("      \"knee\": null,\n"),
            }
            out.push_str("      \"points\": [\n");
            for (j, point) in sweep.points.iter().enumerate() {
                render_point(point, &mut out, "        ");
                if j + 1 < sweep.points.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str("      ]\n");
            out.push_str("    }");
            if i + 1 < self.sweeps.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"scenarios\": [\n");
        for (i, scenario) in self.scenarios.iter().enumerate() {
            let c = &scenario.config;
            let p = &scenario.point;
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", scenario.name));
            out.push_str(&format!(
                "      \"media\": \"{}\",\n",
                media_name(c.media)
            ));
            out.push_str(&format!("      \"clients\": {},\n", c.clients));
            out.push_str(&format!("      \"shards\": {},\n", c.shards));
            out.push_str(&format!("      \"fanout\": {},\n", c.fanout));
            out.push_str(&format!("      \"bundle\": {},\n", c.bundle));
            out.push_str(&format!("      \"packets\": {},\n", c.packets));
            out.push_str(&format!(
                "      \"mean_delay_ms\": {:.3},\n      \"p99_delay_ms\": {:.3},\n      \
                 \"loss\": {:.6},\n      \"delivered\": {},\n      \"expected\": {},\n",
                p.mean_delay_ms, p.p99_delay_ms, p.loss, p.delivered, p.expected
            ));
            out.push_str(&format!(
                "      \"spot_delivered\": {},\n      \"spot_expected\": {},\n",
                p.spot_delivered, p.spot_expected
            ));
            out.push_str(&format!("      \"good\": {}\n", p.good));
            out.push_str("    }");
            if i + 1 < self.scenarios.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// The knees, keyed by sweep key, in sweep order.
    pub fn knee_summary(&self) -> Vec<(String, Option<u64>)> {
        self.sweeps
            .iter()
            .map(|s| (s.spec.key(), s.knee))
            .collect()
    }
}

/// Compares a freshly-measured report against a committed baseline
/// document (parsed `BENCH_capacity.json`). Returns regression messages
/// — empty means the frontier held.
///
/// Checks, per baseline sweep key: the sweep still exists, and its knee
/// is at least [`KNEE_TOLERANCE_NUM`]/[`KNEE_TOLERANCE_DEN`] of the
/// baseline knee (a knee that *improves* never fails). Per baseline
/// scenario name: the scenario still exists, stays inside the quality
/// bound, and its spot checks are exact.
pub fn compare_to_baseline(current: &FrontierReport, baseline: &Json) -> Vec<String> {
    let mut regressions = Vec::new();
    let empty = Vec::new();
    let baseline_sweeps = baseline
        .member("sweeps")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    for base in baseline_sweeps {
        let Some(key) = base.member("key").and_then(Json::as_str) else {
            regressions.push("baseline sweep without a key".to_owned());
            continue;
        };
        let Some(sweep) = current.sweeps.iter().find(|s| s.spec.key() == key) else {
            regressions.push(format!("sweep {key} missing from current report"));
            continue;
        };
        let base_knee = base.member("knee").and_then(Json::as_u64);
        match (base_knee, sweep.knee) {
            (Some(base_knee), Some(knee)) => {
                if knee * KNEE_TOLERANCE_DEN < base_knee * KNEE_TOLERANCE_NUM {
                    regressions.push(format!(
                        "sweep {key}: knee regressed {base_knee} -> {knee} \
                         (tolerance {KNEE_TOLERANCE_NUM}/{KNEE_TOLERANCE_DEN})"
                    ));
                }
            }
            (Some(base_knee), None) => {
                regressions.push(format!("sweep {key}: knee vanished (baseline {base_knee})"));
            }
            (None, _) => {}
        }
    }
    let baseline_scenarios = baseline
        .member("scenarios")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    for base in baseline_scenarios {
        let Some(name) = base.member("name").and_then(Json::as_str) else {
            regressions.push("baseline scenario without a name".to_owned());
            continue;
        };
        let Some(scenario) = current.scenarios.iter().find(|s| s.name == name) else {
            regressions.push(format!("scenario {name} missing from current report"));
            continue;
        };
        if !scenario.point.good {
            regressions.push(format!(
                "scenario {name}: outside quality bound (p99 {:.3} ms, loss {:.6})",
                scenario.point.p99_delay_ms, scenario.point.loss
            ));
        }
        if !scenario.point.spot_exact() {
            regressions.push(format!(
                "scenario {name}: spot delivery {}/{}",
                scenario.point.spot_delivered, scenario.point.spot_expected
            ));
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(media: Media, shards: usize, clients: u64) -> FrontierConfig {
        let mut config = FrontierConfig::reduced(media, shards, clients, 5);
        config.packets = 30;
        config
    }

    #[test]
    fn healthy_point_is_good_and_lossless() {
        let point = run_point(&tiny(Media::Audio, 2, 20));
        assert_eq!(point.delivered, point.expected, "{point:?}");
        assert!(point.good, "{point:?}");
        assert!(point.p99_delay_ms > 0.0 && point.p99_delay_ms < GOOD_P99_DELAY_MS);
        // Delay samples landed in per-shard pools, not one global pot.
        assert_eq!(point.shard_delay.len(), 2);
        let pooled: u64 = point.shard_delay.iter().map(HistogramSnapshot::count).sum();
        assert_eq!(pooled, point.expected);
    }

    #[test]
    fn overloaded_point_goes_bad() {
        // 10× the reduced audio knee on one shard: p99 or loss must
        // blow through the bound.
        let point = run_point(&tiny(Media::Audio, 1, 1200));
        assert!(!point.good, "{point:?}");
    }

    #[test]
    fn bundled_point_matches_unbundled_expectations() {
        // Bundling changes the simulation cost, not the accounting:
        // expected client-deliveries are identical.
        let unbundled = run_point(&tiny(Media::Audio, 2, 40));
        let mut bundled_config = tiny(Media::Audio, 2, 40);
        bundled_config.bundle = 5;
        let bundled = run_point(&bundled_config);
        assert_eq!(bundled.expected, unbundled.expected);
        assert_eq!(bundled.delivered, bundled.expected, "{bundled:?}");
    }

    #[test]
    fn federation_point_delivers_exactly_across_gateways() {
        let mut config = tiny(Media::Audio, 3, 30);
        config.packets = 20;
        config.spot_clients = 2;
        let point = run_federation_point(&config, 3);
        assert_eq!(point.delivered, point.expected, "{point:?}");
        assert!(point.spot_exact(), "{point:?}");
        assert!(point.good, "{point:?}");
        // Delay samples pooled per home node, and several nodes were hit.
        assert_eq!(point.shard_delay.len(), 3);
        let populated = point
            .shard_delay
            .iter()
            .filter(|s| s.count() > 0)
            .count();
        assert!(populated >= 2, "load spread across gateways: {point:?}");
    }

    #[test]
    fn sweep_knee_uses_prefix_semantics() {
        let spec = SweepSpec {
            media: Media::Audio,
            shards: 1,
            fanout: 5,
            ladder: vec![10, 20],
        };
        let sweep = run_sweep(&spec, |spec, clients| {
            let mut c = tiny(spec.media, spec.shards, clients);
            c.packets = 20;
            c
        });
        assert_eq!(sweep.points.len(), 2);
        assert_eq!(sweep.knee, Some(20), "{:?}", sweep.points);
        assert_eq!(spec.key(), "audio/shards=1/fanout=5");
    }

    #[test]
    fn report_json_parses_and_baseline_compare_accepts_itself() {
        let mut report = mini_report();
        report.sweeps.truncate(1);
        report.sweeps[0].points.truncate(2);
        let json = report.render_json();
        let parsed = Json::parse(&json).expect("own JSON parses");
        assert_eq!(
            parsed.member("schema").and_then(Json::as_str),
            Some("mmcs.capacity.v1")
        );
        // A report never regresses against itself.
        assert_eq!(compare_to_baseline(&report, &parsed), Vec::<String>::new());
        // A doubled baseline knee is a regression.
        let mut inflated = json.clone();
        if let Some(knee) = report.sweeps[0].knee {
            inflated = inflated.replace(
                &format!("\"knee\": {knee}"),
                &format!("\"knee\": {}", knee * 10),
            );
        }
        let inflated = Json::parse(&inflated).unwrap();
        assert!(!compare_to_baseline(&report, &inflated).is_empty());
    }
}
