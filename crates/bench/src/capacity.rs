//! Capacity claims C1/C2: how many clients one broker sustains.
//!
//! The paper (§3.2): "one broker can support more than a thousand audio
//! clients or more than 400 hundred video clients at one time providing a
//! very good quality." We sweep the client count and report average
//! delay, jitter and loss, declaring a point "good" when delay stays
//! under 100 ms and loss under 2 % — the usual interactive-quality bar.
//!
//! Audio clients are CPU-bound on the broker (small packets, high send
//! rate); video clients are NIC-bound (254 Mbps at 400 clients on the
//! ~310 Mbps relay NIC), so the two knees fall in different places —
//! just above 1000 and just above 400 with the calibrated model.

use mmcs_broker::batch::CostModel;
use mmcs_broker::simdrv::{
    AudioPublisher, BrokerProcess, PublisherConfig, RtpReceiver, VideoPublisher,
};
use mmcs_broker::topic::{Topic, TopicFilter};
use mmcs_rtp::packet::payload_type;
use mmcs_rtp::source::{AudioCodec, AudioSource, VideoSource, VideoSourceConfig};
use mmcs_sim::net::NicConfig;
use mmcs_sim::Simulation;
use mmcs_util::id::{BrokerId, ClientId};
use mmcs_util::rate::Bandwidth;
use mmcs_util::rng::DetRng;
use mmcs_util::time::{SimDuration, SimTime};

/// Quality bar: mean delay below this is "good".
pub const GOOD_DELAY_MS: f64 = 100.0;
/// Quality bar: loss below this fraction is "good".
pub const GOOD_LOSS: f64 = 0.02;

/// The media type being swept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Media {
    /// 64 Kbps PCMU audio (50 packets/s).
    Audio,
    /// 600 Kbps H.263-style video (~75 packets/s).
    Video,
}

/// Parameters of one capacity measurement.
#[derive(Debug, Clone)]
pub struct CapacityConfig {
    /// RNG seed.
    pub seed: u64,
    /// Media type.
    pub media: Media,
    /// Number of subscribing clients.
    pub clients: usize,
    /// Clients per simulated client machine (limits receive-side CPU
    /// interference; the paper spread clients over lab machines too).
    pub clients_per_host: usize,
    /// Media duration to simulate.
    pub duration: SimDuration,
    /// Broker NIC capacity.
    pub broker_nic: Bandwidth,
    /// Broker cost model.
    pub broker_cost: CostModel,
}

impl CapacityConfig {
    /// The paper-scale configuration for a given media and client count.
    pub fn new(media: Media, clients: usize) -> Self {
        Self {
            seed: 77,
            media,
            clients,
            clients_per_host: 50,
            duration: SimDuration::from_secs(10),
            broker_nic: Bandwidth::from_mbps(310),
            broker_cost: CostModel::narada(),
        }
    }
}

/// One point of the capacity sweep.
#[derive(Debug, Clone)]
pub struct CapacityPoint {
    /// Client count at this point.
    pub clients: usize,
    /// Mean one-way delay across clients (ms).
    pub avg_delay_ms: f64,
    /// 95th-percentile of per-client mean delay (ms).
    pub p95_delay_ms: f64,
    /// Mean smoothed jitter (ms).
    pub avg_jitter_ms: f64,
    /// Mean loss fraction.
    pub loss: f64,
    /// Whether this point meets the quality bar.
    pub good: bool,
}

/// Measures one point of the capacity curve.
pub fn run_point(config: &CapacityConfig) -> CapacityPoint {
    let mut sim = Simulation::new(config.seed);
    let sender_host = sim.add_host("sender", NicConfig::default());
    let broker_host = sim.add_host(
        "broker",
        NicConfig {
            bandwidth: config.broker_nic,
            queue_bytes: 64 * 1024 * 1024,
            ..NicConfig::default()
        },
    );
    sim.set_default_latency(SimDuration::from_micros(200));

    let broker = sim.add_typed_process(
        broker_host,
        BrokerProcess::new(BrokerId::from_raw(1), config.broker_cost),
    );
    let topic = Topic::parse("globalmmcs/capacity/av").expect("static topic");
    let filter = TopicFilter::exact(&topic);

    let mut receiver_ids = Vec::with_capacity(config.clients);
    let mut current_host = None;
    for i in 0..config.clients {
        if i % config.clients_per_host == 0 {
            current_host = Some(sim.add_host(
                &format!("clients-{}", i / config.clients_per_host),
                NicConfig::default(),
            ));
        }
        let host = current_host.expect("host created above");
        let pt = match config.media {
            Media::Audio => payload_type::PCMU,
            Media::Video => payload_type::H263,
        };
        let receiver = RtpReceiver::new(
            broker,
            ClientId::from_raw(1000 + i as u64),
            filter.clone(),
            pt,
            SimDuration::from_micros(15),
        );
        receiver_ids.push(sim.add_typed_process(host, receiver));
    }

    let mut publisher_config = PublisherConfig::new(broker, ClientId::from_raw(1), topic);
    publisher_config.start_delay = SimDuration::from_millis(200);
    match config.media {
        Media::Audio => {
            let source = AudioSource::new(AudioCodec::Pcmu, 0xA0D10);
            sim.add_typed_process(sender_host, AudioPublisher::new(publisher_config, source));
        }
        Media::Video => {
            let source = VideoSource::new(
                VideoSourceConfig::default(),
                0x71DE0,
                DetRng::new(config.seed ^ 0xFEED),
            );
            sim.add_typed_process(sender_host, VideoPublisher::new(publisher_config, source));
        }
    }

    let deadline =
        SimTime::ZERO + config.duration + SimDuration::from_millis(200) + SimDuration::from_secs(5);
    sim.run_until(deadline);

    let mut delays = Vec::with_capacity(receiver_ids.len());
    let mut jitter = 0.0;
    let mut loss = 0.0;
    let n = receiver_ids.len().max(1) as f64;
    for id in &receiver_ids {
        let stats = sim
            .process_ref::<RtpReceiver>(*id)
            .expect("receiver process")
            .stats();
        delays.push(stats.delay_ms().mean());
        jitter += stats.jitter_ms() / n;
        loss += stats.loss_fraction() / n;
    }
    delays.sort_by(|a, b| a.partial_cmp(b).expect("no NaN delays"));
    let avg_delay_ms = delays.iter().sum::<f64>() / n;
    let p95_delay_ms = delays
        .get(((delays.len() as f64 * 0.95) as usize).min(delays.len().saturating_sub(1)))
        .copied()
        .unwrap_or(0.0);
    CapacityPoint {
        clients: config.clients,
        avg_delay_ms,
        p95_delay_ms,
        avg_jitter_ms: jitter,
        loss,
        good: avg_delay_ms < GOOD_DELAY_MS && loss < GOOD_LOSS,
    }
}

/// Sweeps the capacity curve over the given client counts.
pub fn sweep(media: Media, counts: &[usize]) -> Vec<CapacityPoint> {
    sweep_with(&CapacityConfig::new(media, 0), counts)
}

/// Sweeps the capacity curve over `counts` with every other parameter
/// taken from `base` (its `clients` field is ignored). Points come back
/// in the same order as `counts`, one per entry.
pub fn sweep_with(base: &CapacityConfig, counts: &[usize]) -> Vec<CapacityPoint> {
    counts
        .iter()
        .map(|&clients| {
            run_point(&CapacityConfig {
                clients,
                ..base.clone()
            })
        })
        .collect()
}

/// The knee of a sweep: the last point of the *leading good prefix* —
/// the largest client count such that it and every smaller swept count
/// met the quality bar. `None` when the sweep is empty or its first
/// point already failed.
///
/// This is deliberately not "the largest good point anywhere": a curve
/// that recovers past an overload dip (timer aliasing, queue
/// resonance) has not demonstrated sustained capacity at the recovered
/// count, and a CI baseline tracking max-good-anywhere would flap on
/// exactly those dips. The prefix rule is monotone-stable: adding
/// points past the first failure never moves the knee.
pub fn knee(points: &[CapacityPoint]) -> Option<usize> {
    let goods: Vec<bool> = points.iter().map(|p| p.good).collect();
    knee_index(&goods).map(|i| points[i].clients)
}

/// Index form of [`knee`]: the last index of the leading `true` prefix
/// of `goods`, or `None` if `goods` is empty or starts with `false`.
pub fn knee_index(goods: &[bool]) -> Option<usize> {
    let prefix = goods.iter().take_while(|&&g| g).count();
    prefix.checked_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audio_quality_degrades_with_scale() {
        // Reduced scale: shrink broker NIC and duration but keep the
        // CPU-bound character by scaling nothing else.
        let mut small = CapacityConfig::new(Media::Audio, 50);
        small.duration = SimDuration::from_secs(3);
        let mut big = CapacityConfig::new(Media::Audio, 50);
        big.duration = SimDuration::from_secs(3);
        // Make the broker 40x slower so 50 clients behave like 2000.
        big.broker_cost.per_send = big.broker_cost.per_send * 40;
        let good = run_point(&small);
        let bad = run_point(&big);
        assert!(good.good, "small config should be good: {good:?}");
        assert!(
            bad.avg_delay_ms > good.avg_delay_ms * 3.0,
            "overload {bad:?} vs healthy {good:?}"
        );
    }

    #[test]
    fn video_is_nic_bound_at_reduced_scale() {
        // 40 clients on a 31 Mbps NIC mirrors 400 on 310 Mbps (util 0.88).
        let mut ok = CapacityConfig::new(Media::Video, 40);
        ok.broker_nic = Bandwidth::from_mbps(31);
        ok.duration = SimDuration::from_secs(4);
        // 60 clients exceed the NIC (util 1.3): delay and loss blow up.
        let mut over = CapacityConfig::new(Media::Video, 60);
        over.broker_nic = Bandwidth::from_mbps(31);
        over.duration = SimDuration::from_secs(4);
        let a = run_point(&ok);
        let b = run_point(&over);
        assert!(
            b.avg_delay_ms > a.avg_delay_ms * 2.0 || b.loss > GOOD_LOSS,
            "over {b:?} vs ok {a:?}"
        );
        assert!(!b.good);
    }

    use proptest::prelude::*;

    /// A sweep point with only the fields `knee` looks at.
    fn point(clients: usize, good: bool) -> CapacityPoint {
        CapacityPoint {
            clients,
            avg_delay_ms: if good { 10.0 } else { 500.0 },
            p95_delay_ms: if good { 12.0 } else { 700.0 },
            avg_jitter_ms: 1.0,
            loss: if good { 0.0 } else { 0.3 },
            good,
        }
    }

    proptest! {
        /// `knee_index` is exactly the last index of the leading good
        /// prefix, over arbitrary (including non-monotone) flags.
        #[test]
        fn knee_index_is_last_good_prefix_point(
            goods in prop::collection::vec(any::<bool>(), 0..40),
        ) {
            let expected = {
                let prefix = goods.iter().take_while(|&&g| g).count();
                if prefix == 0 { None } else { Some(prefix - 1) }
            };
            let got = knee_index(&goods);
            prop_assert_eq!(got, expected);
            // Every index up to the knee is good; the next one is bad.
            if let Some(k) = got {
                prop_assert!(goods[..=k].iter().all(|&g| g));
                if k + 1 < goods.len() {
                    prop_assert!(!goods[k + 1]);
                }
            } else {
                prop_assert!(goods.is_empty() || !goods[0]);
            }
        }

        /// `knee` agrees with `knee_index` on the points' flags and
        /// returns the client count at that index — never a count from
        /// a good point *after* a failure (non-monotone recovery).
        #[test]
        fn knee_matches_index_on_points(
            goods in prop::collection::vec(any::<bool>(), 0..40),
        ) {
            let points: Vec<CapacityPoint> = goods
                .iter()
                .enumerate()
                .map(|(i, &g)| point((i + 1) * 100, g))
                .collect();
            let expected = knee_index(&goods).map(|i| points[i].clients);
            prop_assert_eq!(knee(&points), expected);
        }
    }

    #[test]
    fn knee_edge_cases() {
        // Empty sweep, all-bad sweep, and a non-monotone recovery.
        assert_eq!(knee(&[]), None);
        assert_eq!(knee(&[point(100, false)]), None);
        assert_eq!(knee(&[point(100, false), point(200, true)]), None);
        // Recovery after a dip must NOT move the knee past the dip.
        let dip = [point(100, true), point(200, false), point(300, true)];
        assert_eq!(knee(&dip), Some(100));
        assert_eq!(knee(&[point(100, true), point(200, true)]), Some(200));
    }

    #[test]
    fn sweep_with_preserves_count_order_and_base_params() {
        // A tiny, fast sweep: one point per requested count, in order,
        // with the base configuration applied to every point.
        let mut base = CapacityConfig::new(Media::Audio, 0);
        base.duration = SimDuration::from_millis(600);
        base.clients_per_host = 2;
        let counts = [3usize, 1, 2];
        let points = sweep_with(&base, &counts);
        assert_eq!(points.len(), counts.len());
        for (point, &count) in points.iter().zip(&counts) {
            assert_eq!(point.clients, count);
        }
    }
}
