//! Reporting helpers for the bench targets: aligned tables and CSVs.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The workspace root. `cargo bench` runs bench binaries with the
/// *package* directory as CWD, so relative paths from the command line
/// (e.g. a committed baseline file) must be resolved against this, not
/// against the process CWD.
pub fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let manifest = env!("CARGO_MANIFEST_DIR");
    Path::new(manifest)
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

/// Directory the bench targets write CSV series into, resolved relative
/// to the workspace root when run via `cargo bench`.
pub fn results_dir() -> PathBuf {
    workspace_root().join("bench_results")
}

/// Writes `contents` into `bench_results/<name>`, creating the directory.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_results_file(name: &str, contents: &str) -> io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    fs::write(&path, contents)?;
    Ok(path)
}

/// Renders two aligned columns of per-index series as CSV
/// (`packet,<a_name>,<b_name>`), truncated to the shorter series.
pub fn two_series_csv(a_name: &str, a: &[f64], b_name: &str, b: &[f64]) -> String {
    let mut out = format!("packet,{a_name},{b_name}\n");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        out.push_str(&format!("{i},{x:.4},{y:.4}\n"));
    }
    out
}

/// Formats a row-oriented text table with a header, padding each column
/// to its widest cell.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    render(&header_cells, &widths, &mut out);
    let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        render(row, &widths, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_series_csv_truncates_to_shorter() {
        let csv = two_series_csv("a", &[1.0, 2.0, 3.0], "b", &[4.0, 5.0]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 rows
        assert_eq!(lines[0], "packet,a,b");
        assert!(lines[1].starts_with("0,1.0000,4.0000"));
    }

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["name", "value"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned in a 6-wide column.
        assert!(lines[2].starts_with("     x"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn results_dir_is_under_workspace_root() {
        let dir = results_dir();
        assert!(dir.ends_with("bench_results"));
        assert!(dir.parent().unwrap().join("Cargo.toml").exists());
    }
}
