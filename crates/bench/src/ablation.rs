//! Ablations A1 and A2 from `DESIGN.md`.
//!
//! * **A1 — transmission batching.** The paper attributes the broker's
//!   edge partly to "some optimizations on the message transmission". We
//!   rerun the Figure 3 broker side with `CostModel::batching = false`
//!   to show how much of the win that optimization carries.
//! * **A2 — distributed dissemination.** NaradaBrokering's pitch is a
//!   *distributed* collection of brokers: with B brokers in a star, each
//!   broker serves 1/B of the receivers and the fan-out NIC load splits
//!   B ways. We sweep B ∈ {1, 2, 4} on the 400-receiver video workload.

use mmcs_broker::simdrv::{BrokerProcess, PublisherConfig, RtpReceiver, VideoPublisher};
use mmcs_broker::topic::{Topic, TopicFilter};
use mmcs_rtp::packet::payload_type;
use mmcs_rtp::source::VideoSource;
use mmcs_sim::net::NicConfig;
use mmcs_sim::Simulation;
use mmcs_util::id::{BrokerId, ClientId};
use mmcs_util::rng::DetRng;
use mmcs_util::time::{SimDuration, SimTime};

use crate::fig3::{run_narada, Fig3Config, SystemResult};

/// A1: the Figure 3 broker run with batching on vs off.
pub fn run_batching_ablation(base: &Fig3Config) -> (SystemResult, SystemResult) {
    let batched = run_narada(base);
    let mut unbatched_config = base.clone();
    // Toggle only the optimization; keep whatever per-send scaling the
    // base config carries (the reduced CI config scales costs 10x).
    unbatched_config.broker_cost.batching = false;
    let unbatched = run_narada(&unbatched_config);
    (batched, unbatched)
}

/// Result of one broker-count point in ablation A2.
#[derive(Debug, Clone)]
pub struct DisseminationPoint {
    /// Brokers in the dissemination tree.
    pub brokers: usize,
    /// Mean one-way delay across all receivers (ms).
    pub avg_delay_ms: f64,
    /// Mean loss fraction across receivers.
    pub loss: f64,
}

/// A2: the video fan-out workload over a star of `brokers` brokers.
///
/// The publisher attaches to broker 0; receivers are spread evenly over
/// all brokers, each broker on its own machine.
///
/// # Panics
///
/// Panics if `brokers` is zero.
pub fn run_dissemination(config: &Fig3Config, brokers: usize) -> DisseminationPoint {
    assert!(brokers > 0, "need at least one broker");
    let mut sim = Simulation::new(config.seed);
    let sender_host = sim.add_host("sender-machine", NicConfig::default());
    sim.set_default_latency(config.lan_latency);

    let nic = NicConfig {
        bandwidth: config.relay_nic,
        queue_bytes: 64 * 1024 * 1024,
        ..NicConfig::default()
    };

    // Broker star: broker 0 is the hub (publisher's broker).
    let mut broker_procs = Vec::new();
    for b in 0..brokers {
        let host = sim.add_host(&format!("broker-machine-{b}"), nic);
        let process = sim.add_typed_process(
            host,
            BrokerProcess::new(BrokerId::from_raw(b as u64 + 1), config.broker_cost),
        );
        broker_procs.push(process);
    }
    for b in 1..brokers {
        let hub_id = BrokerId::from_raw(1);
        let leaf_id = BrokerId::from_raw(b as u64 + 1);
        let leaf_proc = broker_procs[b];
        let hub_proc = broker_procs[0];
        sim.process_mut::<BrokerProcess>(hub_proc)
            .expect("hub process")
            .add_peer(leaf_id, leaf_proc);
        sim.process_mut::<BrokerProcess>(leaf_proc)
            .expect("leaf process")
            .add_peer(hub_id, hub_proc);
    }

    let topic = Topic::parse("globalmmcs/session-1/video").expect("static topic");
    let filter = TopicFilter::exact(&topic);

    // Receivers: spread over brokers, 50 per client machine.
    let mut receiver_ids = Vec::new();
    let mut hosts_per_broker: Vec<Vec<mmcs_sim::net::HostId>> = vec![Vec::new(); brokers];
    for i in 0..config.receivers {
        let broker_index = i % brokers;
        let machine_index = (i / brokers) / 50;
        while hosts_per_broker[broker_index].len() <= machine_index {
            let n = hosts_per_broker[broker_index].len();
            hosts_per_broker[broker_index].push(sim.add_host(
                &format!("clients-{broker_index}-{n}"),
                NicConfig::default(),
            ));
        }
        let host = hosts_per_broker[broker_index][machine_index];
        let receiver = RtpReceiver::new(
            broker_procs[broker_index],
            ClientId::from_raw(1000 + i as u64),
            filter.clone(),
            payload_type::H263,
            config.recv_cpu,
        );
        receiver_ids.push(sim.add_typed_process(host, receiver));
    }

    let mut publisher_config =
        PublisherConfig::new(broker_procs[0], ClientId::from_raw(1), topic);
    publisher_config.max_packets = config.packets;
    let source = VideoSource::new(config.video, 0xABCD, DetRng::new(config.seed ^ 0x5EED));
    sim.add_typed_process(sender_host, VideoPublisher::new(publisher_config, source));

    let media_secs = config.packets as f64 * config.video.mtu_payload as f64
        / (config.video.bitrate_bps as f64 / 8.0);
    sim.run_until(SimTime::from_secs(media_secs as u64 + 20));

    let n = receiver_ids.len().max(1) as f64;
    let mut avg_delay = 0.0;
    let mut loss = 0.0;
    for id in &receiver_ids {
        let stats = sim
            .process_ref::<RtpReceiver>(*id)
            .expect("receiver process")
            .stats();
        avg_delay += stats.delay_ms().mean() / n;
        loss += stats.loss_fraction() / n;
    }
    DisseminationPoint {
        brokers,
        avg_delay_ms: avg_delay,
        loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmcs_util::rate::Bandwidth;

    fn reduced() -> Fig3Config {
        let mut config = Fig3Config::reduced();
        config.packets = 200;
        config
    }

    #[test]
    fn batching_off_hurts_delay() {
        let config = reduced();
        let (batched, unbatched) = run_batching_ablation(&config);
        assert!(
            unbatched.avg_delay_ms > batched.avg_delay_ms,
            "unbatched {} vs batched {}",
            unbatched.avg_delay_ms,
            batched.avg_delay_ms
        );
    }

    #[test]
    fn more_brokers_reduce_delay_under_load() {
        let mut config = reduced();
        // Saturate a single broker's NIC so distribution visibly helps.
        config.relay_nic = Bandwidth::from_mbps(26);
        let one = run_dissemination(&config, 1);
        let four = run_dissemination(&config, 4);
        assert!(
            four.avg_delay_ms < one.avg_delay_ms,
            "4 brokers {} vs 1 broker {}",
            four.avg_delay_ms,
            one.avg_delay_ms
        );
    }
}

/// Result of ablation A3: multicast relays on the client machines.
#[derive(Debug, Clone)]
pub struct MulticastPoint {
    /// Receivers per relay (one relay per client machine).
    pub receivers_per_relay: usize,
    /// Mean one-way delay across all receivers (ms).
    pub avg_delay_ms: f64,
    /// Mean per-receiver packet count.
    pub received: f64,
}

/// A3: the Figure 3 fan-out with NaradaBrokering's multicast transport —
/// the broker sends one copy per client *machine*; a relay on each
/// machine fans out locally. With 50 receivers per machine the broker's
/// NIC load drops 50×, which is why the paper lists multicast among the
/// broker's transports.
pub fn run_multicast(config: &Fig3Config, receivers_per_relay: usize) -> MulticastPoint {
    use mmcs_broker::simdrv::MulticastRelay;
    assert!(receivers_per_relay > 0, "need at least one receiver per relay");
    let mut sim = Simulation::new(config.seed);
    let sender_host = sim.add_host("sender-machine", NicConfig::default());
    let broker_host = sim.add_host(
        "broker-machine",
        NicConfig {
            bandwidth: config.relay_nic,
            queue_bytes: 64 * 1024 * 1024,
            ..NicConfig::default()
        },
    );
    sim.set_default_latency(config.lan_latency);

    let broker = sim.add_typed_process(
        broker_host,
        BrokerProcess::new(BrokerId::from_raw(1), config.broker_cost),
    );
    let topic = Topic::parse("globalmmcs/session-1/video").expect("static topic");
    let filter = TopicFilter::exact(&topic);

    // One relay per machine; receivers subscribe locally via the relay
    // (their own broker filter never matches anything).
    let unmatched = TopicFilter::parse("unused/topic").expect("static filter");
    let mut receiver_ids = Vec::new();
    let machines = config.receivers.div_ceil(receivers_per_relay);
    let mut placed = 0usize;
    for machine in 0..machines {
        let host = sim.add_host(&format!("segment-{machine}"), NicConfig::default());
        let relay = sim.add_typed_process(
            host,
            MulticastRelay::new(
                broker,
                ClientId::from_raw(10 + machine as u64),
                filter.clone(),
            ),
        );
        for _ in 0..receivers_per_relay.min(config.receivers - placed) {
            let receiver = RtpReceiver::new(
                broker,
                ClientId::from_raw(1000 + placed as u64),
                unmatched.clone(),
                payload_type::H263,
                config.recv_cpu,
            );
            let id = sim.add_typed_process(host, receiver);
            sim.process_mut::<MulticastRelay>(relay)
                .expect("relay process")
                .add_local_receiver(id);
            receiver_ids.push(id);
            placed += 1;
        }
    }

    let mut publisher_config =
        PublisherConfig::new(broker, ClientId::from_raw(1), topic);
    publisher_config.max_packets = config.packets;
    let source = VideoSource::new(config.video, 0xABCD, DetRng::new(config.seed ^ 0x5EED));
    sim.add_typed_process(sender_host, VideoPublisher::new(publisher_config, source));

    let media_secs = config.packets as f64 * config.video.mtu_payload as f64
        / (config.video.bitrate_bps as f64 / 8.0);
    sim.run_until(SimTime::from_secs(media_secs as u64 + 20));

    let n = receiver_ids.len().max(1) as f64;
    let mut avg_delay = 0.0;
    let mut received = 0.0;
    for id in &receiver_ids {
        let stats = sim
            .process_ref::<RtpReceiver>(*id)
            .expect("receiver process")
            .stats();
        avg_delay += stats.delay_ms().mean() / n;
        received += stats.received() as f64 / n;
    }
    MulticastPoint {
        receivers_per_relay,
        avg_delay_ms: avg_delay,
        received,
    }
}

#[cfg(test)]
mod mcast_tests {
    use super::*;
    use mmcs_util::rate::Bandwidth;

    #[test]
    fn multicast_slashes_delay_under_fanout_load() {
        let mut config = Fig3Config::reduced();
        config.packets = 200;
        // Saturating for unicast fan-out…
        config.relay_nic = Bandwidth::from_mbps(28);
        let unicast = run_dissemination(&config, 1);
        // …trivial when the broker sends one copy per 10-receiver segment.
        let multicast = run_multicast(&config, 10);
        assert!(multicast.received >= config.packets as f64 * 0.99);
        assert!(
            multicast.avg_delay_ms < unicast.avg_delay_ms / 2.0,
            "multicast {} vs unicast {}",
            multicast.avg_delay_ms,
            unicast.avg_delay_ms
        );
    }
}

/// Result of ablation A4: delivery-mode comparison at one group size.
#[derive(Debug, Clone)]
pub struct ModePoint {
    /// Number of receivers.
    pub group: usize,
    /// Mean delay via the broker (client-server mode), ms.
    pub client_server_ms: f64,
    /// Mean delay peer-to-peer (publisher sends N copies), ms.
    pub peer_to_peer_ms: f64,
}

mod modecmp {
    //! Minimal processes for the A4 mode comparison.

    use mmcs_rtp::packet::RtpPacket;
    use mmcs_rtp::recv::ReceiverStats;
    use mmcs_rtp::source::AudioSource;
    use mmcs_sim::{Context, Packet, Process, ProcessId};
    use mmcs_util::time::{SimDuration, SimTime};

    /// A raw audio packet with its send time (the P2P wire format).
    #[derive(Debug, Clone)]
    pub struct RawAudio {
        pub bytes: bytes::Bytes,
        pub sent_at: SimTime,
    }

    /// Publishes paced audio directly to every peer (JXTA-like mode).
    pub struct P2pAudioSender {
        pub peers: Vec<ProcessId>,
        pub source: AudioSource,
        pub max_packets: u64,
        pub sent: u64,
        /// Per-copy send cost at the publisher (it pays the fan-out).
        pub send_cpu: SimDuration,
    }

    impl Process for P2pAudioSender {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(100), 0);
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
            if self.sent >= self.max_packets {
                return;
            }
            let rtp = self.source.next_packet();
            let bytes = rtp.encode();
            for peer in &self.peers {
                ctx.spend_cpu(self.send_cpu);
                ctx.send(
                    *peer,
                    RawAudio {
                        bytes: bytes.clone(),
                        sent_at: ctx.now(),
                    },
                    bytes.len() + 28,
                );
            }
            self.sent += 1;
            ctx.set_timer(self.source.frame_interval(), 0);
        }
    }

    /// Receives raw audio and measures delay.
    pub struct P2pSink {
        pub stats: ReceiverStats,
        pub recv_cpu: SimDuration,
    }

    impl Process for P2pSink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
            let Some(raw) = packet.payload::<RawAudio>() else {
                return;
            };
            let arrival = ctx.now();
            if let Ok(rtp) = RtpPacket::decode(&raw.bytes) {
                self.stats.record(&rtp.header, raw.sent_at, arrival);
            }
            ctx.spend_cpu(self.recv_cpu);
        }
    }
}

/// A4: client-server vs peer-to-peer delivery for one audio talker and
/// `group` listeners. The publisher sits behind a 3 Mbps uplink
/// (2003 DSL); the broker has a datacenter NIC. P2P saves the broker
/// hop for small groups but saturates the publisher's uplink as the
/// group grows — the paper's "performance-functionality trade-off".
pub fn run_mode_comparison(group: usize, packets: u64, seed: u64) -> ModePoint {
    use mmcs_rtp::source::{AudioCodec, AudioSource};
    let uplink = NicConfig {
        bandwidth: mmcs_util::rate::Bandwidth::from_mbps(3),
        queue_bytes: 256 * 1024,
        ..NicConfig::default()
    };
    let wan = SimDuration::from_millis(5);

    // Client-server: publisher -> broker -> receivers.
    let cs = {
        let mut sim = Simulation::new(seed);
        let pub_host = sim.add_host("publisher", uplink);
        let broker_host = sim.add_host("broker", NicConfig::default());
        sim.set_default_latency(wan);
        let broker = sim.add_typed_process(
            broker_host,
            BrokerProcess::new(BrokerId::from_raw(1), mmcs_broker::batch::CostModel::narada()),
        );
        let topic = Topic::parse("group/audio").expect("static");
        let mut receivers = Vec::new();
        for i in 0..group {
            let host = sim.add_host(&format!("peer-{i}"), NicConfig::default());
            receivers.push(sim.add_typed_process(
                host,
                RtpReceiver::new(
                    broker,
                    ClientId::from_raw(100 + i as u64),
                    TopicFilter::exact(&topic),
                    payload_type::PCMU,
                    SimDuration::from_micros(10),
                ),
            ));
        }
        let mut config = PublisherConfig::new(broker, ClientId::from_raw(1), topic);
        config.max_packets = packets;
        sim.add_typed_process(
            pub_host,
            mmcs_broker::simdrv::AudioPublisher::new(
                config,
                AudioSource::new(AudioCodec::Pcmu, 1),
            ),
        );
        sim.run_until(SimTime::from_secs(packets / 50 + 10));
        let n = receivers.len().max(1) as f64;
        receivers
            .iter()
            .map(|id| {
                sim.process_ref::<RtpReceiver>(*id)
                    .expect("receiver")
                    .stats()
                    .delay_ms()
                    .mean()
            })
            .sum::<f64>()
            / n
    };

    // Peer-to-peer: publisher sends a copy to every peer itself.
    let p2p = {
        let mut sim = Simulation::new(seed);
        let pub_host = sim.add_host("publisher", uplink);
        sim.set_default_latency(wan);
        let mut peers = Vec::new();
        let mut sinks = Vec::new();
        for i in 0..group {
            let host = sim.add_host(&format!("peer-{i}"), NicConfig::default());
            let sink = sim.add_typed_process(
                host,
                modecmp::P2pSink {
                    stats: mmcs_rtp::recv::ReceiverStats::new(0, payload_type::PCMU),
                    recv_cpu: SimDuration::from_micros(10),
                },
            );
            peers.push(sink);
            sinks.push(sink);
        }
        sim.add_typed_process(
            pub_host,
            modecmp::P2pAudioSender {
                peers,
                source: AudioSource::new(AudioCodec::Pcmu, 1),
                max_packets: packets,
                sent: 0,
                send_cpu: SimDuration::from_micros(15),
            },
        );
        sim.run_until(SimTime::from_secs(packets / 50 + 10));
        let n = sinks.len().max(1) as f64;
        sinks
            .iter()
            .map(|id| {
                sim.process_ref::<modecmp::P2pSink>(*id)
                    .expect("sink")
                    .stats
                    .delay_ms()
                    .mean()
            })
            .sum::<f64>()
            / n
    };

    ModePoint {
        group,
        client_server_ms: cs,
        peer_to_peer_ms: p2p,
    }
}

#[cfg(test)]
mod mode_tests {
    use super::*;

    #[test]
    fn p2p_wins_small_groups_loses_large_ones() {
        let small = run_mode_comparison(3, 150, 9);
        assert!(
            small.peer_to_peer_ms < small.client_server_ms,
            "small group: p2p {:.2} should beat cs {:.2}",
            small.peer_to_peer_ms,
            small.client_server_ms
        );
        let large = run_mode_comparison(64, 150, 9);
        assert!(
            large.peer_to_peer_ms > large.client_server_ms,
            "large group: cs {:.2} should beat p2p {:.2}",
            large.client_server_ms,
            large.peer_to_peer_ms
        );
    }
}
