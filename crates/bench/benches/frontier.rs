//! The capacity frontier: clients × shards × fan-out on the sharded
//! broker, swept to the knee and written as `BENCH_capacity.json`.
//!
//! Modes (`MMCS_FRONTIER_MODE`):
//!
//! * `reduced` (default) — the CI sweep set: audio (CPU-bound, knee
//!   scales with shards) and video (NIC-bound, knee flat) at 1/2/4
//!   shards plus a fan-out axis, and both headline scenarios (the
//!   million-subscriber broadcast and the 100k-client conference).
//! * `mini` — the tiny configuration the determinism test runs.
//! * `full` — full-scale costs and the 10 Gbps cluster NIC (slow; not
//!   run in CI).
//!
//! If `MMCS_FRONTIER_BASELINE` names a baseline JSON file, the fresh
//! report is compared against it ([`frontier::compare_to_baseline`])
//! and the process exits 1 on any regression — this is the CI gate.
//!
//! `MMCS_FRONTIER_WORKERS=N` runs every reduced sweep point on the
//! parallel engine with N workers (bit-identical numbers, less wall
//! clock). `MMCS_FRONTIER_SPEEDUP=N` skips the sweeps and instead runs
//! the timed speedup probe ([`frontier::parallel_speedup_probe`]):
//! exits 1 if the parallel run is not faster than the sequential one
//! or if any reported number diverges.

use std::process::ExitCode;

use mmcs_bench::frontier::{
    self, reduced_sweep_specs, run_sweep, FrontierConfig, FrontierReport,
};
use mmcs_bench::json::Json;
use mmcs_bench::report;

fn full_report() -> FrontierReport {
    let sweeps = reduced_sweep_specs()
        .iter()
        .map(|spec| {
            let mut spec = spec.clone();
            // Full-scale knees land ~10× higher than reduced ones.
            for rung in &mut spec.ladder {
                *rung *= 10;
            }
            run_sweep(&spec, |spec, clients| {
                FrontierConfig::new(spec.media, spec.shards, clients, spec.fanout)
            })
        })
        .collect();
    FrontierReport {
        mode: "full".to_owned(),
        seed: 77,
        sweeps,
        scenarios: vec![frontier::million_broadcast(), frontier::conference_100k()],
    }
}

fn main() -> ExitCode {
    if let Ok(value) = std::env::var("MMCS_FRONTIER_SPEEDUP") {
        let Ok(workers) = value.parse::<usize>() else {
            eprintln!("frontier: MMCS_FRONTIER_SPEEDUP must be a worker count, got {value:?}");
            return ExitCode::FAILURE;
        };
        let probe = frontier::parallel_speedup_probe(workers);
        println!(
            "speedup probe: serial {:.0} ms, {} workers {:.0} ms, speedup {:.2}x, identical={}",
            probe.serial_ms, probe.workers, probe.parallel_ms, probe.speedup, probe.identical
        );
        if !probe.identical {
            eprintln!("frontier: parallel run DIVERGED from sequential results");
            return ExitCode::FAILURE;
        }
        if probe.parallel_ms >= probe.serial_ms {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            if cores < 2 {
                // A wall-clock win needs real cores; on a single-CPU
                // host the probe still proves determinism, so report
                // and pass rather than fail on physics.
                println!(
                    "frontier: single-CPU host ({cores} core) — speedup not gated, results identical"
                );
                return ExitCode::SUCCESS;
            }
            eprintln!(
                "frontier: parallel run ({:.0} ms) did not beat serial ({:.0} ms) on {cores} cores",
                probe.parallel_ms, probe.serial_ms
            );
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    let workers = std::env::var("MMCS_FRONTIER_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    let mode = std::env::var("MMCS_FRONTIER_MODE").unwrap_or_else(|_| "reduced".to_owned());
    eprintln!("frontier: running {mode} sweep set ({workers} engine worker(s))");
    let report = match mode.as_str() {
        "mini" => frontier::mini_report(),
        "full" => full_report(),
        "reduced" => frontier::reduced_report_with_workers(workers),
        other => {
            eprintln!("frontier: unknown MMCS_FRONTIER_MODE {other:?} (reduced|mini|full)");
            return ExitCode::FAILURE;
        }
    };

    for (key, knee) in report.knee_summary() {
        match knee {
            Some(knee) => println!("{key}: knee at {knee} clients"),
            None => println!("{key}: no good point"),
        }
    }
    for scenario in &report.scenarios {
        let p = &scenario.point;
        println!(
            "{}: {} clients, p99 {:.2} ms, loss {:.4}%, spot {}/{}, good={}",
            scenario.name,
            p.clients,
            p.p99_delay_ms,
            p.loss * 100.0,
            p.spot_delivered,
            p.spot_expected,
            p.good
        );
    }

    let json = report.render_json();
    match report::write_results_file("BENCH_capacity.json", &json) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(err) => {
            eprintln!("could not write BENCH_capacity.json: {err}");
            return ExitCode::FAILURE;
        }
    }

    if let Ok(baseline_path) = std::env::var("MMCS_FRONTIER_BASELINE") {
        if !baseline_path.is_empty() {
            // Relative paths are relative to the workspace root: cargo
            // runs bench binaries with CWD = crates/bench.
            let resolved = if std::path::Path::new(&baseline_path).is_absolute() {
                std::path::PathBuf::from(&baseline_path)
            } else {
                report::workspace_root().join(&baseline_path)
            };
            let contents = match std::fs::read_to_string(&resolved) {
                Ok(contents) => contents,
                Err(err) => {
                    eprintln!("frontier: cannot read baseline {baseline_path}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let baseline = match Json::parse(&contents) {
                Ok(baseline) => baseline,
                Err(err) => {
                    eprintln!("frontier: baseline {baseline_path} is not valid JSON: {err}");
                    return ExitCode::FAILURE;
                }
            };
            let regressions = frontier::compare_to_baseline(&report, &baseline);
            if regressions.is_empty() {
                println!("frontier: no regressions against {baseline_path}");
            } else {
                for regression in &regressions {
                    eprintln!("frontier: REGRESSION: {regression}");
                }
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
