//! `sharded_fanout`: publish throughput of the sharded multi-worker
//! runtime versus the single-loop threaded broker, at fan-out 100.
//!
//! One publisher sprays events round-robin across eight first-segment
//! topic families (so the sharded runtime spreads ownership across its
//! workers) while 100 subscribers each watch the full topic space. An
//! iteration publishes a fixed burst and then drains every subscriber
//! to the exact expected count, asserting per-topic sequence order on
//! the way — the measured number is end-to-end delivered events per
//! second with the ordering guarantee intact.
//!
//! The sharded win on a small host comes from the batched hand-off:
//! the single-loop broker performs one channel send per (event,
//! subscriber) pair, while a shard worker flushes one `Vec<Arc<Event>>`
//! per subscriber per drained ingress batch.

use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mmcs_broker::sharded::{ShardedBroker, ShardedClient};
use mmcs_broker::threaded::ThreadedBroker;
use mmcs_broker::topic::{Topic, TopicFilter};

const FANOUT: usize = 100;
const FAMILIES: usize = 8;
const EVENTS: u64 = 256;

fn family_topics() -> Vec<Topic> {
    (0..FAMILIES)
        .map(|f| Topic::parse(&format!("fam{f}/media")).unwrap())
        .collect()
}

/// Drains `expected` events from one subscriber, asserting per-topic
/// sequence monotonicity. The publisher sprays round-robin with a
/// globally increasing seq, and a burst is a multiple of `FAMILIES`,
/// so within one burst `seq % FAMILIES` identifies the topic and any
/// per-topic reordering shows up as a non-increasing step — an O(1),
/// allocation-free check that stays out of the measured hot path.
fn drain_ordered<F>(mut recv: F, expected: u64, last_seq: &mut [u64; FAMILIES])
where
    F: FnMut() -> Option<std::sync::Arc<mmcs_broker::event::Event>>,
{
    last_seq.fill(u64::MAX);
    let mut got = 0u64;
    while got < expected {
        let event = recv().expect("subscriber starved mid-burst");
        let family = (event.seq % FAMILIES as u64) as usize;
        let prev = last_seq[family];
        assert!(
            prev == u64::MAX || event.seq > prev,
            "per-topic order violated on family {family}"
        );
        last_seq[family] = event.seq;
        got += 1;
    }
}

/// Same contract as [`drain_ordered`] but through the sharded client's
/// batch-drain API: whole batches are moved out per channel receive,
/// with a blocking single-event receive only when nothing is buffered.
fn drain_ordered_batched(
    client: &ShardedClient,
    expected: u64,
    last_seq: &mut [u64; FAMILIES],
    buf: &mut Vec<std::sync::Arc<mmcs_broker::event::Event>>,
) {
    last_seq.fill(u64::MAX);
    let mut got = 0u64;
    while got < expected {
        buf.clear();
        if client.drain_into(buf) == 0 {
            let event = client
                .recv_timeout(Duration::from_secs(5))
                .expect("subscriber starved mid-burst");
            buf.push(event);
        }
        for event in buf.iter() {
            let family = (event.seq % FAMILIES as u64) as usize;
            let prev = last_seq[family];
            assert!(
                prev == u64::MAX || event.seq > prev,
                "per-topic order violated on family {family}"
            );
            last_seq[family] = event.seq;
        }
        got += buf.len() as u64;
    }
    assert_eq!(got, expected, "subscriber over-delivered");
}

fn bench_sharded_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_fanout");
    group.throughput(Throughput::Elements(EVENTS * FANOUT as u64));
    let topics = family_topics();

    // --- Baseline: the single-loop threaded broker.
    {
        let broker = ThreadedBroker::spawn();
        let subscribers: Vec<_> = (0..FANOUT)
            .map(|_| {
                let s = broker.attach();
                s.subscribe(TopicFilter::parse("#").unwrap());
                s
            })
            .collect();
        let publisher = broker.attach();
        // Settle the subscriptions before the first timed burst.
        publisher.publish(topics[0].clone(), Bytes::new());
        for s in &subscribers {
            assert!(s.recv_timeout(Duration::from_secs(5)).is_some());
        }
        let mut last_seq = [u64::MAX; FAMILIES];
        group.bench_function("threaded_fanout_100", |b| {
            b.iter(|| {
                for i in 0..EVENTS {
                    publisher.publish(topics[i as usize % FAMILIES].clone(), Bytes::new());
                }
                for s in &subscribers {
                    drain_ordered(
                        || s.recv_timeout(Duration::from_secs(5)),
                        EVENTS,
                        &mut last_seq,
                    );
                }
            })
        });
    }

    // --- The sharded runtime at 1, 2 and 4 worker shards.
    for shards in [1usize, 2, 4] {
        let broker = ShardedBroker::spawn(shards);
        let subscribers: Vec<_> = (0..FANOUT)
            .map(|_| {
                let s = broker.attach();
                s.subscribe(TopicFilter::parse("#").unwrap());
                s
            })
            .collect();
        let publisher = broker.attach();
        broker.quiesce();
        let mut last_seq = [u64::MAX; FAMILIES];
        let mut buf = Vec::with_capacity(EVENTS as usize);
        group.bench_function(format!("sharded{shards}_fanout_100"), |b| {
            b.iter(|| {
                for i in 0..EVENTS {
                    publisher.publish(topics[i as usize % FAMILIES].clone(), Bytes::new());
                }
                for s in &subscribers {
                    drain_ordered_batched(s, EVENTS, &mut last_seq, &mut buf);
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = sharded;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_sharded_fanout
}
criterion_main!(sharded);
