//! Criterion benchmarks for the flat wire format and the buffer pool:
//! encode into pooled vs freshly-allocated buffers, the zero-copy view
//! parse, owned decode, and the combined encode+read round trip the
//! ISSUE-6 acceptance criterion compares (pooled view path vs the old
//! clone-into-`BytesMut` + owned-decode path). The RTP group mirrors
//! the same shapes for `RtpPacket`/`WireRtp`.
//!
//! With `MMCS_BENCH_JSON=BENCH_wire.json` set, the criterion shim dumps
//! every line below as JSON for the CI artifact.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use bytes::{Bytes, BytesMut};
use mmcs_broker::event::{Event, EventClass};
use mmcs_broker::topic::Topic;
use mmcs_broker::wire;
use mmcs_rtp::packet::{RtpHeader, RtpPacket, WireRtp};
use mmcs_util::id::ClientId;
use mmcs_util::pool;

fn event_1k() -> Event {
    Event::new(
        Topic::parse("conf/42/video").unwrap(),
        ClientId::from_raw(7),
        123_456,
        EventClass::Rtp,
        Bytes::from(vec![0xAB; 1024]),
    )
}

/// The pre-wire hot path this PR replaces: clone the payload into a
/// fresh `BytesMut` frame, then materialize an owned event from it.
fn legacy_clone_roundtrip(event: &Event) -> Event {
    let mut frame = BytesMut::with_capacity(wire::encoded_len(event));
    wire::encode_into(event, &mut frame);
    wire::decode(&frame).unwrap()
}

fn bench_wire_event(c: &mut Criterion) {
    let event = event_1k();
    let frame = wire::encode(&event).freeze();
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Bytes(frame.len() as u64));

    group.bench_function("encode_1k_pooled", |b| {
        b.iter(|| {
            let mut buf = pool::acquire(wire::encoded_len(&event));
            wire::encode_into(black_box(&event), &mut buf);
            buf.len()
        })
    });
    group.bench_function("encode_1k_bytesmut", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(wire::encoded_len(&event));
            wire::encode_into(black_box(&event), &mut buf);
            buf.len()
        })
    });
    group.bench_function("view_1k", |b| {
        b.iter(|| {
            let view = wire::WireEvent::parse(black_box(&frame)).unwrap();
            (view.seq(), view.payload().len())
        })
    });
    group.bench_function("decode_owned_1k", |b| {
        b.iter(|| wire::decode(black_box(&frame)).unwrap())
    });
    // The acceptance pair: encode + read the payload back, pooled
    // zero-copy view vs. fresh-buffer + owned decode.
    group.bench_function("roundtrip_pooled_view_1k", |b| {
        b.iter(|| {
            let mut buf = pool::acquire(wire::encoded_len(&event));
            wire::encode_into(black_box(&event), &mut buf);
            let view = wire::WireEvent::parse(&buf).unwrap();
            view.payload().len() + view.topic_str().len()
        })
    });
    group.bench_function("roundtrip_bytesmut_owned_1k", |b| {
        b.iter(|| {
            let decoded = legacy_clone_roundtrip(black_box(&event));
            decoded.payload.len() + decoded.topic.segments().len()
        })
    });
    group.finish();
}

fn rtp_packet() -> RtpPacket {
    let mut header = RtpHeader::new(34, 4660, 0x0102_0304, 0xDEAD_BEEF);
    header.csrc = vec![1, 2, 3];
    header.marker = true;
    RtpPacket::new(header, Bytes::from(vec![0x5A; 1024]))
}

fn bench_wire_rtp(c: &mut Criterion) {
    let packet = rtp_packet();
    let frame = packet.encode();
    let mut group = c.benchmark_group("wire_rtp");
    group.throughput(Throughput::Bytes(frame.len() as u64));

    group.bench_function("encode_pooled", |b| {
        b.iter(|| {
            let mut buf = pool::acquire(packet.wire_len());
            packet.encode_into(&mut buf);
            buf.len()
        })
    });
    group.bench_function("encode_malloc", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(packet.wire_len());
            packet.encode_into(&mut buf);
            buf.len()
        })
    });
    group.bench_function("view_parse", |b| {
        b.iter(|| {
            let view = WireRtp::parse(black_box(&frame)).unwrap();
            (view.sequence_number(), view.payload().len())
        })
    });
    group.bench_function("decode_owned", |b| {
        b.iter(|| RtpPacket::decode(black_box(&frame)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_wire_event, bench_wire_rtp);
criterion_main!(benches);
