//! Regenerates the ablations (DESIGN.md A1/A2):
//! A1 — the transmission-batching optimization on/off on the Figure 3
//!      broker workload;
//! A2 — distributing the 400-receiver fan-out over 1/2/4 brokers.

use mmcs_bench::ablation::{run_batching_ablation, run_dissemination, run_mode_comparison, run_multicast};
use mmcs_bench::fig3::Fig3Config;
use mmcs_bench::report;

fn main() {
    // The batching ablation bites on the CPU side; shorten the run a bit
    // to keep the sweep quick while preserving steady state.
    let config = Fig3Config {
        packets: 1500,
        ..Fig3Config::default()
    };

    eprintln!("ablation A1: batching on/off ({} receivers)", config.receivers);
    let (batched, unbatched) = run_batching_ablation(&config);
    let rows = vec![
        vec![
            "batching on".to_owned(),
            format!("{:.2}", batched.avg_delay_ms),
            format!("{:.2}", batched.avg_jitter_ms),
        ],
        vec![
            "batching off".to_owned(),
            format!("{:.2}", unbatched.avg_delay_ms),
            format!("{:.2}", unbatched.avg_jitter_ms),
        ],
    ];
    println!("== A1: transmission batching (Fig 3 broker side)");
    println!(
        "{}",
        report::table(&["configuration", "avg delay (ms)", "avg jitter (ms)"], &rows)
    );

    eprintln!("ablation A2: broker count sweep");
    let mut rows = Vec::new();
    let mut csv = String::from("brokers,avg_delay_ms,loss\n");
    for brokers in [1usize, 2, 4] {
        let point = run_dissemination(&config, brokers);
        csv.push_str(&format!(
            "{},{:.4},{:.6}\n",
            point.brokers, point.avg_delay_ms, point.loss
        ));
        rows.push(vec![
            point.brokers.to_string(),
            format!("{:.2}", point.avg_delay_ms),
            format!("{:.2}%", point.loss * 100.0),
        ]);
    }
    println!("== A2: dissemination over a broker star (all 400 receivers)");
    println!(
        "{}",
        report::table(&["brokers", "avg delay (ms)", "loss"], &rows)
    );
    match report::write_results_file("ablation_dissemination.csv", &csv) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write ablation csv: {err}"),
    }

    eprintln!("ablation A3: multicast relays (50 receivers per machine)");
    let point = run_multicast(&config, 50);
    println!("== A3: multicast transport (one broker send per machine)");
    println!(
        "{}",
        report::table(
            &["receivers/relay", "avg delay (ms)", "received/receiver"],
            &[vec![
                point.receivers_per_relay.to_string(),
                format!("{:.2}", point.avg_delay_ms),
                format!("{:.1}", point.received),
            ]]
        )
    );

    eprintln!("ablation A4: client-server vs peer-to-peer delivery");
    let mut mode_rows = Vec::new();
    for group in [2usize, 4, 8, 16, 32, 64] {
        let point = run_mode_comparison(group, 300, config.seed);
        mode_rows.push(vec![
            point.group.to_string(),
            format!("{:.2}", point.client_server_ms),
            format!("{:.2}", point.peer_to_peer_ms),
            if point.peer_to_peer_ms < point.client_server_ms {
                "P2P".to_owned()
            } else {
                "client-server".to_owned()
            },
        ]);
    }
    println!("== A4: delivery-mode trade-off (audio talker, 3 Mbps uplink)");
    println!(
        "{}",
        report::table(
            &["receivers", "client-server (ms)", "peer-to-peer (ms)", "winner"],
            &mode_rows
        )
    );
}
