//! Regenerates Figure 3 (delay and jitter per packet, NaradaBrokering vs
//! the JMF reflector). Prints the summary rows the paper reports and
//! writes per-packet CSV series to `bench_results/`.

use mmcs_bench::fig3::{run, Fig3Config};
use mmcs_bench::report;

fn main() {
    let config = Fig3Config::default();
    eprintln!(
        "fig3: {} receivers ({} measured), {} packets, relay NIC {}, seed {}",
        config.receivers, config.measured, config.packets, config.relay_nic, config.seed
    );
    let result = run(&config);

    let rows = vec![
        vec![
            "NaradaBrokering".to_owned(),
            format!("{:.2}", result.narada.avg_delay_ms),
            format!("{:.2}", result.narada.avg_jitter_ms),
            format!("{:.1}", result.narada.received),
            format!("{:.2}%", result.narada.loss_fraction * 100.0),
        ],
        vec![
            "JMF reflector".to_owned(),
            format!("{:.2}", result.jmf.avg_delay_ms),
            format!("{:.2}", result.jmf.avg_jitter_ms),
            format!("{:.1}", result.jmf.received),
            format!("{:.2}%", result.jmf.loss_fraction * 100.0),
        ],
        vec![
            "paper: NaradaBrokering".to_owned(),
            "80.76".to_owned(),
            "13.38".to_owned(),
            "2000".to_owned(),
            "-".to_owned(),
        ],
        vec![
            "paper: JMF".to_owned(),
            "229.23".to_owned(),
            "15.55".to_owned(),
            "2000".to_owned(),
            "-".to_owned(),
        ],
    ];
    println!(
        "{}",
        report::table(
            &["system", "avg delay (ms)", "avg jitter (ms)", "received", "loss"],
            &rows
        )
    );

    // The paper's Figure 3 y-axis spans 0-450 ms; report the measured
    // spread so the plotted range is comparable.
    let spread = |name: &str, series: &[f64]| {
        let mut sorted = series.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if sorted.is_empty() {
            return;
        }
        let p95 = sorted[(sorted.len() as f64 * 0.95) as usize - 1];
        println!(
            "{name}: min {:.1} ms, p95 {:.1} ms, max {:.1} ms",
            sorted[0],
            p95,
            sorted[sorted.len() - 1]
        );
    };
    spread("NaradaBrokering delay spread", &result.narada.delay_series);
    spread("JMF delay spread          ", &result.jmf.delay_series);

    let delay_csv = report::two_series_csv(
        "narada_delay_ms",
        &result.narada.delay_series,
        "jmf_delay_ms",
        &result.jmf.delay_series,
    );
    let jitter_csv = report::two_series_csv(
        "narada_jitter_ms",
        &result.narada.jitter_series,
        "jmf_jitter_ms",
        &result.jmf.jitter_series,
    );
    match report::write_results_file("fig3_delay.csv", &delay_csv) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write delay series: {err}"),
    }
    match report::write_results_file("fig3_jitter.csv", &jitter_csv) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write jitter series: {err}"),
    }
}
