//! Telemetry overhead benchmarks.
//!
//! The contract from DESIGN.md §9: full broker instrumentation on the
//! warm publish path (six counter bumps plus one histogram record, all
//! relaxed atomics) stays within 5% of the uninstrumented `route_cache`
//! warm baseline. The group benches the same warm fan-out loop with and
//! without metrics installed, plus the raw primitive costs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bytes::Bytes;
use mmcs_broker::event::{Event, EventClass};
use mmcs_broker::metrics::BrokerMetrics;
use mmcs_broker::node::{BrokerNode, Input, Origin};
use mmcs_broker::topic::{Topic, TopicFilter};
use mmcs_telemetry::{Counter, Histogram};
use mmcs_util::id::{BrokerId, ClientId};

fn fanout_node(fanout: usize) -> (BrokerNode, ClientId, std::sync::Arc<Event>) {
    let mut node = BrokerNode::new(BrokerId::from_raw(1));
    let topic = Topic::parse("conf/1/video").unwrap();
    for i in 0..fanout {
        let client = ClientId::from_raw(i as u64 + 1);
        node.handle(Input::AttachClient {
            client,
            profile: Default::default(),
        })
        .unwrap();
        node.handle(Input::Subscribe {
            client,
            filter: TopicFilter::exact(&topic),
        })
        .unwrap();
    }
    let publisher = ClientId::from_raw(9999);
    node.handle(Input::AttachClient {
        client: publisher,
        profile: Default::default(),
    })
    .unwrap();
    let event = Event::new(
        topic,
        publisher,
        0,
        EventClass::Rtp,
        Bytes::from(vec![0u8; 1000]),
    )
    .into_shared();
    (node, publisher, event)
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    const FANOUT: usize = 100;
    group.throughput(Throughput::Elements(FANOUT as u64));
    // Baseline: identical to route_cache/warm_fanout_100.
    {
        let (mut node, publisher, event) = fanout_node(FANOUT);
        let mut actions = Vec::new();
        group.bench_function("warm_publish_uninstrumented_fanout_100", |b| {
            b.iter(|| {
                actions.clear();
                node.handle_into(
                    Input::Publish {
                        origin: Origin::Client(publisher),
                        event: std::sync::Arc::clone(&event),
                    },
                    &mut actions,
                )
                .unwrap();
                actions.len()
            })
        });
    }
    // The same loop with the full BrokerMetrics bundle installed.
    {
        let (mut node, publisher, event) = fanout_node(FANOUT);
        node.set_metrics(BrokerMetrics::detached());
        let mut actions = Vec::new();
        group.bench_function("warm_publish_instrumented_fanout_100", |b| {
            b.iter(|| {
                actions.clear();
                node.handle_into(
                    Input::Publish {
                        origin: Origin::Client(publisher),
                        event: std::sync::Arc::clone(&event),
                    },
                    &mut actions,
                )
                .unwrap();
                actions.len()
            })
        });
    }
    group.finish();
}

fn bench_telemetry_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_primitives");
    let counter = Counter::new();
    group.bench_function("counter_inc", |b| {
        b.iter(|| {
            counter.inc();
            counter.get()
        })
    });
    let histogram = Histogram::new();
    let mut value = 0u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            value = value.wrapping_mul(6364136223846793005).wrapping_add(1);
            histogram.record(std::hint::black_box(value >> 40));
            value
        })
    });
    group.bench_function("histogram_snapshot", |b| b.iter(|| histogram.snapshot()));
    group.finish();
}

criterion_group! {
    name = telemetry;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_telemetry_overhead, bench_telemetry_primitives
}
criterion_main!(telemetry);
