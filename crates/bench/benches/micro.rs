//! Criterion micro-benchmarks for the hot paths under the experiments:
//! topic-trie matching, broker routing, RTP codec, XML/XGSP codec and
//! the end-to-end in-memory pub/sub hop.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use bytes::Bytes;
use mmcs_broker::event::{Event, EventClass};
use mmcs_broker::network::BrokerNetwork;
use mmcs_broker::node::{BrokerNode, Input, Origin};
use mmcs_broker::topic::{SubscriptionTable, Topic, TopicFilter};
use mmcs_rtp::packet::{RtpHeader, RtpPacket};
use mmcs_util::id::{BrokerId, ClientId};
use mmcs_util::xml::Element;
use mmcs_xgsp::message::XgspMessage;

fn bench_topic_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("topic_matching");
    for &subs in &[100usize, 1000, 10_000] {
        let mut table: SubscriptionTable<u32> = SubscriptionTable::new();
        for i in 0..subs {
            let filter = match i % 4 {
                0 => format!("session/{}/video", i),
                1 => format!("session/{}/#", i),
                2 => "session/*/audio".to_string(),
                _ => format!("session/{}/audio", i),
            };
            table.subscribe(&TopicFilter::parse(&filter).unwrap(), i as u32);
        }
        let topic = Topic::parse(&format!("session/{}/video", subs / 2)).unwrap();
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("{subs}_subscriptions"), |b| {
            b.iter(|| table.matches(std::hint::black_box(&topic)))
        });
    }
    group.finish();
}

fn bench_broker_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker_route");
    for &fanout in &[10usize, 100, 400] {
        let mut node = BrokerNode::new(BrokerId::from_raw(1));
        let topic = Topic::parse("conf/1/video").unwrap();
        for i in 0..fanout {
            let client = ClientId::from_raw(i as u64 + 1);
            node.handle(Input::AttachClient {
                client,
                profile: Default::default(),
            })
            .unwrap();
            node.handle(Input::Subscribe {
                client,
                filter: TopicFilter::exact(&topic),
            })
            .unwrap();
        }
        let publisher = ClientId::from_raw(9999);
        node.handle(Input::AttachClient {
            client: publisher,
            profile: Default::default(),
        })
        .unwrap();
        let event = Event::new(
            topic,
            publisher,
            0,
            EventClass::Rtp,
            Bytes::from(vec![0u8; 1000]),
        )
        .into_shared();
        group.throughput(Throughput::Elements(fanout as u64));
        group.bench_function(format!("fanout_{fanout}"), |b| {
            b.iter(|| {
                node.handle(Input::Publish {
                    origin: Origin::Client(publisher),
                    event: std::sync::Arc::clone(&event),
                })
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Builds a broker with `fanout` subscribers on one topic plus an
/// attached publisher; returns the node, the publisher and a shared
/// event on that topic.
fn fanout_node(fanout: usize) -> (BrokerNode, ClientId, std::sync::Arc<Event>) {
    let mut node = BrokerNode::new(BrokerId::from_raw(1));
    let topic = Topic::parse("conf/1/video").unwrap();
    for i in 0..fanout {
        let client = ClientId::from_raw(i as u64 + 1);
        node.handle(Input::AttachClient {
            client,
            profile: Default::default(),
        })
        .unwrap();
        node.handle(Input::Subscribe {
            client,
            filter: TopicFilter::exact(&topic),
        })
        .unwrap();
    }
    let publisher = ClientId::from_raw(9999);
    node.handle(Input::AttachClient {
        client: publisher,
        profile: Default::default(),
    })
    .unwrap();
    let event = Event::new(
        topic,
        publisher,
        0,
        EventClass::Rtp,
        Bytes::from(vec![0u8; 1000]),
    )
    .into_shared();
    (node, publisher, event)
}

fn bench_route_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_cache");
    for &fanout in &[10usize, 100, 400] {
        let (mut node, publisher, event) = fanout_node(fanout);
        let mut actions = Vec::new();
        group.throughput(Throughput::Elements(fanout as u64));
        // Warm path: the memoized plan is valid; publishing is one map
        // lookup plus appends into the reused buffer — zero allocations.
        group.bench_function(format!("warm_fanout_{fanout}"), |b| {
            b.iter(|| {
                actions.clear();
                node.handle_into(
                    Input::Publish {
                        origin: Origin::Client(publisher),
                        event: std::sync::Arc::clone(&event),
                    },
                    &mut actions,
                )
                .unwrap();
                actions.len()
            })
        });
        // Cold path: an unrelated subscription churns every iteration,
        // bumping the generation so the plan is rebuilt from the tries.
        let churner = ClientId::from_raw(88_888);
        node.handle(Input::AttachClient {
            client: churner,
            profile: Default::default(),
        })
        .unwrap();
        let churn_filter = TopicFilter::parse("churn/only").unwrap();
        group.bench_function(format!("cold_fanout_{fanout}"), |b| {
            b.iter(|| {
                node.handle(Input::Subscribe {
                    client: churner,
                    filter: churn_filter.clone(),
                })
                .unwrap();
                node.handle(Input::Unsubscribe {
                    client: churner,
                    filter: churn_filter.clone(),
                })
                .unwrap();
                actions.clear();
                node.handle_into(
                    Input::Publish {
                        origin: Origin::Client(publisher),
                        event: std::sync::Arc::clone(&event),
                    },
                    &mut actions,
                )
                .unwrap();
                actions.len()
            })
        });
    }
    // Churn: interleaved subscribe/publish/unsubscribe on the hot topic
    // itself — the realistic worst case for an invalidating cache.
    {
        let (mut node, publisher, event) = fanout_node(100);
        let late = ClientId::from_raw(77_777);
        node.handle(Input::AttachClient {
            client: late,
            profile: Default::default(),
        })
        .unwrap();
        let hot_filter = TopicFilter::exact(&event.topic);
        let mut actions = Vec::new();
        group.throughput(Throughput::Elements(100));
        group.bench_function("churn_sub_pub_unsub_fanout_100", |b| {
            b.iter(|| {
                node.handle(Input::Subscribe {
                    client: late,
                    filter: hot_filter.clone(),
                })
                .unwrap();
                actions.clear();
                node.handle_into(
                    Input::Publish {
                        origin: Origin::Client(publisher),
                        event: std::sync::Arc::clone(&event),
                    },
                    &mut actions,
                )
                .unwrap();
                node.handle(Input::Unsubscribe {
                    client: late,
                    filter: hot_filter.clone(),
                })
                .unwrap();
                actions.len()
            })
        });
    }
    group.finish();
}

fn bench_rtp_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtp_codec");
    let packet = RtpPacket::new(
        RtpHeader::new(34, 1234, 567_890, 0xDECAF),
        Bytes::from(vec![0u8; 1000]),
    );
    let wire = packet.encode();
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("encode_1000B", |b| b.iter(|| packet.encode()));
    group.bench_function("decode_1000B", |b| {
        b.iter(|| RtpPacket::decode(std::hint::black_box(&wire)).unwrap())
    });
    group.finish();
}

fn bench_xgsp_codec(c: &mut Criterion) {
    let message = XgspMessage::Join {
        session: 42.into(),
        user: "alice@community.example".into(),
        terminal: 7.into(),
        media: vec![
            mmcs_xgsp::media::MediaDescription::new(mmcs_xgsp::media::MediaKind::Audio, "PCMU"),
            mmcs_xgsp::media::MediaDescription::new(mmcs_xgsp::media::MediaKind::Video, "H263"),
        ],
    };
    let xml = message.to_xml();
    let mut group = c.benchmark_group("xgsp_codec");
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("encode_join", |b| b.iter(|| message.to_xml()));
    group.bench_function("decode_join", |b| {
        b.iter(|| XgspMessage::parse(std::hint::black_box(&xml)).unwrap())
    });
    group.bench_function("xml_parse_join", |b| {
        b.iter(|| Element::parse(std::hint::black_box(&xml)).unwrap())
    });
    group.finish();
}

fn bench_end_to_end_pubsub(c: &mut Criterion) {
    let mut group = c.benchmark_group("pubsub_hop");
    group.bench_function("publish_2_brokers_10_subs", |b| {
        b.iter_batched(
            || {
                let mut net = BrokerNetwork::new();
                let b1 = net.add_broker();
                let b2 = net.add_broker();
                net.link(b1, b2).unwrap();
                let publisher = net.attach_client(b1);
                for _ in 0..10 {
                    let subscriber = net.attach_client(b2);
                    net.subscribe(subscriber, TopicFilter::parse("s/#").unwrap())
                        .unwrap();
                }
                (net, publisher)
            },
            |(mut net, publisher)| {
                for _ in 0..100 {
                    net.publish(
                        publisher,
                        Topic::parse("s/av").unwrap(),
                        Bytes::from_static(&[0u8; 200]),
                    );
                }
                net.drain_deliveries().len()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_topic_matching, bench_broker_routing, bench_route_cache, bench_rtp_codec, bench_xgsp_codec, bench_end_to_end_pubsub
}
criterion_main!(micro);
