//! Regenerates the paper's capacity claims (C1/C2): "one broker can
//! support more than a thousand audio clients or more than 400 hundred
//! video clients at one time providing a very good quality."
//!
//! Sweeps client counts for audio and video, printing delay/jitter/loss
//! per point and the measured knee (last count meeting the quality bar).

use mmcs_bench::capacity::{knee, sweep, Media, GOOD_DELAY_MS, GOOD_LOSS};
use mmcs_bench::report;

fn run_sweep(label: &str, media: Media, counts: &[usize], claim: usize) -> String {
    eprintln!("capacity: sweeping {label} over {counts:?}");
    let points = sweep(media, counts);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.clients.to_string(),
                format!("{:.2}", p.avg_delay_ms),
                format!("{:.2}", p.p95_delay_ms),
                format!("{:.2}", p.avg_jitter_ms),
                format!("{:.2}%", p.loss * 100.0),
                if p.good { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    let table = report::table(
        &["clients", "avg delay (ms)", "p95 delay (ms)", "jitter (ms)", "loss", "good"],
        &rows,
    );
    println!("== {label} (quality bar: delay < {GOOD_DELAY_MS} ms, loss < {:.0}%)", GOOD_LOSS * 100.0);
    println!("{table}");
    match knee(&points) {
        Some(k) => println!(
            "{label} knee: {k} clients (paper claim: more than {claim})\n"
        ),
        None => println!("{label}: no swept point met the quality bar\n"),
    }
    let mut csv = String::from("clients,avg_delay_ms,p95_delay_ms,jitter_ms,loss,good\n");
    for p in &points {
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.6},{}\n",
            p.clients, p.avg_delay_ms, p.p95_delay_ms, p.avg_jitter_ms, p.loss, p.good
        ));
    }
    csv
}

fn main() {
    let audio_csv = run_sweep(
        "audio (64 Kbps PCMU)",
        Media::Audio,
        &[200, 400, 600, 800, 1000, 1100, 1200, 1300, 1400],
        1000,
    );
    let video_csv = run_sweep(
        "video (600 Kbps H.263)",
        Media::Video,
        &[100, 200, 300, 400, 420, 440, 460, 500, 560],
        400,
    );
    for (name, csv) in [("capacity_audio.csv", audio_csv), ("capacity_video.csv", video_csv)] {
        match report::write_results_file(name, &csv) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(err) => eprintln!("could not write {name}: {err}"),
        }
    }
}
