//! Peer-to-peer delivery mode.
//!
//! NaradaBrokering "can operate either in a client-server mode like JMS
//! or in a completely distributed JXTA-like peer-to-peer mode", and the
//! paper claims the combination allows "optimized
//! performance-functionality trade-offs". This module models the P2P
//! side: peers discover each other through a rendezvous directory and
//! exchange events directly, with no broker hop — cheaper end-to-end
//! latency for small groups, but the publisher pays the whole fan-out.
//! [`ModeCost`] quantifies the trade-off; the `ablation` bench sweeps it.

use std::collections::HashMap;

use std::sync::Arc;

use mmcs_util::id::ClientId;

use crate::event::Event;
use crate::topic::{SubscriptionTable, Topic, TopicFilter};

/// How a group's events are delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryMode {
    /// Via the broker network (JMS-like).
    ClientServer,
    /// Directly peer-to-peer (JXTA-like).
    PeerToPeer,
}

/// A rendezvous-coordinated peer group exchanging events directly.
///
/// # Examples
///
/// ```
/// use mmcs_broker::p2p::P2pGroup;
/// use mmcs_broker::topic::{Topic, TopicFilter};
/// use mmcs_util::id::ClientId;
/// use bytes::Bytes;
///
/// let mut group = P2pGroup::new();
/// let a = ClientId::from_raw(1);
/// let b = ClientId::from_raw(2);
/// group.join(a);
/// group.join(b);
/// group.subscribe(b, TopicFilter::parse("chat/#")?)?;
/// let deliveries = group.publish(a, Topic::parse("chat/room1")?, Bytes::from_static(b"hi"))?;
/// assert_eq!(deliveries.len(), 1);
/// assert_eq!(deliveries[0].0, b);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct P2pGroup {
    members: HashMap<ClientId, u64>,
    subs: SubscriptionTable<ClientId>,
    /// Bumped whenever `subs` changes; stale plans are discarded lazily.
    generation: u64,
    /// Memoized matching-peer sets per concrete topic (the publisher is
    /// filtered out at publish time, so one plan serves all members).
    plans: HashMap<Topic, (u64, Arc<Vec<ClientId>>)>,
}

/// Upper bound on memoized peer sets before stale entries are swept.
const P2P_PLAN_CACHE_MAX: usize = 1024;

/// Error from peer-group operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotAMemberError(pub ClientId);

impl std::fmt::Display for NotAMemberError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client {} is not a member of the peer group", self.0)
    }
}

impl std::error::Error for NotAMemberError {}

impl P2pGroup {
    /// Creates an empty peer group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a peer (idempotent).
    pub fn join(&mut self, peer: ClientId) {
        self.members.entry(peer).or_insert(0);
    }

    /// Removes a peer and all its subscriptions.
    pub fn leave(&mut self, peer: ClientId) {
        if self.members.remove(&peer).is_some() && self.subs.unsubscribe_all(&peer) > 0 {
            self.generation += 1;
        }
    }

    /// Current membership size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Subscribes a member to a filter.
    ///
    /// # Errors
    ///
    /// Returns [`NotAMemberError`] if the peer never joined.
    pub fn subscribe(&mut self, peer: ClientId, filter: TopicFilter) -> Result<(), NotAMemberError> {
        if !self.members.contains_key(&peer) {
            return Err(NotAMemberError(peer));
        }
        if self.subs.subscribe(&filter, peer) {
            self.generation += 1;
        }
        Ok(())
    }

    /// Publishes directly to every matching peer except the publisher;
    /// returns `(peer, event)` pairs the publisher must transmit itself.
    ///
    /// # Errors
    ///
    /// Returns [`NotAMemberError`] if the publisher never joined.
    pub fn publish(
        &mut self,
        from: ClientId,
        topic: Topic,
        payload: bytes::Bytes,
    ) -> Result<Vec<(ClientId, Arc<Event>)>, NotAMemberError> {
        let seq = self
            .members
            .get_mut(&from)
            .ok_or(NotAMemberError(from))?;
        let event = Event::new(topic, from, *seq, crate::event::EventClass::Data, payload)
            .into_shared();
        *seq += 1;
        let plan = self.plan_for(&event.topic);
        Ok(plan
            .iter()
            .filter(|peer| **peer != from)
            .map(|&peer| (peer, Arc::clone(&event)))
            .collect())
    }

    /// The memoized set of peers matching `topic`, rebuilt when the
    /// subscription table has changed since it was cached.
    fn plan_for(&mut self, topic: &Topic) -> Arc<Vec<ClientId>> {
        if let Some((generation, plan)) = self.plans.get(topic) {
            if *generation == self.generation {
                return Arc::clone(plan);
            }
        }
        let mut peers = Vec::new();
        self.subs.matches_into(topic, &mut peers);
        let plan = Arc::new(peers);
        if self.plans.len() >= P2P_PLAN_CACHE_MAX {
            let generation = self.generation;
            self.plans.retain(|_, (g, _)| *g == generation);
            if self.plans.len() >= P2P_PLAN_CACHE_MAX {
                self.plans.clear();
            }
        }
        self.plans
            .insert(topic.clone(), (self.generation, Arc::clone(&plan)));
        plan
    }
}

/// Cost of delivering one event to `receivers` subscribers in each mode.
///
/// The units are abstract "transmissions"; the point is the shape: P2P
/// halves total hops but concentrates them all on the publisher, so it
/// wins for small groups and loses once the publisher's uplink saturates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeCost {
    /// Transmissions the publisher performs.
    pub publisher_sends: usize,
    /// Total hops across the system.
    pub total_hops: usize,
}

impl ModeCost {
    /// Computes the cost profile for a mode and group size.
    pub fn of(mode: DeliveryMode, receivers: usize) -> ModeCost {
        match mode {
            DeliveryMode::ClientServer => ModeCost {
                publisher_sends: 1,
                total_hops: 1 + receivers,
            },
            DeliveryMode::PeerToPeer => ModeCost {
                publisher_sends: receivers,
                total_hops: receivers,
            },
        }
    }

    /// The mode with the lower publisher load given the publisher can
    /// sustain at most `uplink_sends` transmissions per event.
    pub fn preferred_mode(receivers: usize, uplink_sends: usize) -> DeliveryMode {
        if receivers <= uplink_sends {
            DeliveryMode::PeerToPeer
        } else {
            DeliveryMode::ClientServer
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn client(n: u64) -> ClientId {
        ClientId::from_raw(n)
    }

    #[test]
    fn publish_reaches_matching_peers_not_self() {
        let mut group = P2pGroup::new();
        for i in 1..=3 {
            group.join(client(i));
        }
        group
            .subscribe(client(1), TopicFilter::parse("t/#").unwrap())
            .unwrap();
        group
            .subscribe(client(2), TopicFilter::parse("t/#").unwrap())
            .unwrap();
        let deliveries = group
            .publish(client(1), Topic::parse("t/x").unwrap(), Bytes::new())
            .unwrap();
        // Client 1 published, so only client 2 receives.
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].0, client(2));
    }

    #[test]
    fn leave_removes_subscriptions() {
        let mut group = P2pGroup::new();
        group.join(client(1));
        group.join(client(2));
        group
            .subscribe(client(2), TopicFilter::parse("t").unwrap())
            .unwrap();
        group.leave(client(2));
        let deliveries = group
            .publish(client(1), Topic::parse("t").unwrap(), Bytes::new())
            .unwrap();
        assert!(deliveries.is_empty());
        assert_eq!(group.len(), 1);
    }

    #[test]
    fn non_members_error() {
        let mut group = P2pGroup::new();
        assert_eq!(
            group.subscribe(client(9), TopicFilter::parse("t").unwrap()),
            Err(NotAMemberError(client(9)))
        );
        assert_eq!(
            group
                .publish(client(9), Topic::parse("t").unwrap(), Bytes::new())
                .unwrap_err(),
            NotAMemberError(client(9))
        );
    }

    #[test]
    fn sequence_numbers_advance_per_peer() {
        let mut group = P2pGroup::new();
        group.join(client(1));
        group.join(client(2));
        group
            .subscribe(client(2), TopicFilter::parse("t").unwrap())
            .unwrap();
        let first = group
            .publish(client(1), Topic::parse("t").unwrap(), Bytes::new())
            .unwrap();
        let second = group
            .publish(client(1), Topic::parse("t").unwrap(), Bytes::new())
            .unwrap();
        assert_eq!(first[0].1.seq, 0);
        assert_eq!(second[0].1.seq, 1);
    }

    #[test]
    fn mode_costs_cross_over() {
        // Small group: P2P does fewer total hops and is preferred.
        let p2p_small = ModeCost::of(DeliveryMode::PeerToPeer, 3);
        let cs_small = ModeCost::of(DeliveryMode::ClientServer, 3);
        assert!(p2p_small.total_hops < cs_small.total_hops);
        assert_eq!(ModeCost::preferred_mode(3, 8), DeliveryMode::PeerToPeer);
        // Big group: publisher cannot sustain the fan-out; client-server
        // keeps the publisher at one send.
        assert_eq!(
            ModeCost::preferred_mode(400, 8),
            DeliveryMode::ClientServer
        );
        assert_eq!(ModeCost::of(DeliveryMode::ClientServer, 400).publisher_sends, 1);
        assert_eq!(ModeCost::of(DeliveryMode::PeerToPeer, 400).publisher_sends, 400);
    }
}
