//! The flat event wire format.
//!
//! Every event crossing a real boundary — the sharded broker's
//! cross-shard forwarding ring, a broker-to-broker link, a reliable
//! control channel — travels as one contiguous frame: a fixed-offset
//! binary header followed by the topic string and the raw payload. The
//! layout (DESIGN.md §11) is chosen so the receiving side never walks a
//! field-by-field decoder on the hot path: [`WireEvent::parse`] validates
//! the frame once, and every accessor afterwards is an infallible
//! fixed-offset read borrowing from the frame. The payload is returned
//! as a `&[u8]` sub-slice — or, via [`decode_shared`], as a zero-copy
//! [`Bytes`] slice that keeps the (pooled) frame storage alive.
//!
//! Encoding goes through the thread-local buffer pool
//! ([`mmcs_util::pool`]): [`encode`] checks a size-classed scratch buffer
//! out, writes the frame, and the storage returns to the pool when the
//! frame (or its last [`Bytes`] clone) drops.
//!
//! # Examples
//!
//! ```
//! use mmcs_broker::event::{Event, EventClass};
//! use mmcs_broker::topic::Topic;
//! use mmcs_broker::wire;
//! use bytes::Bytes;
//! use mmcs_util::id::ClientId;
//!
//! let event = Event::new(
//!     Topic::parse("session/7/audio")?,
//!     ClientId::from_raw(3),
//!     42,
//!     EventClass::Rtp,
//!     Bytes::from_static(b"frame"),
//! );
//! let frame = wire::encode(&event).freeze();
//! let view = wire::WireEvent::parse(&frame)?;
//! assert_eq!(view.seq(), 42);
//! assert_eq!(view.topic_str(), "session/7/audio");
//! assert_eq!(view.payload(), b"frame");
//! assert_eq!(wire::decode_shared(&frame)?, event);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use core::fmt;

use bytes::{BufMut, Bytes};
use mmcs_util::id::ClientId;
use mmcs_util::pool::{self, PooledBuf};
use mmcs_util::time::SimTime;

use crate::event::{Event, EventClass};
use crate::topic::Topic;

/// Version byte carried in every frame. Bump on any layout change; a
/// receiver rejects versions it does not speak instead of misparsing.
pub const WIRE_VERSION: u8 = 1;

/// Fixed binary header length. The topic string starts here.
pub const WIRE_HEADER_LEN: usize = 32;

// Fixed header offsets (all integers big-endian; see DESIGN.md §11).
const OFF_VERSION: usize = 0;
const OFF_CLASS: usize = 1;
const OFF_TOPIC_LEN: usize = 2; // u16
const OFF_PAYLOAD_LEN: usize = 4; // u32
const OFF_SOURCE: usize = 8; // u64
const OFF_SEQ: usize = 16; // u64
const OFF_PUBLISHED_AT: usize = 24; // u64 nanoseconds

fn class_byte(class: EventClass) -> u8 {
    match class {
        EventClass::Control => 0,
        EventClass::Data => 1,
        EventClass::Rtp => 2,
    }
}

fn class_from_byte(byte: u8) -> Option<EventClass> {
    match byte {
        0 => Some(EventClass::Control),
        1 => Some(EventClass::Data),
        2 => Some(EventClass::Rtp),
        _ => None,
    }
}

/// Bytes of the `/`-joined topic path, without allocating the string.
fn topic_byte_len(topic: &Topic) -> usize {
    let segments = topic.segments();
    let seps = segments.len().saturating_sub(1);
    segments.iter().map(|s| s.len()).sum::<usize>() + seps
}

/// Exact frame size [`encode_into`] will write for `event`.
pub fn encoded_len(event: &Event) -> usize {
    WIRE_HEADER_LEN + topic_byte_len(&event.topic) + event.payload.len()
}

/// Writes the frame for `event` into any [`BufMut`] — a pooled buffer,
/// a `BytesMut`, or a plain `Vec<u8>`. Exactly [`encoded_len`] bytes.
///
/// # Panics
///
/// Panics if the topic path exceeds `u16::MAX` bytes or the payload
/// exceeds `u32::MAX` bytes (neither occurs in this workspace; both are
/// stated frame-format limits, not runtime conditions).
#[inline]
pub fn encode_into(event: &Event, buf: &mut impl BufMut) {
    let topic_len = topic_byte_len(&event.topic);
    assert!(topic_len <= u16::MAX as usize, "topic exceeds wire limit");
    assert!(
        event.payload.len() <= u32::MAX as usize,
        "payload exceeds wire limit"
    );
    // Assemble the fixed header on the stack and write it in one call:
    // seven field-sized puts would pay a length/reserve check each.
    let mut header = [0u8; WIRE_HEADER_LEN];
    header[OFF_VERSION] = WIRE_VERSION;
    header[OFF_CLASS] = class_byte(event.class);
    header[OFF_TOPIC_LEN..OFF_TOPIC_LEN + 2].copy_from_slice(&(topic_len as u16).to_be_bytes());
    header[OFF_PAYLOAD_LEN..OFF_PAYLOAD_LEN + 4]
        .copy_from_slice(&(event.payload.len() as u32).to_be_bytes());
    header[OFF_SOURCE..OFF_SOURCE + 8].copy_from_slice(&event.source.value().to_be_bytes());
    header[OFF_SEQ..OFF_SEQ + 8].copy_from_slice(&event.seq.to_be_bytes());
    header[OFF_PUBLISHED_AT..OFF_PUBLISHED_AT + 8]
        .copy_from_slice(&event.published_at.as_nanos().to_be_bytes());
    buf.put_slice(&header);
    let mut first = true;
    for segment in event.topic.segments() {
        if !first {
            buf.put_u8(b'/');
        }
        first = false;
        buf.put_slice(segment.as_bytes());
    }
    buf.put_slice(&event.payload);
}

/// Encodes `event` into a buffer checked out of the thread-local pool.
/// Drop the buffer to return the storage, or [`PooledBuf::freeze`] it
/// into a shared [`Bytes`] frame (the last clone returns the storage).
pub fn encode(event: &Event) -> PooledBuf {
    let mut buf = pool::acquire(encoded_len(event));
    encode_into(event, &mut buf);
    buf
}

/// A zero-copy view over an encoded event frame.
///
/// [`WireEvent::parse`] validates the whole frame once — length prefix
/// consistency, version, class, topic well-formedness — so every
/// accessor is an infallible fixed-offset read into the borrowed bytes.
#[derive(Debug, Clone, Copy)]
pub struct WireEvent<'a> {
    buf: &'a [u8],
    /// End of the topic string; the payload starts here.
    topic_end: usize,
}

impl<'a> WireEvent<'a> {
    /// Validates `frame` and returns the borrow-parsed view.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeEventError`] on truncation, an unknown version or
    /// class byte, a length prefix that disagrees with the frame size,
    /// or a malformed topic (empty, empty segment, wildcard, not UTF-8).
    pub fn parse(frame: &'a [u8]) -> Result<WireEvent<'a>, DecodeEventError> {
        if frame.len() < WIRE_HEADER_LEN {
            return Err(DecodeEventError::Truncated {
                needed: WIRE_HEADER_LEN,
                got: frame.len(),
            });
        }
        let version = frame[OFF_VERSION];
        if version != WIRE_VERSION {
            return Err(DecodeEventError::BadVersion(version));
        }
        if class_from_byte(frame[OFF_CLASS]).is_none() {
            return Err(DecodeEventError::BadClass(frame[OFF_CLASS]));
        }
        let topic_len = u16::from_be_bytes([frame[OFF_TOPIC_LEN], frame[OFF_TOPIC_LEN + 1]])
            as usize;
        let payload_len = u32::from_be_bytes([
            frame[OFF_PAYLOAD_LEN],
            frame[OFF_PAYLOAD_LEN + 1],
            frame[OFF_PAYLOAD_LEN + 2],
            frame[OFF_PAYLOAD_LEN + 3],
        ]) as usize;
        let expected = WIRE_HEADER_LEN + topic_len + payload_len;
        if frame.len() < expected {
            return Err(DecodeEventError::Truncated {
                needed: expected,
                got: frame.len(),
            });
        }
        if frame.len() > expected {
            return Err(DecodeEventError::TrailingBytes {
                expected,
                got: frame.len(),
            });
        }
        let topic_end = WIRE_HEADER_LEN + topic_len;
        // In range by the length check above; `get` keeps the decoder
        // panic-free even if that invariant ever regresses.
        let Some(topic) = frame.get(WIRE_HEADER_LEN..topic_end) else {
            return Err(DecodeEventError::Truncated {
                needed: topic_end,
                got: frame.len(),
            });
        };
        if !topic_is_well_formed(topic) {
            return Err(DecodeEventError::BadTopic);
        }
        Ok(WireEvent { buf: frame, topic_end })
    }

    /// The event's priority class.
    pub fn class(&self) -> EventClass {
        // The byte was validated by `parse`; treat corruption of the
        // borrowed frame as unreachable rather than panicking.
        class_from_byte(self.buf[OFF_CLASS]).unwrap_or(EventClass::Data)
    }

    /// The publishing client.
    pub fn source(&self) -> ClientId {
        ClientId::from_raw(read_u64(self.buf, OFF_SOURCE))
    }

    /// Per-source sequence number.
    pub fn seq(&self) -> u64 {
        read_u64(self.buf, OFF_SEQ)
    }

    /// Publish timestamp (virtual time).
    pub fn published_at(&self) -> SimTime {
        SimTime::from_nanos(read_u64(self.buf, OFF_PUBLISHED_AT))
    }

    /// The `/`-joined topic path, borrowed from the frame.
    pub fn topic_str(&self) -> &'a str {
        // Range and UTF-8 validity were checked by `parse`.
        self.buf
            .get(WIRE_HEADER_LEN..self.topic_end)
            .and_then(|topic| std::str::from_utf8(topic).ok())
            .unwrap_or("")
    }

    /// Parses the topic into an owned [`Topic`] (allocates segments).
    pub fn topic(&self) -> Result<Topic, DecodeEventError> {
        Topic::parse(self.topic_str()).map_err(|_| DecodeEventError::BadTopic)
    }

    /// The payload: a sub-slice of the frame, nothing copied.
    pub fn payload(&self) -> &'a [u8] {
        // `topic_end <= buf.len()` was established by `parse`.
        self.buf.get(self.topic_end..).unwrap_or(&[])
    }

    /// Byte range of the payload within the frame (for carving a
    /// zero-copy [`Bytes::slice`] out of a shared frame).
    pub fn payload_range(&self) -> core::ops::Range<usize> {
        self.topic_end..self.buf.len()
    }
}

/// Non-empty, no empty segments, no wildcard segments, valid UTF-8 —
/// i.e. exactly what [`Topic::parse`] accepts, checked without
/// allocating.
fn topic_is_well_formed(topic: &[u8]) -> bool {
    let Ok(path) = std::str::from_utf8(topic) else {
        return false;
    };
    if path.is_empty() {
        return false;
    }
    path.split('/')
        .all(|segment| !segment.is_empty() && segment != "*" && segment != "#")
}

fn read_u64(buf: &[u8], offset: usize) -> u64 {
    // Every caller passes a header offset inside the validated frame;
    // a short read (impossible after `parse`) yields 0 rather than a
    // panic on the decode path.
    let mut bytes = [0u8; 8];
    if let Some(src) = buf.get(offset..offset + 8) {
        bytes.copy_from_slice(src);
    }
    u64::from_be_bytes(bytes)
}

/// Decodes a frame into an owned [`Event`], copying the payload. Use
/// [`decode_shared`] on hot paths to keep the payload zero-copy.
///
/// # Errors
///
/// Same matrix as [`WireEvent::parse`].
pub fn decode(frame: &[u8]) -> Result<Event, DecodeEventError> {
    let view = WireEvent::parse(frame)?;
    Ok(Event {
        topic: view.topic()?,
        source: view.source(),
        seq: view.seq(),
        class: view.class(),
        payload: Bytes::copy_from_slice(view.payload()),
        published_at: view.published_at(),
    })
}

/// Decodes a frame living in a shared [`Bytes`]; the payload is a
/// zero-copy slice keeping the frame storage (e.g. a pooled buffer)
/// alive until the last reference drops.
///
/// # Errors
///
/// Same matrix as [`WireEvent::parse`].
pub fn decode_shared(frame: &Bytes) -> Result<Event, DecodeEventError> {
    let view = WireEvent::parse(frame)?;
    let payload = frame.slice(view.payload_range());
    Ok(Event {
        topic: view.topic()?,
        source: view.source(),
        seq: view.seq(),
        class: view.class(),
        payload,
        published_at: view.published_at(),
    })
}

/// Error decoding an event frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeEventError {
    /// Frame shorter than its header (or length prefixes) demand.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// Frame longer than its length prefixes account for.
    TrailingBytes {
        /// Bytes the prefixes account for.
        expected: usize,
        /// Bytes present.
        got: usize,
    },
    /// Version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// Unknown event class byte.
    BadClass(u8),
    /// Topic bytes are not a valid wildcard-free topic path.
    BadTopic,
}

impl fmt::Display for DecodeEventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeEventError::Truncated { needed, got } => {
                write!(f, "truncated event frame: need {needed} bytes, got {got}")
            }
            DecodeEventError::TrailingBytes { expected, got } => {
                write!(f, "oversized event frame: expected {expected} bytes, got {got}")
            }
            DecodeEventError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeEventError::BadClass(c) => write!(f, "unknown event class byte {c}"),
            DecodeEventError::BadTopic => write!(f, "malformed topic in event frame"),
        }
    }
}

impl std::error::Error for DecodeEventError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(payload: &'static [u8]) -> Event {
        Event::new(
            Topic::parse("conf/9/video").unwrap(),
            ClientId::from_raw(0xABCD_EF01_2345_6789),
            77,
            EventClass::Rtp,
            Bytes::from_static(payload),
        )
        .with_published_at(SimTime::from_nanos(123_456_789))
    }

    #[test]
    fn layout_is_fixed_offset() {
        let event = sample(b"xyz");
        let frame = encode(&event).freeze();
        assert_eq!(frame.len(), encoded_len(&event));
        assert_eq!(frame[OFF_VERSION], WIRE_VERSION);
        assert_eq!(frame[OFF_CLASS], 2); // Rtp
        assert_eq!(u16::from_be_bytes([frame[2], frame[3]]), 12); // "conf/9/video"
        assert_eq!(u32::from_be_bytes([frame[4], frame[5], frame[6], frame[7]]), 3);
        assert_eq!(read_u64(&frame, OFF_SOURCE), 0xABCD_EF01_2345_6789);
        assert_eq!(read_u64(&frame, OFF_SEQ), 77);
        assert_eq!(read_u64(&frame, OFF_PUBLISHED_AT), 123_456_789);
        assert_eq!(&frame[WIRE_HEADER_LEN..WIRE_HEADER_LEN + 12], b"conf/9/video");
        assert_eq!(&frame[WIRE_HEADER_LEN + 12..], b"xyz");
    }

    #[test]
    fn view_reads_without_copying() {
        let event = sample(b"payload-bytes");
        let frame = encode(&event).freeze();
        let view = WireEvent::parse(&frame).unwrap();
        assert_eq!(view.class(), EventClass::Rtp);
        assert_eq!(view.source(), event.source);
        assert_eq!(view.seq(), 77);
        assert_eq!(view.published_at(), event.published_at);
        assert_eq!(view.topic_str(), "conf/9/video");
        assert_eq!(view.payload(), b"payload-bytes");
        // The payload slice points into the frame.
        assert_eq!(view.payload().as_ptr(), frame[WIRE_HEADER_LEN + 12..].as_ptr());
    }

    #[test]
    fn decode_round_trips_owned_and_shared() {
        let event = sample(b"abc");
        let frame = encode(&event).freeze();
        assert_eq!(decode(&frame).unwrap(), event);
        let shared = decode_shared(&frame).unwrap();
        assert_eq!(shared, event);
        // Shared decode borrows the frame's storage.
        assert_eq!(
            shared.payload.as_ptr(),
            frame[WIRE_HEADER_LEN + 12..].as_ptr()
        );
    }

    #[test]
    fn empty_payload_round_trips() {
        let event = Event::new(
            Topic::parse("t").unwrap(),
            ClientId::from_raw(1),
            0,
            EventClass::Control,
            Bytes::new(),
        );
        let frame = encode(&event).freeze();
        assert_eq!(decode_shared(&frame).unwrap(), event);
        assert!(WireEvent::parse(&frame).unwrap().payload().is_empty());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let frame = encode(&sample(b"0123456789")).freeze();
        for len in 0..frame.len() {
            assert!(
                WireEvent::parse(&frame[..len]).is_err(),
                "truncation to {len} bytes must not parse"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut long = encode(&sample(b"x")).freeze().to_vec();
        long.push(0);
        assert!(matches!(
            WireEvent::parse(&long),
            Err(DecodeEventError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn bad_version_class_and_topic_are_rejected() {
        let frame = encode(&sample(b"x")).freeze();
        let mut bad = frame.to_vec();
        bad[OFF_VERSION] = 9;
        assert_eq!(decode(&bad), Err(DecodeEventError::BadVersion(9)));
        let mut bad = frame.to_vec();
        bad[OFF_CLASS] = 3;
        assert_eq!(decode(&bad), Err(DecodeEventError::BadClass(3)));
        let mut bad = frame.to_vec();
        bad[WIRE_HEADER_LEN + 5] = b'*'; // "conf/*/video": wildcard segment
        assert_eq!(decode(&bad), Err(DecodeEventError::BadTopic));
        let mut bad = frame.to_vec();
        bad[WIRE_HEADER_LEN + 4] = 0xFF; // invalid UTF-8
        assert_eq!(decode(&bad), Err(DecodeEventError::BadTopic));
        let mut bad = frame.to_vec();
        bad[WIRE_HEADER_LEN + 5] = b'/'; // "conf///video": empty segment
        assert_eq!(decode(&bad), Err(DecodeEventError::BadTopic));
    }

    #[test]
    fn pooled_encode_reuses_storage() {
        let event = sample(b"warm");
        let first = encode(&event);
        let ptr = first.as_slice().as_ptr();
        drop(first);
        let second = encode(&event);
        assert_eq!(second.as_slice().as_ptr(), ptr, "pool served the same buffer");
    }
}
