//! The broker event model.
//!
//! Everything NaradaBrokering carries — XGSP signaling, chat, raw RTP —
//! is an [`Event`]: a topic, an originating client, a per-source sequence
//! number, a priority class and an opaque payload. Events are immutable
//! once published and shared by reference ([`std::sync::Arc`]) during
//! fan-out, so delivering one event to 400 subscribers never copies the
//! payload.

use std::sync::Arc;

use bytes::Bytes;
use mmcs_util::id::ClientId;
use mmcs_util::time::SimTime;

use crate::topic::Topic;

/// Fixed per-event header overhead on the wire (topic string, source,
/// sequence, class, properties — the serialized NaradaBrokering event
/// header; NB events carried sizeable self-describing headers).
pub const EVENT_HEADER_BYTES: usize = 72;

/// Priority/semantics class of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventClass {
    /// Broker/system control traffic (subscriptions, heartbeats).
    Control,
    /// Ordinary application data (XGSP signaling, chat).
    Data,
    /// Real-time media; brokers forward these ahead of `Data` and never
    /// retry them.
    Rtp,
}

/// One published event.
///
/// # Examples
///
/// ```
/// use mmcs_broker::event::{Event, EventClass, EVENT_HEADER_BYTES};
/// use mmcs_broker::topic::Topic;
/// use bytes::Bytes;
/// use mmcs_util::id::ClientId;
///
/// let e = Event::new(
///     Topic::parse("session/1/audio")?,
///     ClientId::from_raw(3),
///     7,
///     EventClass::Rtp,
///     Bytes::from_static(&[0u8; 172]),
/// );
/// assert_eq!(e.wire_len(), 172 + EVENT_HEADER_BYTES);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The topic this event was published to.
    pub topic: Topic,
    /// The client that published it.
    pub source: ClientId,
    /// Per-source sequence number.
    pub seq: u64,
    /// Priority class.
    pub class: EventClass,
    /// Opaque payload (e.g. an encoded RTP packet).
    pub payload: Bytes,
    /// When the event was published (virtual time; `SimTime::ZERO` when
    /// the driver does not stamp times).
    pub published_at: SimTime,
}

impl Event {
    /// Creates an event stamped at `SimTime::ZERO`.
    pub fn new(
        topic: Topic,
        source: ClientId,
        seq: u64,
        class: EventClass,
        payload: Bytes,
    ) -> Self {
        Self {
            topic,
            source,
            seq,
            class,
            payload,
            published_at: SimTime::ZERO,
        }
    }

    /// Sets the publish timestamp, builder style.
    pub fn with_published_at(mut self, at: SimTime) -> Self {
        self.published_at = at;
        self
    }

    /// Bytes this event occupies on the wire.
    pub fn wire_len(&self) -> usize {
        EVENT_HEADER_BYTES + self.payload.len()
    }

    /// Wraps the event for shared fan-out.
    pub fn into_shared(self) -> Arc<Event> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_includes_header() {
        let e = Event::new(
            Topic::parse("a/b").unwrap(),
            ClientId::from_raw(1),
            0,
            EventClass::Data,
            Bytes::from_static(b"xyz"),
        );
        assert_eq!(e.wire_len(), 3 + EVENT_HEADER_BYTES);
    }

    #[test]
    fn shared_fanout_does_not_copy_payload() {
        let payload = Bytes::from(vec![7u8; 1000]);
        let ptr = payload.as_ptr();
        let event = Event::new(
            Topic::parse("t").unwrap(),
            ClientId::from_raw(1),
            0,
            EventClass::Rtp,
            payload,
        )
        .into_shared();
        let clone = Arc::clone(&event);
        assert_eq!(clone.payload.as_ptr(), ptr);
    }

    #[test]
    fn published_at_builder() {
        let e = Event::new(
            Topic::parse("t").unwrap(),
            ClientId::from_raw(1),
            0,
            EventClass::Data,
            Bytes::new(),
        )
        .with_published_at(SimTime::from_millis(5));
        assert_eq!(e.published_at, SimTime::from_millis(5));
    }
}
