//! Transport profiles.
//!
//! NaradaBrokering exposed pluggable transports — TCP, UDP, IP multicast,
//! SSL and a raw-RTP mode for legacy A/V clients — and selected one per
//! client connection. The profile determines per-packet framing overhead,
//! whether delivery is reliable (lossless in our LAN model) and the
//! relative CPU cost of moving a packet through that stack.

use mmcs_util::time::SimDuration;

/// A client↔broker transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportProfile {
    /// Plain TCP framing (the JMS-like default).
    #[default]
    Tcp,
    /// UDP datagrams; lossy links drop instead of retrying.
    Udp,
    /// IP multicast; one NIC transmission reaches every group member on
    /// the same segment.
    Multicast,
    /// TLS over TCP; highest per-packet CPU cost.
    Ssl,
    /// Raw RTP passthrough for legacy A/V endpoints that cannot speak the
    /// event protocol; the broker's RTP proxy bridges them.
    RawRtp,
}

impl TransportProfile {
    /// Framing bytes this transport adds per packet beyond the event
    /// itself (IP/transport/TLS headers).
    pub fn overhead_bytes(self) -> usize {
        match self {
            TransportProfile::Tcp => 40,      // IP + TCP
            TransportProfile::Udp => 28,      // IP + UDP
            TransportProfile::Multicast => 28,
            TransportProfile::Ssl => 69,      // IP + TCP + TLS record
            TransportProfile::RawRtp => 28,   // IP + UDP, RTP is the payload
        }
    }

    /// Whether the transport retransmits on loss.
    pub fn reliable(self) -> bool {
        matches!(self, TransportProfile::Tcp | TransportProfile::Ssl)
    }

    /// Relative CPU cost multiplier of pushing one packet through this
    /// stack (UDP = 1.0).
    pub fn cpu_factor(self) -> f64 {
        match self {
            TransportProfile::Udp | TransportProfile::RawRtp => 1.0,
            TransportProfile::Multicast => 1.0,
            TransportProfile::Tcp => 1.3,
            TransportProfile::Ssl => 2.5,
        }
    }

    /// Scales a base per-packet CPU cost by this profile's factor.
    pub fn scale_cost(self, base: SimDuration) -> SimDuration {
        base * self.cpu_factor()
    }

    /// Whether one transmission can reach multiple subscribers at once.
    pub fn is_multicast(self) -> bool {
        matches!(self, TransportProfile::Multicast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_ordered_sensibly() {
        assert!(
            TransportProfile::Udp.overhead_bytes() < TransportProfile::Tcp.overhead_bytes()
        );
        assert!(
            TransportProfile::Tcp.overhead_bytes() < TransportProfile::Ssl.overhead_bytes()
        );
        assert_eq!(
            TransportProfile::RawRtp.overhead_bytes(),
            TransportProfile::Udp.overhead_bytes()
        );
    }

    #[test]
    fn reliability_flags() {
        assert!(TransportProfile::Tcp.reliable());
        assert!(TransportProfile::Ssl.reliable());
        assert!(!TransportProfile::Udp.reliable());
        assert!(!TransportProfile::RawRtp.reliable());
        assert!(!TransportProfile::Multicast.reliable());
    }

    #[test]
    fn ssl_costs_most_cpu() {
        let base = SimDuration::from_micros(10);
        assert!(TransportProfile::Ssl.scale_cost(base) > TransportProfile::Tcp.scale_cost(base));
        assert_eq!(TransportProfile::Udp.scale_cost(base), base);
    }

    #[test]
    fn default_is_tcp() {
        assert_eq!(TransportProfile::default(), TransportProfile::Tcp);
        assert!(TransportProfile::Multicast.is_multicast());
    }
}

#[cfg(test)]
mod sim_profile_tests {
    use super::*;
    use crate::batch::CostModel;
    use crate::simdrv::{AudioPublisher, BrokerProcess, PublisherConfig, RtpReceiver};
    use crate::topic::{Topic, TopicFilter};
    use mmcs_rtp::packet::payload_type;
    use mmcs_rtp::source::{AudioCodec, AudioSource};
    use mmcs_sim::net::NicConfig;
    use mmcs_sim::Simulation;
    use mmcs_util::id::{BrokerId, ClientId};
    use mmcs_util::time::{SimDuration, SimTime};

    fn delay_with_profile(profile: TransportProfile) -> f64 {
        let mut sim = Simulation::new(4);
        let host_a = sim.add_host("a", NicConfig::default());
        let host_b = sim.add_host("b", NicConfig::default());
        let broker = sim.add_typed_process(
            host_b,
            BrokerProcess::new(BrokerId::from_raw(1), CostModel::narada()),
        );
        let topic = Topic::parse("p/audio").unwrap();
        let mut receiver = RtpReceiver::new(
            broker,
            ClientId::from_raw(2),
            TopicFilter::exact(&topic),
            payload_type::PCMU,
            SimDuration::from_micros(10),
        );
        receiver = receiver.with_profile(profile);
        let receiver = sim.add_typed_process(host_a, receiver);
        let mut config = PublisherConfig::new(broker, ClientId::from_raw(1), topic);
        config.max_packets = 50;
        sim.add_typed_process(
            host_a,
            AudioPublisher::new(config, AudioSource::new(AudioCodec::Pcmu, 1)),
        );
        sim.run_until(SimTime::from_secs(3));
        sim.process_ref::<RtpReceiver>(receiver)
            .unwrap()
            .stats()
            .delay_ms()
            .mean()
    }

    /// The SSL stack costs more CPU per delivery than UDP, which shows
    /// up as higher end-to-end delay in an otherwise identical world.
    #[test]
    fn ssl_delivery_is_slower_than_udp() {
        let udp = delay_with_profile(TransportProfile::Udp);
        let ssl = delay_with_profile(TransportProfile::Ssl);
        assert!(ssl > udp, "ssl {ssl:.4} vs udp {udp:.4}");
    }
}
