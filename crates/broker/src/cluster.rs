//! Broker federation: N sharded broker nodes joined into one cluster.
//!
//! This is the paper's NaradaBrokering layout one level up from
//! [`crate::sharded`]: each **node** runs a whole [`ShardedBroker`]
//! (one process worth of cores), nodes exchange subscription interest
//! via the anti-entropy gossip of [`crate::gossip`], and events cross
//! nodes as [`ClusterFrame`]s — a 16-byte envelope around the PR-6
//! zero-copy [`crate::wire`] event frame. Clients are homed to the
//! nearest **zone gateway** by a static [`LatencyMap`], and inter-node
//! routing follows latency-weighted shortest paths ([`RouteTable`],
//! Floyd–Warshall over the same map) with a hard hop bound
//! ([`MAX_HOPS`]) so no forwarding loop can survive.
//!
//! # Data path
//!
//! A publish enters the client's home node, is injected into that
//! node's own sharded broker ([`ShardedBroker::inject`]: local
//! deliveries plus the intra-node ring hop), and is then forwarded
//! once per *interested* node — the gossip view answers "who needs
//! this topic" from a generation-stamped cache — as an `Event` frame
//! routed hop-by-hop along the latency-weighted path. Intermediate
//! nodes relay with the hop count bumped; the destination injects the
//! embedded wire frame into its broker. Each (publish, destination)
//! pair produces exactly one frame, and every node delivers only to
//! its local subscribers, so cluster-wide delivery is exactly-once.
//!
//! # Transports
//!
//! The same worker runs over two link fabrics:
//!
//! * **in-process** — crossbeam channels between node workers, with a
//!   fault plane (down links, gossip loss) the chaos harness toggles
//!   deterministically; and
//! * **loopback TCP** ([`ClusterBuilder::tcp`]) — length-prefixed
//!   frames over real sockets, per-link sequence numbers with
//!   cumulative acks and retransmit-on-reconnect (capped exponential
//!   backoff), so a node kill mid-stream still yields exactly-once
//!   delivery after the listener returns.
//!
//! Malformed frames at either edge are rejected by typed decode
//! errors ([`DecodeClusterError`]) and counted in telemetry — never
//! panicked on: the ingress loop is in the analyzer's
//! panic-reachability root set.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::{BufMut, Bytes};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use mmcs_util::id::ClientId;
use mmcs_util::pool::{self, PooledBuf};
use parking_lot::Mutex;

use crate::event::{Event, EventClass};
use crate::gossip::{self, GossipState, InterestEntry, NodeId};
use crate::metrics::{ClusterMetrics, ClusterNodeMetrics};
use crate::sharded::{ShardedBroker, ShardedClient};
use crate::topic::{Topic, TopicFilter};
use crate::wire;

/// Cluster frame format version.
pub const CLUSTER_VERSION: u8 = 1;
/// Fixed envelope length prepended to every inter-node frame.
pub const CLUSTER_HEADER_LEN: usize = 16;
/// Hard bound on links an event frame may traverse. Any relay that
/// would push a frame past this is dropped (and counted), so even a
/// corrupted route table cannot loop a frame forever.
pub const MAX_HOPS: u8 = 8;

/// Byte offset of the version field.
pub const OFF_VERSION: usize = 0;
/// Byte offset of the frame kind.
pub const OFF_KIND: usize = 1;
/// Byte offset of the origin node id (`u16` BE).
pub const OFF_ORIGIN: usize = 2;
/// Byte offset of the destination node id (`u16` BE).
pub const OFF_DEST: usize = 4;
/// Byte offset of the hop count.
pub const OFF_HOPS: usize = 6;
/// Byte offset of the reserved byte (must be zero).
pub const OFF_RESERVED: usize = 7;
/// Byte offset of the interest generation (`u64` BE).
pub const OFF_GENERATION: usize = 8;

/// What a [`ClusterFrame`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// A routed event: the body is a [`crate::wire`] event frame.
    Event = 0,
    /// A gossip digest (version vector); body per
    /// [`gossip::encode_digest_into`].
    GossipDigest = 1,
    /// Gossip entries; body per [`gossip::encode_entries_into`].
    GossipEntries = 2,
    /// A TCP link-level cumulative ack; the generation field holds the
    /// acked link sequence and the body is empty.
    Ack = 3,
}

impl FrameKind {
    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(Self::Event),
            1 => Some(Self::GossipDigest),
            2 => Some(Self::GossipEntries),
            3 => Some(Self::Ack),
            _ => None,
        }
    }
}

/// Typed errors rejecting a malformed cluster frame. Every variant is
/// reachable from bytes off a socket; none of them panic the ingress
/// loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeClusterError {
    /// Shorter than the fixed envelope.
    Truncated,
    /// Unknown format version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Hop count above [`MAX_HOPS`] — a frame that must have looped.
    HopLimit(u8),
    /// Reserved byte not zero.
    BadReserved(u8),
    /// An `Event` frame whose embedded wire event is malformed.
    BadEvent(wire::DecodeEventError),
    /// An `Ack` frame carrying a body.
    BadBody,
}

impl std::fmt::Display for DecodeClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "cluster frame truncated"),
            Self::BadVersion(v) => write!(f, "unsupported cluster frame version {v}"),
            Self::BadKind(k) => write!(f, "unknown cluster frame kind {k}"),
            Self::HopLimit(h) => write!(f, "hop count {h} exceeds bound {MAX_HOPS}"),
            Self::BadReserved(b) => write!(f, "reserved byte is {b}, expected 0"),
            Self::BadEvent(err) => write!(f, "embedded event frame invalid: {err}"),
            Self::BadBody => write!(f, "ack frame carries a body"),
        }
    }
}

impl std::error::Error for DecodeClusterError {}

/// A validated view over an encoded cluster frame. [`parse`] checks
/// everything once (including the embedded event frame for
/// [`FrameKind::Event`]); the accessors are then infallible.
///
/// [`parse`]: ClusterFrame::parse
#[derive(Debug, Clone, Copy)]
pub struct ClusterFrame<'a> {
    raw: &'a [u8],
    kind: FrameKind,
}

impl<'a> ClusterFrame<'a> {
    /// Validates `raw` as a cluster frame.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeClusterError`] naming the first malformation.
    pub fn parse(raw: &'a [u8]) -> Result<ClusterFrame<'a>, DecodeClusterError> {
        if raw.len() < CLUSTER_HEADER_LEN {
            return Err(DecodeClusterError::Truncated);
        }
        let version = read_u8(raw, OFF_VERSION);
        if version != CLUSTER_VERSION {
            return Err(DecodeClusterError::BadVersion(version));
        }
        let kind_byte = read_u8(raw, OFF_KIND);
        let kind = FrameKind::from_byte(kind_byte).ok_or(DecodeClusterError::BadKind(kind_byte))?;
        let hops = read_u8(raw, OFF_HOPS);
        if hops > MAX_HOPS {
            return Err(DecodeClusterError::HopLimit(hops));
        }
        let reserved = read_u8(raw, OFF_RESERVED);
        if reserved != 0 {
            return Err(DecodeClusterError::BadReserved(reserved));
        }
        let body = raw.get(CLUSTER_HEADER_LEN..).unwrap_or(&[]);
        match kind {
            FrameKind::Event => {
                wire::WireEvent::parse(body).map_err(DecodeClusterError::BadEvent)?;
            }
            FrameKind::Ack => {
                if !body.is_empty() {
                    return Err(DecodeClusterError::BadBody);
                }
            }
            FrameKind::GossipDigest | FrameKind::GossipEntries => {}
        }
        Ok(ClusterFrame { raw, kind })
    }

    /// The frame kind.
    pub fn kind(&self) -> FrameKind {
        self.kind
    }

    /// The node that built this frame.
    pub fn origin(&self) -> NodeId {
        read_u16(self.raw, OFF_ORIGIN)
    }

    /// The node this frame is addressed to.
    pub fn dest(&self) -> NodeId {
        read_u16(self.raw, OFF_DEST)
    }

    /// Links traversed so far (bumped by each relay).
    pub fn hops(&self) -> u8 {
        read_u8(self.raw, OFF_HOPS)
    }

    /// The interest generation stamped at routing time (for acks: the
    /// acked link sequence).
    pub fn generation(&self) -> u64 {
        read_u64(self.raw, OFF_GENERATION)
    }

    /// The frame body after the fixed envelope.
    pub fn body(&self) -> &'a [u8] {
        self.raw.get(CLUSTER_HEADER_LEN..).unwrap_or(&[])
    }
}

fn read_u8(raw: &[u8], off: usize) -> u8 {
    raw.get(off).copied().unwrap_or(0)
}

fn read_u16(raw: &[u8], off: usize) -> u16 {
    match raw.get(off..off + 2) {
        Some(b) => u16::from_be_bytes([b[0], b[1]]),
        None => 0,
    }
}

fn read_u64(raw: &[u8], off: usize) -> u64 {
    match raw.get(off..off + 8) {
        Some(b) => {
            let mut word = [0u8; 8];
            word.copy_from_slice(b);
            u64::from_be_bytes(word)
        }
        None => 0,
    }
}

/// Writes the fixed envelope into `buf`.
pub fn encode_header_into(
    kind: FrameKind,
    origin: NodeId,
    dest: NodeId,
    hops: u8,
    generation: u64,
    buf: &mut impl BufMut,
) {
    let mut header = [0u8; CLUSTER_HEADER_LEN];
    header[OFF_VERSION] = CLUSTER_VERSION;
    header[OFF_KIND] = kind as u8;
    header[OFF_ORIGIN..OFF_ORIGIN + 2].copy_from_slice(&origin.to_be_bytes());
    header[OFF_DEST..OFF_DEST + 2].copy_from_slice(&dest.to_be_bytes());
    header[OFF_HOPS] = hops;
    header[OFF_RESERVED] = 0;
    header[OFF_GENERATION..OFF_GENERATION + 8].copy_from_slice(&generation.to_be_bytes());
    buf.put_slice(&header);
}

/// Encodes a frame with an opaque body into a pooled buffer.
pub fn encode_frame(
    kind: FrameKind,
    origin: NodeId,
    dest: NodeId,
    hops: u8,
    generation: u64,
    body: &[u8],
) -> PooledBuf {
    let mut buf = pool::acquire(CLUSTER_HEADER_LEN + body.len());
    encode_header_into(kind, origin, dest, hops, generation, &mut buf);
    buf.put_slice(body);
    buf
}

/// Encodes an [`FrameKind::Event`] frame: envelope plus the zero-copy
/// wire encoding of `event`, in one pooled buffer.
pub fn encode_event_frame(
    origin: NodeId,
    dest: NodeId,
    hops: u8,
    generation: u64,
    event: &Event,
) -> PooledBuf {
    let mut buf = pool::acquire(CLUSTER_HEADER_LEN + wire::encoded_len(event));
    encode_header_into(FrameKind::Event, origin, dest, hops, generation, &mut buf);
    wire::encode_into(event, &mut buf);
    buf
}

/// The static latency geography of a cluster: which node pairs have a
/// direct link (and its one-way latency), plus per-zone latency rows
/// used to home clients to their nearest gateway.
#[derive(Debug, Clone)]
pub struct LatencyMap {
    nodes: usize,
    links: Vec<Option<u32>>,
    zones: Vec<Vec<u32>>,
}

impl LatencyMap {
    /// A map with `nodes` nodes and no links yet.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or exceeds the `u16` id space.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        assert!(nodes <= u16::MAX as usize, "node ids are u16");
        Self {
            nodes,
            links: vec![None; nodes * nodes],
            zones: Vec::new(),
        }
    }

    /// Every pair directly linked at `latency_ms`.
    pub fn full_mesh(nodes: usize, latency_ms: u32) -> Self {
        let mut map = Self::new(nodes);
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                map.set_link(a as NodeId, b as NodeId, latency_ms);
            }
        }
        map
    }

    /// Nodes linked in a line (`0–1–2–…`) at `latency_ms` per segment —
    /// the smallest topology that exercises multi-hop relaying.
    pub fn chain(nodes: usize, latency_ms: u32) -> Self {
        let mut map = Self::new(nodes);
        for a in 1..nodes {
            map.set_link((a - 1) as NodeId, a as NodeId, latency_ms);
        }
        map
    }

    /// Sets the symmetric direct link `a ↔ b`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or `a == b`.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, latency_ms: u32) {
        let (a, b) = (a as usize, b as usize);
        assert!(a < self.nodes && b < self.nodes, "node id out of range");
        assert!(a != b, "no self links");
        self.links[a * self.nodes + b] = Some(latency_ms);
        self.links[b * self.nodes + a] = Some(latency_ms);
    }

    /// Appends a zone given its latency to every node; the zone homes
    /// to the argmin (ties break to the lowest node id).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the node count.
    pub fn with_zone(mut self, latencies_ms: Vec<u32>) -> Self {
        assert_eq!(latencies_ms.len(), self.nodes, "one latency per node");
        self.zones.push(latencies_ms);
        self
    }

    /// Direct link latency between `a` and `b`, if linked.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<u32> {
        self.links
            .get(a as usize * self.nodes + b as usize)
            .copied()
            .flatten()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of zones. Without explicit zones every node is its own
    /// zone.
    pub fn zone_count(&self) -> usize {
        if self.zones.is_empty() {
            self.nodes
        } else {
            self.zones.len()
        }
    }

    /// The gateway node clients of `zone` home to: the node with the
    /// lowest static latency from that zone (lowest id wins ties).
    /// Zones wrap modulo the zone count, and without explicit zone
    /// rows zone `z` homes to node `z % nodes`.
    pub fn home_node(&self, zone: usize) -> NodeId {
        if self.zones.is_empty() {
            return (zone % self.nodes) as NodeId;
        }
        let row = &self.zones[zone % self.zones.len()];
        let mut best = 0usize;
        for (node, latency) in row.iter().enumerate() {
            if *latency < row[best] {
                best = node;
            }
        }
        best as NodeId
    }
}

const ROUTE_INF: u64 = u64::MAX / 4;

/// All-pairs latency-weighted shortest paths over a [`LatencyMap`]
/// (Floyd–Warshall), answering "which direct neighbour do I hand a
/// frame for `dest` to". Routes are static: runtime faults drop frames
/// on the affected links instead of recomputing paths, which keeps
/// chaos runs deterministic.
#[derive(Debug)]
pub struct RouteTable {
    nodes: usize,
    dist: Vec<u64>,
    next: Vec<Option<NodeId>>,
}

impl RouteTable {
    /// Builds the table from the map's direct links.
    pub fn new(map: &LatencyMap) -> Self {
        let n = map.node_count();
        let mut dist = vec![ROUTE_INF; n * n];
        let mut next: Vec<Option<NodeId>> = vec![None; n * n];
        for a in 0..n {
            dist[a * n + a] = 0;
            for b in 0..n {
                if let Some(ms) = map.link(a as NodeId, b as NodeId) {
                    dist[a * n + b] = u64::from(ms);
                    next[a * n + b] = Some(b as NodeId);
                }
            }
        }
        for c in 0..n {
            for a in 0..n {
                for b in 0..n {
                    let via = dist[a * n + c].saturating_add(dist[c * n + b]);
                    if via < dist[a * n + b] {
                        dist[a * n + b] = via;
                        next[a * n + b] = next[a * n + c];
                    }
                }
            }
        }
        Self { nodes: n, dist, next }
    }

    /// The direct neighbour on the shortest path from `from` to `to`
    /// (`None` for self or unreachable destinations).
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        if from == to {
            return None;
        }
        self.next
            .get(from as usize * self.nodes + to as usize)
            .copied()
            .flatten()
    }

    /// Total path latency, if reachable.
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<u64> {
        let d = self
            .dist
            .get(from as usize * self.nodes + to as usize)
            .copied()?;
        (d < ROUTE_INF).then_some(d)
    }

    /// Links on the shortest path, if reachable (0 for self).
    pub fn hops(&self, from: NodeId, to: NodeId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut at = from;
        for hop in 1..=self.nodes {
            at = self.next_hop(at, to)?;
            if at == to {
                return Some(hop);
            }
        }
        None
    }
}

/// Directed per-link fault switches for the in-process transport; the
/// chaos harness flips them at deterministic schedule points.
#[derive(Debug)]
struct FaultPlane {
    nodes: usize,
    down: Vec<AtomicBool>,
    gossip_loss: Vec<AtomicBool>,
}

impl FaultPlane {
    fn new(nodes: usize) -> Self {
        Self {
            nodes,
            down: (0..nodes * nodes).map(|_| AtomicBool::new(false)).collect(),
            gossip_loss: (0..nodes * nodes).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    fn index(&self, from: NodeId, to: NodeId) -> usize {
        from as usize * self.nodes + to as usize
    }

    fn is_down(&self, from: NodeId, to: NodeId) -> bool {
        self.down
            .get(self.index(from, to))
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    fn drops_gossip(&self, from: NodeId, to: NodeId) -> bool {
        self.gossip_loss
            .get(self.index(from, to))
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    fn set_down(&self, from: NodeId, to: NodeId, down: bool) {
        if let Some(flag) = self.down.get(self.index(from, to)) {
            flag.store(down, Ordering::Relaxed);
        }
    }

    fn set_gossip_loss(&self, from: NodeId, to: NodeId, on: bool) {
        if let Some(flag) = self.gossip_loss.get(self.index(from, to)) {
            flag.store(on, Ordering::Relaxed);
        }
    }
}

/// Commands into one node's cluster worker.
enum NodeCmd {
    /// A frame off a link (either transport).
    Frame(Bytes),
    /// A publish from a locally-homed client.
    Publish(Arc<Event>),
    /// Interest bookkeeping for a locally-homed client subscription.
    Subscribe(TopicFilter),
    /// Reverse of `Subscribe`.
    Unsubscribe(TopicFilter),
    /// Start one gossip round: digest to every direct peer.
    GossipTick,
    /// Gateway restart: forget the learned view (and, with
    /// `lose_interest`, the local truth — the chaos bug hook).
    Restart { lose_interest: bool },
    /// Snapshot the gossip view (one entry per node).
    Inspect(Sender<Vec<InterestEntry>>),
    /// Flush everything ahead of this command, then ack.
    Barrier(Sender<()>),
    Shutdown,
}

/// A directed link to one peer.
enum LinkHandle {
    /// In-process: the peer worker's ingress.
    Local(Sender<NodeCmd>),
    /// Loopback TCP with reliability.
    Tcp(Arc<TcpLink>),
}

impl LinkHandle {
    fn send(&self, frame: Bytes) {
        match self {
            Self::Local(tx) => {
                let _ = tx.send(NodeCmd::Frame(frame));
            }
            Self::Tcp(link) => link.enqueue(frame),
        }
    }

    fn ack(&self, seq: u64) {
        if let Self::Tcp(link) = self {
            link.ack(seq);
        }
    }
}

/// One node's cluster-layer event loop: drains the ingress queue and
/// reacts to frames, publishes, interest changes and gossip ticks.
/// This is the federation ingress loop in the analyzer's
/// panic-reachability and blocking-call root sets: everything reachable
/// from [`ClusterWorker::run`] must be panic-free and non-blocking
/// (the sanctioned ingress `recv` aside).
struct ClusterWorker {
    me: NodeId,
    ingress: Receiver<NodeCmd>,
    links: Arc<Vec<Option<LinkHandle>>>,
    routes: Arc<RouteTable>,
    faults: Arc<FaultPlane>,
    gossip: GossipState,
    broker: Arc<ShardedBroker>,
    metrics: Arc<ClusterNodeMetrics>,
    digest_scratch: Vec<(NodeId, u64)>,
}

impl ClusterWorker {
    fn run(mut self) {
        loop {
            let Ok(cmd) = self.ingress.recv() else {
                break;
            };
            if !self.handle(cmd) {
                break;
            }
        }
    }

    /// Processes one command; returns `false` on shutdown.
    fn handle(&mut self, cmd: NodeCmd) -> bool {
        match cmd {
            NodeCmd::Frame(bytes) => self.frame(bytes),
            NodeCmd::Publish(event) => self.publish(&event),
            NodeCmd::Subscribe(filter) => {
                self.gossip.subscribe(&filter);
                self.metrics
                    .interest_entries
                    .set(self.gossip.interest_entries() as i64);
            }
            NodeCmd::Unsubscribe(filter) => {
                self.gossip.unsubscribe(&filter);
                self.metrics
                    .interest_entries
                    .set(self.gossip.interest_entries() as i64);
            }
            NodeCmd::GossipTick => self.tick(),
            NodeCmd::Restart { lose_interest } => {
                self.gossip.restart();
                if lose_interest {
                    self.gossip.wipe_local();
                }
                self.metrics
                    .interest_entries
                    .set(self.gossip.interest_entries() as i64);
            }
            NodeCmd::Inspect(tx) => {
                let view: Vec<InterestEntry> = (0..self.gossip.node_count())
                    .map(|n| self.gossip.entry(n as NodeId).clone())
                    .collect();
                let _ = tx.send(view);
            }
            NodeCmd::Barrier(ack) => {
                let _ = ack.send(());
            }
            NodeCmd::Shutdown => return false,
        }
        true
    }

    /// Fan a locally-published event out: inject into the local broker
    /// (which owns intra-node delivery) and forward one frame per
    /// remote node with matching interest along its shortest path.
    fn publish(&mut self, event: &Arc<Event>) {
        let frame = wire::encode(event).freeze();
        if self.broker.inject(frame).is_err() {
            self.metrics.decode_errors.inc();
            return;
        }
        let targets = self.gossip.targets_for(&event.topic);
        for &target in targets.iter() {
            if target == self.me {
                continue;
            }
            let generation = self.gossip.entry(target).generation;
            let frame = encode_event_frame(self.me, target, 0, generation, event).freeze();
            self.metrics.inter_node_forwards.inc();
            self.send_routed(target, frame, false);
        }
    }

    /// Validates and dispatches a frame off a link.
    fn frame(&mut self, bytes: Bytes) {
        self.metrics.frames_in.inc();
        let parsed = match ClusterFrame::parse(&bytes) {
            Ok(parsed) => parsed,
            Err(_) => {
                self.metrics.decode_errors.inc();
                return;
            }
        };
        match parsed.kind() {
            FrameKind::Event => self.event_frame(&bytes, &parsed),
            FrameKind::GossipDigest => self.digest_frame(&parsed),
            FrameKind::GossipEntries => self.entries_frame(&parsed),
            FrameKind::Ack => {
                if let Some(Some(link)) = self.links.get(parsed.origin() as usize) {
                    link.ack(parsed.generation());
                }
            }
        }
    }

    fn event_frame(&mut self, bytes: &Bytes, parsed: &ClusterFrame<'_>) {
        if parsed.dest() == self.me {
            self.metrics
                .hop_histogram
                .record(u64::from(parsed.hops()) + 1);
            if parsed.generation() < self.gossip.local_generation() {
                self.metrics.stale_generation.inc();
            }
            // Zero-copy: the injected event frame is a subslice of the
            // cluster frame's own storage.
            if self.broker.inject(bytes.slice(CLUSTER_HEADER_LEN..)).is_err() {
                self.metrics.decode_errors.inc();
            }
            return;
        }
        let hops = parsed.hops().saturating_add(1);
        if hops >= MAX_HOPS {
            self.metrics.hop_limit_drops.inc();
            return;
        }
        let relay = encode_frame(
            FrameKind::Event,
            parsed.origin(),
            parsed.dest(),
            hops,
            parsed.generation(),
            parsed.body(),
        )
        .freeze();
        self.metrics.relays.inc();
        self.send_routed(parsed.dest(), relay, false);
    }

    fn digest_frame(&mut self, parsed: &ClusterFrame<'_>) {
        let digest = match gossip::decode_digest(parsed.body()) {
            Ok(digest) => digest,
            Err(_) => {
                self.metrics.decode_errors.inc();
                return;
            }
        };
        let peer = parsed.origin();
        let entries = self.gossip.entries_newer_than(&digest);
        if !entries.is_empty() {
            let mut body = pool::acquire(256);
            gossip::encode_entries_into(&entries, &mut body);
            let frame = encode_frame(
                FrameKind::GossipEntries,
                self.me,
                peer,
                0,
                self.gossip.local_generation(),
                &body,
            )
            .freeze();
            self.send_direct(peer, frame, true);
        }
        // Pull half: answer with our own digest only while strictly
        // behind, so the exchange terminates.
        if self.gossip.behind(&digest) {
            self.send_digest(peer);
        }
    }

    fn entries_frame(&mut self, parsed: &ClusterFrame<'_>) {
        let entries = match gossip::decode_entries(parsed.body()) {
            Ok(entries) => entries,
            Err(_) => {
                self.metrics.decode_errors.inc();
                return;
            }
        };
        let applied = self.gossip.apply(&entries);
        if applied > 0 {
            self.metrics.gossip_entries_applied.add(applied as u64);
            self.metrics
                .interest_entries
                .set(self.gossip.interest_entries() as i64);
        }
    }

    fn tick(&mut self) {
        self.metrics.gossip_rounds.inc();
        for peer in 0..self.links.len() {
            if self
                .links
                .get(peer)
                .is_some_and(|link| link.is_some())
            {
                self.send_digest(peer as NodeId);
            }
        }
    }

    fn send_digest(&mut self, peer: NodeId) {
        self.gossip.digest_into(&mut self.digest_scratch);
        let mut body = pool::acquire(64);
        gossip::encode_digest_into(&self.digest_scratch, &mut body);
        let frame = encode_frame(
            FrameKind::GossipDigest,
            self.me,
            peer,
            0,
            self.gossip.local_generation(),
            &body,
        )
        .freeze();
        self.send_direct(peer, frame, true);
    }

    /// Hands `frame` to the next hop along the shortest path to `dest`.
    fn send_routed(&mut self, dest: NodeId, frame: Bytes, is_gossip: bool) {
        let Some(next) = self.routes.next_hop(self.me, dest) else {
            self.metrics.no_route_drops.inc();
            return;
        };
        self.send_direct(next, frame, is_gossip);
    }

    /// Sends on the direct link to `peer`, honouring the fault plane.
    fn send_direct(&mut self, peer: NodeId, frame: Bytes, is_gossip: bool) {
        if self.faults.is_down(self.me, peer) {
            self.metrics.link_drops.inc();
            return;
        }
        if is_gossip && self.faults.drops_gossip(self.me, peer) {
            self.metrics.gossip_drops.inc();
            return;
        }
        match self.links.get(peer as usize) {
            Some(Some(link)) => link.send(frame),
            _ => self.metrics.no_route_drops.inc(),
        }
    }
}

const BACKOFF_MIN: Duration = Duration::from_millis(5);
const BACKOFF_MAX: Duration = Duration::from_millis(250);
const LINK_TICK: Duration = Duration::from_millis(20);
/// Upper bound on one length-prefixed TCP frame (envelope + wire event).
const MAX_TCP_FRAME: usize = 8 * 1024 * 1024;

enum LinkOp {
    Send(Bytes),
    Ack(u64),
}

/// The sending half of one directed TCP link: a queue drained by a
/// dedicated thread that owns the socket, assigns per-link sequence
/// numbers to event frames, retransmits unacked frames after a
/// reconnect, and backs off exponentially (capped) while the peer is
/// down. Unreliable frames (gossip, acks) ride sequence 0 and are
/// dropped on failure — anti-entropy re-heals them by design.
struct TcpLink {
    ops: Sender<LinkOp>,
}

impl TcpLink {
    fn spawn(
        me: NodeId,
        peer_addr: SocketAddr,
        metrics: Arc<ClusterNodeMetrics>,
    ) -> (Arc<TcpLink>, JoinHandle<()>) {
        let (ops, rx) = unbounded();
        let handle = std::thread::Builder::new()
            .name(format!("mmcs-link{me}"))
            .spawn(move || run_link(me, peer_addr, &rx, &metrics))
            .expect("spawn tcp link thread");
        (Arc::new(TcpLink { ops }), handle)
    }

    fn enqueue(&self, frame: Bytes) {
        let _ = self.ops.send(LinkOp::Send(frame));
    }

    fn ack(&self, seq: u64) {
        let _ = self.ops.send(LinkOp::Ack(seq));
    }
}

/// Link sender-thread state while connected.
struct LinkConn {
    stream: TcpStream,
}

/// The link sender loop. Panic-free: every IO failure tears the
/// connection down and lets the backoff/retransmit machinery recover.
fn run_link(me: NodeId, peer: SocketAddr, ops: &Receiver<LinkOp>, metrics: &ClusterNodeMetrics) {
    let mut conn: Option<LinkConn> = None;
    let mut unacked: VecDeque<(u64, Bytes)> = VecDeque::new();
    let mut next_seq: u64 = 1;
    let mut backoff = BACKOFF_MIN;
    let mut ever_connected = false;
    loop {
        match ops.recv_timeout(LINK_TICK) {
            Ok(LinkOp::Ack(seq)) => {
                while unacked.front().is_some_and(|(s, _)| *s <= seq) {
                    unacked.pop_front();
                }
            }
            Ok(LinkOp::Send(frame)) => {
                let reliable = frame.get(OFF_KIND).copied() == Some(FrameKind::Event as u8);
                if reliable {
                    let seq = next_seq;
                    next_seq += 1;
                    unacked.push_back((seq, frame.clone()));
                    if ensure_connected(
                        me,
                        peer,
                        &mut conn,
                        &unacked,
                        &mut backoff,
                        &mut ever_connected,
                        metrics,
                    ) {
                        // The frame just joined `unacked`, so the
                        // connect-time flush above already wrote it if
                        // the connection was re-established; only write
                        // here when the link was already up.
                        if unacked.back().is_some_and(|(s, _)| *s == seq)
                            && !write_frame(&mut conn, seq, &frame)
                        {
                            // Connection died on this write; the frame
                            // stays queued for the next reconnect.
                        }
                    }
                } else if ensure_connected(
                    me,
                    peer,
                    &mut conn,
                    &unacked,
                    &mut backoff,
                    &mut ever_connected,
                    metrics,
                ) {
                    let _ = write_frame(&mut conn, 0, &frame);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if !unacked.is_empty() {
                    ensure_connected(
                        me,
                        peer,
                        &mut conn,
                        &unacked,
                        &mut backoff,
                        &mut ever_connected,
                        metrics,
                    );
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Connects (one attempt per call, sleeping the current backoff on
/// failure) and flushes the retransmit queue. Returns whether the link
/// is up afterwards.
fn ensure_connected(
    me: NodeId,
    peer: SocketAddr,
    conn: &mut Option<LinkConn>,
    unacked: &VecDeque<(u64, Bytes)>,
    backoff: &mut Duration,
    ever_connected: &mut bool,
    metrics: &ClusterNodeMetrics,
) -> bool {
    if conn.is_some() {
        return true;
    }
    let stream = match TcpStream::connect(peer) {
        Ok(stream) => stream,
        Err(_) => {
            std::thread::sleep(*backoff);
            *backoff = (*backoff * 2).min(BACKOFF_MAX);
            return false;
        }
    };
    let _ = stream.set_nodelay(true);
    *conn = Some(LinkConn { stream });
    // Preamble: who is calling. The accept side keys its per-peer
    // dedup state on this id.
    let preamble = me.to_be_bytes();
    if let Some(c) = conn.as_mut() {
        if c.stream.write_all(&preamble).is_err() {
            *conn = None;
            std::thread::sleep(*backoff);
            *backoff = (*backoff * 2).min(BACKOFF_MAX);
            return false;
        }
    }
    if *ever_connected {
        metrics.reconnects.inc();
    }
    *ever_connected = true;
    *backoff = BACKOFF_MIN;
    // Retransmit everything unacked, in order. The receiver dedups on
    // link sequence, so frames the old connection already delivered
    // are counted and dropped there — exactly-once survives the kill.
    for (seq, frame) in unacked {
        if !write_frame(conn, *seq, frame) {
            return false;
        }
    }
    true
}

/// Writes one `[u32 len][u64 seq][frame]` record; tears the connection
/// down (returning `false`) on any IO error.
fn write_frame(conn: &mut Option<LinkConn>, seq: u64, frame: &Bytes) -> bool {
    let Some(c) = conn.as_mut() else {
        return false;
    };
    let total = frame.len().saturating_add(8);
    if total > MAX_TCP_FRAME {
        // Never send something the peer will reject outright.
        return true;
    }
    let mut header = [0u8; 12];
    header[..4].copy_from_slice(&(total as u32).to_be_bytes());
    header[4..].copy_from_slice(&seq.to_be_bytes());
    let ok = c.stream.write_all(&header).is_ok() && c.stream.write_all(frame).is_ok();
    if !ok {
        *conn = None;
    }
    ok
}

/// Per-node state shared between the accept loop, its per-connection
/// reader threads, and the cluster handle.
struct TcpNode {
    addr: SocketAddr,
    accepting: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    /// Highest link sequence accepted per claimed peer id; survives
    /// reconnects, which is what makes retransmits exactly-once.
    last_seq: Arc<Mutex<HashMap<NodeId, u64>>>,
    accept_handle: Option<JoinHandle<()>>,
}

/// Arguments shared by every reader thread of one node.
#[derive(Clone)]
struct ReaderCtx {
    me: NodeId,
    ingress: Sender<NodeCmd>,
    links: Arc<Vec<Option<LinkHandle>>>,
    last_seq: Arc<Mutex<HashMap<NodeId, u64>>>,
    metrics: Arc<ClusterNodeMetrics>,
}

/// Accept loop for one node's listener. Exits when `accepting` clears
/// (woken by a dummy connection from `drop_listener`).
fn run_accept(listener: TcpListener, accepting: Arc<AtomicBool>, conns: Arc<Mutex<Vec<TcpStream>>>, ctx: ReaderCtx) {
    for stream in listener.incoming() {
        if !accepting.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Ok(clone) = stream.try_clone() {
            conns.lock().push(clone);
        }
        let ctx = ctx.clone();
        let _ = std::thread::Builder::new()
            .name(format!("mmcs-accept{}", ctx.me))
            .spawn(move || run_reader(stream, &ctx));
    }
}

/// Reads length-prefixed frames off one accepted connection, dedups by
/// link sequence, delivers to the worker and acks. Malformed input is
/// counted and either skipped (bad frame body — framing still intact)
/// or ends the connection (bad length — cannot resync). Never panics.
fn run_reader(mut stream: TcpStream, ctx: &ReaderCtx) {
    let mut peer_bytes = [0u8; 2];
    if stream.read_exact(&mut peer_bytes).is_err() {
        return;
    }
    let peer = NodeId::from_be_bytes(peer_bytes);
    let mut header = [0u8; 12];
    loop {
        if stream.read_exact(&mut header).is_err() {
            return;
        }
        let total = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let seq = u64::from_be_bytes([
            header[4], header[5], header[6], header[7], header[8], header[9], header[10],
            header[11],
        ]);
        if !(8..=MAX_TCP_FRAME).contains(&total) {
            // A garbage length desynchronizes the stream: count it and
            // drop the connection; the sender reconnects and
            // retransmits.
            ctx.metrics.decode_errors.inc();
            return;
        }
        let mut raw = vec![0u8; total - 8];
        if stream.read_exact(&mut raw).is_err() {
            return;
        }
        // Validate at the socket edge so garbage is charged to the
        // connection that sent it, then once more (free) in the worker.
        if ClusterFrame::parse(&raw).is_err() {
            ctx.metrics.decode_errors.inc();
            continue;
        }
        let frame = Bytes::from_owner(raw);
        if seq == 0 {
            let _ = ctx.ingress.send(NodeCmd::Frame(frame));
            continue;
        }
        let ack_to = {
            let mut last = ctx.last_seq.lock();
            let entry = last.entry(peer).or_insert(0);
            if seq <= *entry {
                ctx.metrics.duplicate_frames.inc();
            } else {
                *entry = seq;
                let _ = ctx.ingress.send(NodeCmd::Frame(frame));
            }
            *entry
        };
        let ack = encode_frame(FrameKind::Ack, ctx.me, peer, 0, ack_to, &[]).freeze();
        if let Some(Some(link)) = ctx.links.get(peer as usize) {
            link.send(ack);
        }
    }
}

/// Which link fabric a cluster runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transport {
    InProcess,
    Tcp,
}

/// Configures a [`Cluster`] before spawning it.
pub struct ClusterBuilder {
    latency: LatencyMap,
    shards: usize,
    metrics: Option<Arc<ClusterMetrics>>,
    transport: Transport,
}

impl ClusterBuilder {
    /// Starts configuring a cluster over `latency`'s topology with one
    /// shard per node broker.
    pub fn new(latency: LatencyMap) -> Self {
        Self {
            latency,
            shards: 1,
            metrics: None,
            transport: Transport::InProcess,
        }
    }

    /// Worker shards inside each node's broker.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Installs per-node telemetry; the bundle's node count must match
    /// the latency map's.
    pub fn metrics(mut self, metrics: Arc<ClusterMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Runs inter-node links over real loopback TCP sockets instead of
    /// in-process channels.
    pub fn tcp(mut self) -> Self {
        self.transport = Transport::Tcp;
        self
    }

    /// Spawns the node workers (and, for TCP, listeners and links).
    ///
    /// # Panics
    ///
    /// Panics if an installed metrics bundle's node count mismatches
    /// the map, or if a TCP listener cannot bind on 127.0.0.1.
    pub fn spawn(self) -> Cluster {
        Cluster::spawn_inner(self)
    }
}

/// One federation cluster: `n` node workers, each owning a
/// [`ShardedBroker`], joined by gossip and the routed event plane. See
/// the [module docs](self).
pub struct Cluster {
    shared: Arc<ClusterShared>,
    workers: Vec<JoinHandle<()>>,
    link_handles: Vec<JoinHandle<()>>,
    /// Each node's outbound links, kept for listener restoration
    /// (reader threads ack through them).
    links_by_node: Vec<Arc<Vec<Option<LinkHandle>>>>,
    tcp: Option<Vec<TcpNode>>,
    /// Extra settle time per quiesce round; `Some` on TCP, where
    /// barriers cannot flush in-flight socket frames.
    settle_pause: Option<Duration>,
}

struct ClusterShared {
    latency: LatencyMap,
    routes: Arc<RouteTable>,
    metrics: Arc<ClusterMetrics>,
    faults: Arc<FaultPlane>,
    nodes: Vec<Sender<NodeCmd>>,
    brokers: Vec<Arc<ShardedBroker>>,
    next_client: AtomicU64,
}

impl Cluster {
    /// Spawns an in-process cluster over `latency` with single-shard
    /// node brokers — the common test configuration.
    pub fn spawn(latency: LatencyMap) -> Cluster {
        ClusterBuilder::new(latency).spawn()
    }

    /// Starts configuring a cluster.
    pub fn builder(latency: LatencyMap) -> ClusterBuilder {
        ClusterBuilder::new(latency)
    }

    fn spawn_inner(builder: ClusterBuilder) -> Cluster {
        let n = builder.latency.node_count();
        let metrics = builder
            .metrics
            .unwrap_or_else(|| ClusterMetrics::detached(n));
        assert!(
            metrics.node_count() == n,
            "metrics bundle has {} nodes, cluster has {n}",
            metrics.node_count()
        );
        let faults = Arc::new(FaultPlane::new(n));
        let routes = Arc::new(RouteTable::new(&builder.latency));
        let brokers: Vec<Arc<ShardedBroker>> = (0..n)
            .map(|_| Arc::new(ShardedBroker::spawn(builder.shards)))
            .collect();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<NodeCmd>();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut link_handles = Vec::new();
        let mut tcp_nodes: Option<Vec<TcpNode>> = None;
        let mut node_links: Vec<Arc<Vec<Option<LinkHandle>>>> = Vec::with_capacity(n);
        match builder.transport {
            Transport::InProcess => {
                for me in 0..n {
                    let links: Vec<Option<LinkHandle>> = (0..n)
                        .map(|peer| {
                            (peer != me
                                && builder.latency.link(me as NodeId, peer as NodeId).is_some())
                            .then(|| LinkHandle::Local(senders[peer].clone()))
                        })
                        .collect();
                    node_links.push(Arc::new(links));
                }
            }
            Transport::Tcp => {
                let listeners: Vec<TcpListener> = (0..n)
                    .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind cluster listener"))
                    .collect();
                let addrs: Vec<SocketAddr> = listeners
                    .iter()
                    .map(|l| l.local_addr().expect("listener addr"))
                    .collect();
                for me in 0..n {
                    let links: Vec<Option<LinkHandle>> = (0..n)
                        .map(|peer| {
                            (peer != me
                                && builder.latency.link(me as NodeId, peer as NodeId).is_some())
                            .then(|| {
                                let (link, handle) = TcpLink::spawn(
                                    me as NodeId,
                                    addrs[peer],
                                    Arc::clone(metrics.node(me)),
                                );
                                link_handles.push(handle);
                                LinkHandle::Tcp(link)
                            })
                        })
                        .collect();
                    node_links.push(Arc::new(links));
                }
                let mut nodes = Vec::with_capacity(n);
                for (me, listener) in listeners.into_iter().enumerate() {
                    let accepting = Arc::new(AtomicBool::new(true));
                    let conns = Arc::new(Mutex::new(Vec::new()));
                    let last_seq = Arc::new(Mutex::new(HashMap::new()));
                    let ctx = ReaderCtx {
                        me: me as NodeId,
                        ingress: senders[me].clone(),
                        links: Arc::clone(&node_links[me]),
                        last_seq: Arc::clone(&last_seq),
                        metrics: Arc::clone(metrics.node(me)),
                    };
                    let accept_handle = {
                        let accepting = Arc::clone(&accepting);
                        let conns = Arc::clone(&conns);
                        std::thread::Builder::new()
                            .name(format!("mmcs-listen{me}"))
                            .spawn(move || run_accept(listener, accepting, conns, ctx))
                            .expect("spawn cluster listener thread")
                    };
                    nodes.push(TcpNode {
                        addr: addrs[me],
                        accepting,
                        conns,
                        last_seq,
                        accept_handle: Some(accept_handle),
                    });
                }
                tcp_nodes = Some(nodes);
            }
        }
        let mut workers = Vec::with_capacity(n);
        for (me, ingress) in receivers.into_iter().enumerate() {
            let worker = ClusterWorker {
                me: me as NodeId,
                ingress,
                links: Arc::clone(&node_links[me]),
                routes: Arc::clone(&routes),
                faults: Arc::clone(&faults),
                gossip: GossipState::new(me as NodeId, n),
                broker: Arc::clone(&brokers[me]),
                metrics: Arc::clone(metrics.node(me)),
                digest_scratch: Vec::new(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("mmcs-cluster{me}"))
                .spawn(move || worker.run())
                .expect("spawn cluster node worker");
            workers.push(handle);
        }
        let settle_pause =
            (builder.transport == Transport::Tcp).then(|| Duration::from_millis(25));
        Cluster {
            shared: Arc::new(ClusterShared {
                latency: builder.latency,
                routes,
                metrics,
                faults,
                nodes: senders,
                brokers,
                next_client: AtomicU64::new(1),
            }),
            workers,
            link_handles,
            links_by_node: node_links,
            tcp: tcp_nodes,
            settle_pause,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.shared.nodes.len()
    }

    /// The per-node telemetry bundles.
    pub fn metrics(&self) -> &Arc<ClusterMetrics> {
        &self.shared.metrics
    }

    /// The static route table.
    pub fn routes(&self) -> &RouteTable {
        &self.shared.routes
    }

    /// The latency map this cluster was built from.
    pub fn latency(&self) -> &LatencyMap {
        &self.shared.latency
    }

    /// Node `index`'s inner broker (tests peek at shard placement).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn broker(&self, index: usize) -> &Arc<ShardedBroker> {
        &self.shared.brokers[index]
    }

    /// Attaches a client homed to `zone`'s nearest gateway node. Client
    /// ids are allocated at cluster scope, so they stay unique across
    /// nodes and survive [`ClusterClient::move_to_zone`].
    pub fn attach(&self, zone: usize) -> ClusterClient {
        let id = ClientId::from_raw(self.shared.next_client.fetch_add(1, Ordering::Relaxed));
        let node = self.shared.latency.home_node(zone);
        let inner = self
            .shared
            .brokers
            .get(node as usize)
            .map(|b| b.attach_as(id))
            .expect("home node in range");
        ClusterClient {
            id,
            shared: Arc::clone(&self.shared),
            state: Mutex::new(ClientState {
                zone,
                node,
                inner,
                filters: Vec::new(),
                stash: VecDeque::new(),
            }),
            seq: AtomicU64::new(0),
        }
    }

    /// Waits until every command enqueued before this call — including
    /// multi-hop relays and intra-node ring forwards it generates —
    /// has been processed. One barrier round flushes one link hop, so
    /// `max(n,2)+2` rounds cover the longest relay chain plus the
    /// gossip push-pull depth; each round also quiesces every node
    /// broker. Over TCP an extra pause per round lets in-flight socket
    /// frames land (barriers cannot observe them).
    pub fn quiesce(&self) {
        let rounds = self.node_count().max(2) + 2;
        for _ in 0..rounds {
            let (tx, rx) = unbounded();
            for node in &self.shared.nodes {
                let _ = node.send(NodeCmd::Barrier(tx.clone()));
            }
            drop(tx);
            while rx.recv().is_ok() {}
            if let Some(pause) = self.settle_pause {
                std::thread::sleep(pause);
            }
            for broker in &self.shared.brokers {
                broker.quiesce();
            }
        }
    }

    /// Runs one gossip round (every node digests to its direct peers)
    /// and settles it.
    pub fn gossip_round(&self) {
        for node in &self.shared.nodes {
            let _ = node.send(NodeCmd::GossipTick);
        }
        self.quiesce();
    }

    /// Snapshots node `index`'s gossip view: one [`InterestEntry`] per
    /// node, entry `index` being its local truth.
    pub fn snapshot(&self, index: usize) -> Vec<InterestEntry> {
        let (tx, rx) = unbounded();
        if let Some(node) = self.shared.nodes.get(index) {
            let _ = node.send(NodeCmd::Inspect(tx));
        }
        rx.recv_timeout(Duration::from_secs(5)).unwrap_or_default()
    }

    /// Whether every node's view of every other node matches that
    /// node's local truth — the gossip convergence invariant.
    pub fn converged(&self) -> bool {
        let n = self.node_count();
        let snapshots: Vec<Vec<InterestEntry>> = (0..n).map(|i| self.snapshot(i)).collect();
        for (holder, view) in snapshots.iter().enumerate() {
            if view.len() != n {
                return false;
            }
            for (subject, entry) in view.iter().enumerate() {
                let truth = snapshots
                    .get(subject)
                    .and_then(|view| view.get(subject));
                if truth != Some(entry) && holder != subject {
                    return false;
                }
            }
        }
        true
    }

    /// Gossips until [`Cluster::converged`] or `max_rounds` is spent;
    /// returns whether convergence was reached.
    pub fn converge(&self, max_rounds: usize) -> bool {
        for _ in 0..max_rounds {
            if self.converged() {
                return true;
            }
            self.gossip_round();
        }
        self.converged()
    }

    /// Severs or restores the symmetric link `a ↔ b` (in-process
    /// fault plane; frames on a down link are dropped and counted).
    pub fn set_link_down(&self, a: NodeId, b: NodeId, down: bool) {
        self.shared.faults.set_down(a, b, down);
        self.shared.faults.set_down(b, a, down);
    }

    /// Drops (or stops dropping) gossip frames on the symmetric link
    /// `a ↔ b` while event frames keep flowing — the gossip-loss
    /// chaos fault.
    pub fn set_gossip_loss(&self, a: NodeId, b: NodeId, on: bool) {
        self.shared.faults.set_gossip_loss(a, b, on);
        self.shared.faults.set_gossip_loss(b, a, on);
    }

    /// Crashes node `index`'s gateway: every link to and from it drops
    /// frames until [`Cluster::restart`].
    pub fn crash(&self, index: NodeId) {
        for peer in 0..self.node_count() as u16 {
            if peer != index {
                self.shared.faults.set_down(index, peer, true);
                self.shared.faults.set_down(peer, index, true);
            }
        }
    }

    /// Restores node `index` after [`Cluster::crash`]: links come back
    /// and the node's gossip view restarts empty (its local truth
    /// survives unless `lose_interest` injects the resync bug the
    /// chaos harness hunts for).
    pub fn restart(&self, index: NodeId, lose_interest: bool) {
        for peer in 0..self.node_count() as u16 {
            if peer != index {
                self.shared.faults.set_down(index, peer, false);
                self.shared.faults.set_down(peer, index, false);
            }
        }
        if let Some(node) = self.shared.nodes.get(index as usize) {
            let _ = node.send(NodeCmd::Restart { lose_interest });
        }
    }

    /// The loopback address node `index`'s listener is bound on, or
    /// `None` on the in-process transport (or out-of-range index).
    pub fn listener_addr(&self, index: usize) -> Option<SocketAddr> {
        self.tcp.as_ref()?.get(index).map(|node| node.addr)
    }

    /// Drops node `index`'s TCP listener and shuts every accepted
    /// connection — the mid-stream kill of the reconnect test. No-op
    /// on the in-process transport.
    pub fn drop_listener(&mut self, index: usize) {
        let Some(nodes) = self.tcp.as_mut() else {
            return;
        };
        let Some(node) = nodes.get_mut(index) else {
            return;
        };
        node.accepting.store(false, Ordering::Relaxed);
        // Wake the accept loop so it observes the flag and exits,
        // releasing the port.
        let _ = TcpStream::connect(node.addr);
        if let Some(handle) = node.accept_handle.take() {
            let _ = handle.join();
        }
        for stream in node.conns.lock().drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Rebinds node `index`'s listener on its original address and
    /// resumes accepting; peers' links reconnect with backoff and
    /// retransmit their unacked frames.
    ///
    /// # Panics
    ///
    /// Panics if the original address cannot be rebound after retries.
    pub fn restore_listener(&mut self, index: usize) {
        let Some(nodes) = self.tcp.as_mut() else {
            return;
        };
        let Some(node) = nodes.get_mut(index) else {
            return;
        };
        let mut listener = None;
        for _ in 0..200 {
            match TcpListener::bind(node.addr) {
                Ok(bound) => {
                    listener = Some(bound);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        let listener = listener.expect("rebind cluster listener");
        node.accepting.store(true, Ordering::Relaxed);
        let ctx = ReaderCtx {
            me: index as NodeId,
            ingress: self.shared.nodes[index].clone(),
            links: Arc::clone(&self.links_by_node[index]),
            last_seq: Arc::clone(&node.last_seq),
            metrics: Arc::clone(self.shared.metrics.node(index)),
        };
        let accepting = Arc::clone(&node.accepting);
        let conns = Arc::clone(&node.conns);
        node.accept_handle = Some(
            std::thread::Builder::new()
                .name(format!("mmcs-listen{index}"))
                .spawn(move || run_accept(listener, accepting, conns, ctx))
                .expect("respawn cluster listener thread"),
        );
    }

    /// Stops every node worker and broker (idempotent).
    pub fn shutdown(&self) {
        for node in &self.shared.nodes {
            let _ = node.send(NodeCmd::Shutdown);
        }
        for broker in &self.shared.brokers {
            broker.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(nodes) = self.tcp.as_mut() {
            for node in nodes.iter_mut() {
                node.accepting.store(false, Ordering::Relaxed);
                let _ = TcpStream::connect(node.addr);
                if let Some(handle) = node.accept_handle.take() {
                    let _ = handle.join();
                }
                for stream in node.conns.lock().drain(..) {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Link sender threads exit when their op channel disconnects;
        // the senders live inside the LinkHandles, so every clone must
        // go before the joins below can return. Workers dropped theirs
        // on exit, reader threads dropped theirs when their connections
        // were shut above — this is the last one.
        self.links_by_node.clear();
        for handle in self.link_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.node_count())
            .field("tcp", &self.tcp.is_some())
            .finish_non_exhaustive()
    }
}

/// Mutable per-client state behind the [`ClusterClient`] handle.
struct ClientState {
    zone: usize,
    node: NodeId,
    inner: ShardedClient,
    filters: Vec<TopicFilter>,
    /// Deliveries drained from the previous gateway during a move,
    /// handed out before new ones so nothing is lost or reordered.
    stash: VecDeque<Arc<Event>>,
}

/// A client of the federation: homed on one zone gateway, movable
/// between zones, publishing and receiving through its current node.
pub struct ClusterClient {
    id: ClientId,
    shared: Arc<ClusterShared>,
    state: Mutex<ClientState>,
    seq: AtomicU64,
}

impl ClusterClient {
    /// This client's cluster-unique id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The node currently homing this client.
    pub fn node(&self) -> NodeId {
        self.state.lock().node
    }

    /// The zone this client last homed to.
    pub fn zone(&self) -> usize {
        self.state.lock().zone
    }

    /// Subscribes to `filter`: locally on the home node's broker, and
    /// cluster-wide via the gossip interest plane. Duplicate
    /// subscriptions are a no-op, mirroring [`crate::node::BrokerNode`].
    pub fn subscribe(&self, filter: TopicFilter) {
        let mut state = self.state.lock();
        if state.filters.contains(&filter) {
            return;
        }
        state.inner.subscribe(filter.clone());
        if let Some(node) = self.shared.nodes.get(state.node as usize) {
            let _ = node.send(NodeCmd::Subscribe(filter.clone()));
        }
        state.filters.push(filter);
    }

    /// Removes one subscription; a filter this client does not hold is
    /// a no-op.
    pub fn unsubscribe(&self, filter: &TopicFilter) {
        let mut state = self.state.lock();
        let Some(pos) = state.filters.iter().position(|f| f == filter) else {
            return;
        };
        state.filters.remove(pos);
        state.inner.unsubscribe(filter.clone());
        if let Some(node) = self.shared.nodes.get(state.node as usize) {
            let _ = node.send(NodeCmd::Unsubscribe(filter.clone()));
        }
    }

    /// Publishes a data event through the home gateway.
    pub fn publish(&self, topic: Topic, payload: Bytes) {
        self.publish_class(topic, EventClass::Data, payload);
    }

    /// Publishes with an explicit class. The sequence counter lives in
    /// this handle, so per-source ordering survives zone moves.
    pub fn publish_class(&self, topic: Topic, class: EventClass, payload: Bytes) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = Event::new(topic, self.id, seq, class, payload).into_shared();
        let node = self.state.lock().node;
        if let Some(tx) = self.shared.nodes.get(node as usize) {
            let _ = tx.send(NodeCmd::Publish(event));
        }
    }

    /// Rehomes this client to `zone`'s nearest gateway. Pending
    /// deliveries are drained into a stash first, so with the cluster
    /// quiesced a move loses and reorders nothing; subscriptions are
    /// re-established on the new node and withdrawn from the old one.
    pub fn move_to_zone(&self, zone: usize) {
        let mut state = self.state.lock();
        state.zone = zone;
        let new_node = self.shared.latency.home_node(zone);
        if new_node == state.node {
            return;
        }
        let mut pending = Vec::new();
        state.inner.drain_into(&mut pending);
        state.stash.extend(pending);
        let old_node = state.node;
        for filter in state.filters.clone() {
            state.inner.unsubscribe(filter.clone());
            if let Some(node) = self.shared.nodes.get(old_node as usize) {
                let _ = node.send(NodeCmd::Unsubscribe(filter));
            }
        }
        let new_inner = self
            .shared
            .brokers
            .get(new_node as usize)
            .map(|b| b.attach_as(self.id))
            .expect("home node in range");
        // Replacing the handle detaches the old attachment on drop.
        state.inner = new_inner;
        for filter in state.filters.clone() {
            state.inner.subscribe(filter.clone());
            if let Some(node) = self.shared.nodes.get(new_node as usize) {
                let _ = node.send(NodeCmd::Subscribe(filter));
            }
        }
        state.node = new_node;
    }

    /// Receives the next delivered event, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Arc<Event>> {
        let mut state = self.state.lock();
        if let Some(event) = state.stash.pop_front() {
            return Some(event);
        }
        state.inner.recv_timeout(timeout)
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Option<Arc<Event>> {
        let mut state = self.state.lock();
        if let Some(event) = state.stash.pop_front() {
            return Some(event);
        }
        state.inner.try_recv()
    }

    /// Drains everything currently delivered into `sink`, stashed
    /// events first; returns how many were appended.
    pub fn drain_into(&self, sink: &mut Vec<Arc<Event>>) -> usize {
        let mut state = self.state.lock();
        let before = sink.len();
        sink.extend(state.stash.drain(..));
        state.inner.drain_into(sink);
        sink.len() - before
    }
}

impl std::fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("ClusterClient")
            .field("id", &self.id)
            .field("node", &state.node)
            .field("zone", &state.zone)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic(s: &str) -> Topic {
        Topic::parse(s).expect("valid topic")
    }

    fn filter(s: &str) -> TopicFilter {
        TopicFilter::parse(s).expect("valid filter")
    }

    fn sample_event() -> Event {
        Event::new(
            topic("session/7/video"),
            ClientId::from_raw(42),
            3,
            EventClass::Data,
            Bytes::from_static(b"frame"),
        )
    }

    #[test]
    fn frame_roundtrip_preserves_header_fields() {
        let event = sample_event();
        let buf = encode_event_frame(2, 5, 1, 9, &event);
        let parsed = ClusterFrame::parse(&buf).expect("valid frame");
        assert_eq!(parsed.kind(), FrameKind::Event);
        assert_eq!(parsed.origin(), 2);
        assert_eq!(parsed.dest(), 5);
        assert_eq!(parsed.hops(), 1);
        assert_eq!(parsed.generation(), 9);
        let wire = wire::WireEvent::parse(parsed.body()).expect("valid body");
        assert_eq!(wire.topic_str(), "session/7/video");
        assert_eq!(wire.seq(), 3);
    }

    #[test]
    fn parse_rejects_each_malformation_with_its_own_error() {
        let event = sample_event();
        let good = encode_event_frame(0, 1, 0, 0, &event);

        for cut in 0..CLUSTER_HEADER_LEN {
            assert_eq!(
                ClusterFrame::parse(&good[..cut]).unwrap_err(),
                DecodeClusterError::Truncated,
                "prefix of {cut} bytes"
            );
        }

        let mut bad = good.to_vec();
        bad[OFF_VERSION] = 9;
        assert_eq!(
            ClusterFrame::parse(&bad).unwrap_err(),
            DecodeClusterError::BadVersion(9)
        );

        let mut bad = good.to_vec();
        bad[OFF_KIND] = 200;
        assert_eq!(
            ClusterFrame::parse(&bad).unwrap_err(),
            DecodeClusterError::BadKind(200)
        );

        let mut bad = good.to_vec();
        bad[OFF_HOPS] = MAX_HOPS + 1;
        assert_eq!(
            ClusterFrame::parse(&bad).unwrap_err(),
            DecodeClusterError::HopLimit(MAX_HOPS + 1)
        );

        let mut bad = good.to_vec();
        bad[OFF_RESERVED] = 1;
        assert_eq!(
            ClusterFrame::parse(&bad).unwrap_err(),
            DecodeClusterError::BadReserved(1)
        );

        // Event frame whose embedded wire event is cut short.
        let truncated_body = &good[..good.len() - 1];
        assert!(matches!(
            ClusterFrame::parse(truncated_body).unwrap_err(),
            DecodeClusterError::BadEvent(_)
        ));

        // Ack frames must have an empty body.
        let ack = encode_frame(FrameKind::Ack, 0, 1, 0, 7, b"junk");
        assert_eq!(
            ClusterFrame::parse(&ack).unwrap_err(),
            DecodeClusterError::BadBody
        );
        let ack = encode_frame(FrameKind::Ack, 0, 1, 0, 7, &[]);
        let parsed = ClusterFrame::parse(&ack).expect("valid ack");
        assert_eq!(parsed.generation(), 7);
    }

    #[test]
    fn zones_home_to_their_lowest_latency_node() {
        let map = LatencyMap::full_mesh(3, 5)
            .with_zone(vec![1, 10, 10])
            .with_zone(vec![10, 1, 10])
            .with_zone(vec![7, 7, 7]);
        assert_eq!(map.home_node(0), 0);
        assert_eq!(map.home_node(1), 1);
        // Ties break to the lowest node id.
        assert_eq!(map.home_node(2), 0);
        // Zones wrap.
        assert_eq!(map.home_node(4), 1);
    }

    #[test]
    fn route_table_walks_the_chain() {
        let map = LatencyMap::chain(4, 10);
        let routes = RouteTable::new(&map);
        assert_eq!(routes.next_hop(0, 3), Some(1));
        assert_eq!(routes.next_hop(1, 3), Some(2));
        assert_eq!(routes.hops(0, 3), Some(3));
        assert_eq!(routes.distance(0, 3), Some(30));
        assert_eq!(routes.next_hop(2, 2), None);
        assert_eq!(routes.hops(2, 2), Some(0));
    }

    #[test]
    fn route_table_prefers_lower_latency_detours() {
        // Direct 0-2 link is expensive; 0-1-2 is cheaper.
        let mut map = LatencyMap::new(3);
        map.set_link(0, 2, 100);
        map.set_link(0, 1, 10);
        map.set_link(1, 2, 10);
        let routes = RouteTable::new(&map);
        assert_eq!(routes.next_hop(0, 2), Some(1));
        assert_eq!(routes.distance(0, 2), Some(20));
    }

    #[test]
    fn cross_node_publish_reaches_remote_subscriber() {
        let cluster = Cluster::spawn(LatencyMap::full_mesh(2, 5));
        let publisher = cluster.attach(0);
        let subscriber = cluster.attach(1);
        assert_ne!(publisher.node(), subscriber.node());
        subscriber.subscribe(filter("session/7/*"));
        cluster.converge(8);

        publisher.publish(topic("session/7/video"), Bytes::from_static(b"frame"));
        cluster.quiesce();

        let mut got = Vec::new();
        subscriber.drain_into(&mut got);
        assert_eq!(got.len(), 1, "exactly one delivery across the hop");
        assert_eq!(got[0].source, publisher.id());
        let forwards = cluster.metrics().total(|m| m.inter_node_forwards.get());
        assert_eq!(forwards, 1, "one frame per interested remote node");
    }

    #[test]
    fn chain_cluster_relays_across_intermediate_nodes() {
        let cluster = Cluster::spawn(LatencyMap::chain(4, 5));
        let publisher = cluster.attach(0);
        let subscriber = cluster.attach(3);
        subscriber.subscribe(filter("session/#"));
        cluster.converge(12);

        publisher.publish(topic("session/9/audio"), Bytes::from_static(b"pkt"));
        cluster.quiesce();

        let mut got = Vec::new();
        subscriber.drain_into(&mut got);
        assert_eq!(got.len(), 1);
        let relays = cluster.metrics().total(|m| m.relays.get());
        assert_eq!(relays, 2, "nodes 1 and 2 each relay once");
        assert_eq!(
            cluster.metrics().node(3).hop_histogram.snapshot().max(),
            Some(3),
            "delivery after three links"
        );
        assert_eq!(cluster.metrics().total(|m| m.hop_limit_drops.get()), 0);
    }

    #[test]
    fn uninterested_nodes_receive_no_event_frames() {
        let cluster = Cluster::spawn(LatencyMap::full_mesh(3, 5));
        let publisher = cluster.attach(0);
        let near = cluster.attach(0);
        near.subscribe(filter("session/7/*"));
        cluster.converge(8);

        publisher.publish(topic("session/7/video"), Bytes::from_static(b"frame"));
        cluster.quiesce();

        let mut got = Vec::new();
        near.drain_into(&mut got);
        assert_eq!(got.len(), 1);
        assert_eq!(
            cluster.metrics().total(|m| m.inter_node_forwards.get()),
            0,
            "no remote node subscribed, so nothing crosses a link"
        );
    }

    #[test]
    fn crash_and_restart_reconverges_interest() {
        let cluster = Cluster::spawn(LatencyMap::full_mesh(3, 5));
        let sub = cluster.attach(1);
        sub.subscribe(filter("chat/#"));
        assert!(cluster.converge(8));

        cluster.quiesce();
        cluster.crash(1);
        // Node 2 learns nothing new while 1 is dark.
        let extra = cluster.attach(1);
        extra.subscribe(filter("mail/#"));
        cluster.gossip_round();
        assert!(!cluster.converged(), "partitioned cluster cannot converge");

        cluster.restart(1, false);
        assert!(cluster.converge(12), "healed cluster reconverges");

        let publisher = cluster.attach(0);
        publisher.publish(topic("mail/inbox"), Bytes::from_static(b"m"));
        cluster.quiesce();
        let mut got = Vec::new();
        extra.drain_into(&mut got);
        assert_eq!(got.len(), 1, "post-heal interest routes events again");
    }

    #[test]
    fn client_move_keeps_subscriptions_and_pending_deliveries() {
        let map = LatencyMap::full_mesh(2, 5)
            .with_zone(vec![1, 10])
            .with_zone(vec![10, 1]);
        let cluster = Cluster::spawn(map);
        let publisher = cluster.attach(0);
        let mover = cluster.attach(0);
        mover.subscribe(filter("session/7/*"));
        cluster.converge(8);

        publisher.publish(topic("session/7/video"), Bytes::from_static(b"a"));
        cluster.quiesce();

        mover.move_to_zone(1);
        assert_eq!(mover.node(), 1);
        cluster.converge(8);

        publisher.publish(topic("session/7/video"), Bytes::from_static(b"b"));
        cluster.quiesce();

        let mut got = Vec::new();
        mover.drain_into(&mut got);
        let payloads: Vec<&[u8]> = got.iter().map(|e| e.payload.as_ref()).collect();
        assert_eq!(
            payloads,
            vec![b"a".as_ref(), b"b".as_ref()],
            "stashed delivery first, post-move delivery second"
        );
    }

    #[test]
    fn stale_generation_is_counted_but_still_delivered() {
        let cluster = Cluster::spawn(LatencyMap::full_mesh(2, 5));
        let publisher = cluster.attach(0);
        let subscriber = cluster.attach(1);
        subscriber.subscribe(filter("a/#"));
        cluster.converge(8);

        // Bump node 1's local generation after node 0 learned it.
        subscriber.subscribe(filter("b/#"));
        // Do NOT gossip: node 0 now holds a stale view of node 1.
        publisher.publish(topic("a/x"), Bytes::from_static(b"p"));
        cluster.quiesce();

        let mut got = Vec::new();
        subscriber.drain_into(&mut got);
        assert_eq!(got.len(), 1, "stale generation still delivers");
        assert_eq!(cluster.metrics().node(1).stale_generation.get(), 1);
    }

    #[test]
    fn malformed_frames_are_counted_not_crashed_on() {
        let cluster = Cluster::spawn(LatencyMap::full_mesh(2, 5));
        // Reach into node 0's ingress the way a link would.
        let sent = cluster.shared.nodes[0]
            .send(NodeCmd::Frame(Bytes::from_static(b"garbage")))
            .is_ok();
        assert!(sent, "worker alive");
        cluster.quiesce();
        assert_eq!(cluster.metrics().node(0).decode_errors.get(), 1);
        // Worker survived: a real publish still flows.
        let client = cluster.attach(0);
        client.subscribe(filter("t/#"));
        cluster.converge(8);
        client.publish(topic("t/x"), Bytes::from_static(b"ok"));
        cluster.quiesce();
        let mut got = Vec::new();
        client.drain_into(&mut got);
        assert_eq!(got.len(), 1);
    }
}
