//! Sharded multi-worker broker runtime.
//!
//! [`ShardedBroker`] partitions the topic space across N worker shards.
//! Each shard runs its own [`BrokerNode`] slice on a dedicated OS
//! thread — with its own generation-stamped route cache — and drains an
//! ingress MPSC queue in batches (via [`crate::batch::Batcher`]), so a
//! publish costs one queue hand-off and deliveries coalesce into one
//! channel send per client per drained batch.
//!
//! # Topology
//!
//! * **Topic ownership**: a publish to topic `t` enters exactly one
//!   *owner* shard, chosen by a stable FNV-1a hash of `t`'s **first
//!   segment**. A session's control and media topics share a first
//!   segment (`session/42/…`), so they colocate on one shard and their
//!   relative order is preserved end-to-end.
//! * **Client homing**: every client has a *home* shard (hash of its
//!   id). All of the client's subscriptions live as **local**
//!   subscriptions only on its home shard's node, so overlapping
//!   filters dedup in one place and each event is delivered at most
//!   once.
//! * **Cross-shard forwarding ring**: shards link to each other as
//!   peers at startup. When a client's filter can match topics owned by
//!   another shard, the router registers refcounted *remote* interest
//!   there (peer id = the client's home shard). A publish then touches
//!   at most the owner shard plus the subscriber home shards: the owner
//!   routes, `Forward` actions hop once over the ring, and the home
//!   shard delivers from its own route plan without re-forwarding.
//!
//! # Consistency model
//!
//! Control operations (attach/detach/subscribe/unsubscribe) are
//! broadcast to all shards and become visible shard-by-shard; data
//! routing is exact between control epochs. Commands from one thread
//! stay FIFO per shard queue, so the classic "subscribe, then publish"
//! sequence from a single thread is reliably delivered, exactly like
//! [`crate::threaded::ThreadedBroker`]. Tests settle in-flight traffic
//! with [`ShardedBroker::quiesce`].
//!
//! # Backpressure
//!
//! Each shard's queue depth is tracked by a gauge that producers bump
//! **before** enqueueing (so the worker's decrement can never race it
//! below zero — the same discipline as the threaded driver). Client
//! publishes spin-yield while the owner shard's depth is at the
//! configured soft capacity; worker-originated sends (forwards,
//! barriers) never block, so the ring cannot deadlock.
//!
//! # Examples
//!
//! ```
//! use mmcs_broker::sharded::ShardedBroker;
//! use mmcs_broker::topic::{Topic, TopicFilter};
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let broker = ShardedBroker::spawn(4);
//! let publisher = broker.attach();
//! let subscriber = broker.attach();
//! subscriber.subscribe(TopicFilter::parse("news/#")?);
//!
//! publisher.publish(Topic::parse("news/tech")?, Bytes::from_static(b"hello"));
//! let event = subscriber.recv_timeout(Duration::from_secs(1)).unwrap();
//! assert_eq!(&event.payload[..], b"hello");
//! broker.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use mmcs_telemetry::Gauge;
use mmcs_util::id::{BrokerId, ClientId};
use parking_lot::Mutex;

use crate::batch::Batcher;
use crate::event::{Event, EventClass};
use crate::metrics::{BrokerMetrics, ShardedBrokerMetrics};
use crate::node::{Action, BrokerNode, Input, Origin};
use crate::profile::TransportProfile;
use crate::topic::{Topic, TopicFilter};
use crate::wire;

/// Most commands a shard worker drains per wakeup.
const SHARD_BATCH_MAX: usize = 64;
/// Payload-byte budget per drained batch.
const SHARD_BATCH_BYTES: usize = 256 * 1024;
/// Default soft per-shard queue capacity (publishes spin past this).
const DEFAULT_SHARD_CAPACITY: usize = 65_536;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Stable owner shard for a topic first segment: FNV-1a of the segment
/// bytes modulo the shard count. Public so other shard layouts — the
/// simulator bridge in [`crate::shardsim`], capacity harnesses — place
/// topics exactly where the live runtime would.
pub fn owner_shard(head: &str, shards: usize) -> usize {
    (fnv1a_bytes(head.as_bytes()) % shards as u64) as usize
}

/// Stable home shard for a client id: FNV-1a of the id's little-endian
/// bytes modulo the shard count. Public for the same reason as
/// [`owner_shard`] — one placement function, every deployment shape.
pub fn home_shard(client: ClientId, shards: usize) -> usize {
    (fnv1a_bytes(&client.value().to_le_bytes()) % shards as u64) as usize
}

/// The owner shard for a whole topic (hash of its first segment; empty
/// topics fall back to shard 0, mirroring [`ShardedClient::publish_class`]).
pub fn owner_shard_of_topic(topic: &Topic, shards: usize) -> usize {
    match topic.segments().first() {
        Some(head) => owner_shard(head, shards),
        None => 0,
    }
}

fn owner_of(head: &str, shards: usize) -> usize {
    owner_shard(head, shards)
}

fn home_of(client: ClientId, shards: usize) -> usize {
    home_shard(client, shards)
}

/// Whether shard `index` can own topics matching `filter`. A literal
/// head pins the filter to one shard; a wildcard head (`*` or bare `#`)
/// can match topics on every shard.
fn shard_may_own(filter: &TopicFilter, index: usize, shards: usize) -> bool {
    match filter.first_literal() {
        Some(head) => owner_of(head, shards) == index,
        None => true,
    }
}

enum ShardCmd {
    Attach {
        client: ClientId,
        profile: TransportProfile,
        /// `Some` only on the client's home shard.
        delivery: Option<Sender<Vec<Arc<Event>>>>,
    },
    Detach(ClientId),
    Subscribe(ClientId, TopicFilter),
    Unsubscribe(ClientId, TopicFilter),
    Publish(ClientId, Arc<Event>),
    /// An event hopping the ring from its owner shard to a subscriber's
    /// home shard, carried as a pooled [`wire`] frame: the sender encodes
    /// once, every target shard shares the same frame storage, and the
    /// receiver decodes zero-copy. Delivered from the receiving shard's
    /// route plan and never re-forwarded.
    Forward(Bytes),
    /// An event arriving from *outside* this broker — another cluster
    /// node forwarded it over the federation wire. Same pooled frame
    /// encoding as `Forward`, but it enters at the topic's owner shard
    /// and fans out exactly like a local publish (local deliveries plus
    /// one ring hop to subscriber home shards). It is never sent back
    /// to the cluster: inter-node routing happens a layer above, in
    /// [`crate::cluster`].
    Inject(Bytes),
    /// Flush everything queued ahead of this command, then ack.
    Barrier(Sender<()>),
    /// Sleep the worker (chaos/backpressure testing).
    Stall(Duration),
    Shutdown,
}

fn cmd_bytes(cmd: &ShardCmd) -> usize {
    match cmd {
        ShardCmd::Publish(_, event) => event.payload.len(),
        ShardCmd::Forward(frame) | ShardCmd::Inject(frame) => frame.len(),
        _ => 0,
    }
}

/// One shard's ingress endpoint plus its producer-side depth gauge.
#[derive(Clone)]
struct ShardLink {
    ingress: Sender<ShardCmd>,
    depth: Arc<Gauge>,
}

impl ShardLink {
    /// Sends, bumping the depth gauge first so the worker's decrement
    /// can never race it below zero; reverts the bump if the shard is
    /// already gone.
    fn send(&self, cmd: ShardCmd) {
        self.depth.add(1);
        if self.ingress.send(cmd).is_err() {
            self.depth.sub(1);
        }
    }
}

/// Shared command-routing state between the broker handle, its clients,
/// and (read-only) the workers.
struct Router {
    shards: Vec<ShardLink>,
    capacity: usize,
    shutdown: AtomicBool,
    next_client: AtomicU64,
}

impl Router {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn broadcast(&self, mut make: impl FnMut() -> ShardCmd) {
        for link in &self.shards {
            link.send(make());
        }
    }

    /// Client-publish enqueue with soft backpressure: spin-yield while
    /// the owner shard's queue is at capacity. The shutdown flag breaks
    /// the spin so publishers can never hang on a dead broker.
    fn publish_to(&self, shard: usize, cmd: ShardCmd) {
        // Shard indices come from `owner_of(_, self.shard_count())`, so
        // this lookup cannot miss; `get` keeps the hot path panic-free.
        let Some(link) = self.shards.get(shard) else {
            return;
        };
        while link.depth.get() >= self.capacity as i64 && !self.shutdown.load(Ordering::Relaxed) {
            std::thread::yield_now();
        }
        link.send(cmd);
    }
}

/// Configures a [`ShardedBroker`] before spawning it.
#[derive(Default)]
pub struct ShardedBrokerBuilder {
    shards: usize,
    capacity: usize,
    metrics: Option<Arc<ShardedBrokerMetrics>>,
}

impl ShardedBrokerBuilder {
    /// Soft per-shard queue capacity; client publishes spin-yield while
    /// the owner shard's depth is at or above it. Defaults to 65 536.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Installs per-shard telemetry. The bundle's shard count must
    /// match the builder's.
    pub fn metrics(mut self, metrics: Arc<ShardedBrokerMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Spawns the worker threads.
    ///
    /// # Panics
    ///
    /// Panics if the shard count or capacity is zero, or if an installed
    /// metrics bundle was registered for a different shard count.
    pub fn spawn(self) -> ShardedBroker {
        assert!(self.shards > 0, "shard count must be positive");
        assert!(self.capacity > 0, "shard capacity must be positive");
        if let Some(m) = &self.metrics {
            assert!(
                m.shard_count() == self.shards,
                "metrics bundle has {} shards, broker has {}",
                m.shard_count(),
                self.shards
            );
        }
        ShardedBroker::spawn_inner(self.shards, self.capacity, self.metrics)
    }
}

/// A broker runtime spread across N worker shards. See the
/// [module docs](self) for the topology.
pub struct ShardedBroker {
    router: Arc<Router>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardedBroker {
    /// Spawns `shards` worker threads with default capacity and no
    /// telemetry.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn spawn(shards: usize) -> Self {
        Self::builder(shards).spawn()
    }

    /// Spawns one worker per bundle shard with telemetry installed:
    /// each shard's node reports the hot-path instruments, the ingress
    /// gauges double as `queue_depth`, batch sizes land in
    /// `batch_size`, and ring sends in `cross_shard_forwards`.
    ///
    /// # Panics
    ///
    /// Panics if the bundle has zero shards.
    pub fn spawn_with_metrics(metrics: Arc<ShardedBrokerMetrics>) -> Self {
        Self::builder(metrics.shard_count()).metrics(metrics).spawn()
    }

    /// Starts configuring a broker with `shards` worker shards.
    pub fn builder(shards: usize) -> ShardedBrokerBuilder {
        ShardedBrokerBuilder {
            shards,
            capacity: DEFAULT_SHARD_CAPACITY,
            metrics: None,
        }
    }

    fn spawn_inner(
        shards: usize,
        capacity: usize,
        metrics: Option<Arc<ShardedBrokerMetrics>>,
    ) -> Self {
        let mut links = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for index in 0..shards {
            let (tx, rx) = unbounded::<ShardCmd>();
            let depth = match &metrics {
                Some(m) => Arc::clone(&m.shard(index).queue_depth),
                None => Arc::new(Gauge::new()),
            };
            links.push(ShardLink { ingress: tx, depth });
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(shards);
        for (index, ingress) in receivers.into_iter().enumerate() {
            let worker = ShardWorker {
                index,
                shards,
                ingress,
                links: links.clone(),
                metrics: metrics.as_ref().map(|m| Arc::clone(m.shard(index))),
                node: BrokerNode::new(BrokerId::from_raw(index as u64)),
                deliveries: HashMap::new(),
                filters: HashMap::new(),
                remote_refs: HashMap::new(),
                out_buffers: HashMap::new(),
                acks: Vec::new(),
                actions: Vec::new(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("mmcs-shard{index}"))
                .spawn(move || worker.run())
                .expect("spawn shard worker thread");
            handles.push(handle);
        }
        Self {
            router: Arc::new(Router {
                shards: links,
                capacity,
                shutdown: AtomicBool::new(false),
                next_client: AtomicU64::new(1),
            }),
            handles,
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.router.shard_count()
    }

    /// The shard that owns publishes to `topic` (hash of its first
    /// segment).
    pub fn shard_for_topic(&self, topic: &Topic) -> usize {
        owner_shard_of_topic(topic, self.shard_count())
    }

    /// The shard holding `client`'s subscriptions and delivery queue.
    pub fn home_shard(&self, client: ClientId) -> usize {
        home_of(client, self.shard_count())
    }

    /// Attaches a client with the default (TCP) profile.
    pub fn attach(&self) -> ShardedClient {
        self.attach_with(TransportProfile::default())
    }

    /// Attaches a client with an explicit transport profile. The client
    /// is attached on every shard (publish validation is local to the
    /// owner shard) but homed — subscriptions and deliveries — on one.
    pub fn attach_with(&self, profile: TransportProfile) -> ShardedClient {
        let id = ClientId::from_raw(self.router.next_client.fetch_add(1, Ordering::Relaxed));
        self.attach_as_with(id, profile)
    }

    /// Attaches a client under a caller-chosen id with the default
    /// profile. See [`ShardedBroker::attach_as_with`].
    pub fn attach_as(&self, id: ClientId) -> ShardedClient {
        self.attach_as_with(id, TransportProfile::default())
    }

    /// Attaches a client under a caller-chosen id. The federation layer
    /// ([`crate::cluster`]) allocates client ids at cluster scope so
    /// they stay globally unique across nodes and survive a client
    /// moving between zone gateways. The caller owns uniqueness: a
    /// duplicate id is rejected shard-side and the returned handle
    /// receives nothing.
    pub fn attach_as_with(&self, id: ClientId, profile: TransportProfile) -> ShardedClient {
        let home = self.home_shard(id);
        let (tx, rx) = unbounded();
        for (index, link) in self.router.shards.iter().enumerate() {
            link.send(ShardCmd::Attach {
                client: id,
                profile,
                delivery: (index == home).then(|| tx.clone()),
            });
        }
        ShardedClient {
            id,
            home,
            router: Arc::clone(&self.router),
            deliveries: rx,
            pending: Mutex::new(VecDeque::new()),
            seq: AtomicU64::new(0),
        }
    }

    /// Injects an externally-routed event, carried as a pooled [`wire`]
    /// frame, into this broker as if it had been published locally: the
    /// frame is validated, enqueued at its topic's owner shard (with the
    /// same soft backpressure as a client publish), delivered to local
    /// subscribers and ring-forwarded to subscriber home shards. The
    /// event is **not** re-advertised or routed back out — the caller
    /// (the cluster layer) owns inter-node routing.
    ///
    /// # Errors
    ///
    /// Returns the typed decode error if the frame is not a valid wire
    /// event; nothing is enqueued in that case.
    pub fn inject(&self, frame: Bytes) -> Result<(), wire::DecodeEventError> {
        let parsed = wire::WireEvent::parse(&frame)?;
        let shard = match parsed.topic_str().split('/').next() {
            Some(head) if !head.is_empty() => owner_of(head, self.shard_count()),
            _ => 0,
        };
        self.router.publish_to(shard, ShardCmd::Inject(frame));
        Ok(())
    }

    /// Waits until every command enqueued before this call — including
    /// cross-shard forwards those commands generate — has been
    /// processed and its deliveries flushed. Two barrier rounds
    /// suffice because forwarding is one-hop: round one drains direct
    /// publishes (enqueueing their forwards), round two drains the
    /// forwards.
    pub fn quiesce(&self) {
        for _ in 0..2 {
            let (tx, rx) = unbounded();
            for link in &self.router.shards {
                link.send(ShardCmd::Barrier(tx.clone()));
            }
            drop(tx);
            while rx.recv().is_ok() {}
        }
    }

    /// Sleeps shard `index`'s worker for `duration` once it reaches
    /// this command — a deterministic way to pile up its ingress queue
    /// for backpressure and chaos tests.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn stall_shard(&self, index: usize, duration: Duration) {
        self.router.shards[index].send(ShardCmd::Stall(duration));
    }

    /// Stops all worker shards (idempotent). Clients created from this
    /// broker stop receiving deliveries, and any publisher spinning on
    /// backpressure unblocks.
    pub fn shutdown(&self) {
        self.router.shutdown.store(true, Ordering::Relaxed);
        for link in &self.router.shards {
            link.send(ShardCmd::Shutdown);
        }
    }
}

impl Drop for ShardedBroker {
    fn drop(&mut self) {
        self.shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ShardedBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBroker")
            .field("shards", &self.shard_count())
            .finish_non_exhaustive()
    }
}

/// A client handle bound to a [`ShardedBroker`]. Deliveries arrive as
/// coalesced batches (one channel send per home-shard drain) and are
/// handed out one event at a time.
pub struct ShardedClient {
    id: ClientId,
    home: usize,
    router: Arc<Router>,
    deliveries: Receiver<Vec<Arc<Event>>>,
    pending: Mutex<VecDeque<Arc<Event>>>,
    seq: AtomicU64,
}

impl ShardedClient {
    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// This client's home shard index.
    pub fn home_shard(&self) -> usize {
        self.home
    }

    /// Subscribes to a filter. The subscription is broadcast to all
    /// shards; the home shard records it locally and topic-owning
    /// shards gain refcounted remote interest pointing home.
    pub fn subscribe(&self, filter: TopicFilter) {
        self.router
            .broadcast(|| ShardCmd::Subscribe(self.id, filter.clone()));
    }

    /// Removes one subscription.
    pub fn unsubscribe(&self, filter: TopicFilter) {
        self.router
            .broadcast(|| ShardCmd::Unsubscribe(self.id, filter.clone()));
    }

    /// Publishes a data event to its owner shard, spinning briefly if
    /// that shard's queue is at the soft capacity.
    pub fn publish(&self, topic: Topic, payload: bytes::Bytes) {
        self.publish_class(topic, EventClass::Data, payload);
    }

    /// Publishes an event with an explicit class.
    pub fn publish_class(&self, topic: Topic, class: EventClass, payload: bytes::Bytes) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = match topic.segments().first() {
            Some(head) => owner_of(head, self.router.shard_count()),
            None => 0,
        };
        let event = Event::new(topic, self.id, seq, class, payload).into_shared();
        self.router
            .publish_to(shard, ShardCmd::Publish(self.id, event));
    }

    /// Receives the next delivered event, waiting up to `timeout` for a
    /// new batch if none is pending.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Arc<Event>> {
        // The pending lock is released before the blocking wait so a
        // concurrent `try_recv`/`drain_into` never stalls behind it.
        {
            let mut pending = self.pending.lock();
            if let Some(event) = pending.pop_front() {
                return Some(event);
            }
        }
        match self.deliveries.recv_timeout(timeout) {
            Ok(batch) => {
                let mut pending = self.pending.lock();
                pending.extend(batch);
                pending.pop_front()
            }
            Err(_) => None,
        }
    }

    /// Drains everything currently delivered into `sink` without
    /// blocking, returning how many events were appended. This is the
    /// batch-consumption counterpart of the workers' batched hand-off:
    /// one lock acquisition moves the whole pending queue, and each
    /// buffered batch is appended with a single channel receive —
    /// per-event cost is a pointer move instead of a lock + pop.
    pub fn drain_into(&self, sink: &mut Vec<Arc<Event>>) -> usize {
        let before = sink.len();
        {
            let mut pending = self.pending.lock();
            if !pending.is_empty() {
                sink.extend(pending.drain(..));
            }
        }
        while let Ok(batch) = self.deliveries.try_recv() {
            sink.extend(batch);
        }
        sink.len() - before
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Option<Arc<Event>> {
        // Mirrors `recv_timeout`: no lock held across the channel poll.
        {
            let mut pending = self.pending.lock();
            if let Some(event) = pending.pop_front() {
                return Some(event);
            }
        }
        match self.deliveries.try_recv() {
            Ok(batch) => {
                let mut pending = self.pending.lock();
                pending.extend(batch);
                pending.pop_front()
            }
            Err(_) => None,
        }
    }

    /// Detaches this client everywhere (also done on drop).
    pub fn detach(&self) {
        self.router.broadcast(|| ShardCmd::Detach(self.id));
    }
}

impl Drop for ShardedClient {
    fn drop(&mut self) {
        self.detach();
    }
}

impl std::fmt::Debug for ShardedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedClient")
            .field("id", &self.id)
            .field("home", &self.home)
            .finish_non_exhaustive()
    }
}

/// Per-worker state: one node slice plus the driver-level subscription
/// ownership map.
struct ShardWorker {
    index: usize,
    shards: usize,
    ingress: Receiver<ShardCmd>,
    links: Vec<ShardLink>,
    metrics: Option<Arc<BrokerMetrics>>,
    node: BrokerNode,
    /// Delivery channels for clients homed on this shard.
    deliveries: HashMap<ClientId, Sender<Vec<Arc<Event>>>>,
    /// Every client's filter list (all shards track all clients, so
    /// duplicate subscribes dedup identically everywhere).
    filters: HashMap<ClientId, Vec<TopicFilter>>,
    /// Refcounts for remote interest this shard holds on behalf of
    /// other shards' clients, keyed by (home shard, filter).
    remote_refs: HashMap<(usize, TopicFilter), usize>,
    /// Per-client delivery buffers, flushed as one channel send per
    /// client per drained batch.
    out_buffers: HashMap<ClientId, Vec<Arc<Event>>>,
    /// Barrier acks owed after the current batch's flush.
    acks: Vec<Sender<()>>,
    /// Scratch action buffer reused across commands.
    actions: Vec<Action>,
}

impl ShardWorker {
    fn run(mut self) {
        if let Some(m) = &self.metrics {
            self.node.set_metrics(Arc::clone(m));
        }
        // Ring setup: every other shard is a peer. Advertise actions
        // are discarded — interest is driven by the router's explicit
        // subscription broadcast, not the node's advert gossip.
        for peer in 0..self.shards {
            if peer == self.index {
                continue;
            }
            let _ = self.node.handle_into(
                Input::LinkUp {
                    peer: BrokerId::from_raw(peer as u64),
                },
                &mut self.actions,
            );
            self.actions.clear();
        }
        let mut batcher: Batcher<ShardCmd> = Batcher::new(SHARD_BATCH_MAX, SHARD_BATCH_BYTES);
        'outer: loop {
            let Ok(first) = self.ingress.recv() else {
                break;
            };
            let bytes = cmd_bytes(&first);
            let batch = match batcher.push(first, bytes) {
                Some(batch) => batch,
                None => loop {
                    match self.ingress.try_recv() {
                        Ok(cmd) => {
                            let bytes = cmd_bytes(&cmd);
                            if let Some(batch) = batcher.push(cmd, bytes) {
                                break batch;
                            }
                        }
                        Err(_) => match batcher.flush() {
                            Some(batch) => break batch,
                            None => continue 'outer,
                        },
                    }
                },
            };
            if !self.process_batch(batch.items) {
                break;
            }
        }
    }

    /// Processes one drained batch; returns `false` on shutdown.
    fn process_batch(&mut self, commands: Vec<ShardCmd>) -> bool {
        if let Some(m) = &self.metrics {
            m.batch_size.record(commands.len() as u64);
        }
        let mut stop = false;
        for cmd in commands {
            if let Some(m) = &self.metrics {
                m.queue_depth.sub(1);
            } else if let Some(link) = self.links.get(self.index) {
                link.depth.sub(1);
            }
            match cmd {
                ShardCmd::Attach {
                    client,
                    profile,
                    delivery,
                } => {
                    if let Some(tx) = delivery {
                        self.deliveries.insert(client, tx);
                    }
                    let _ = self
                        .node
                        .handle_into(Input::AttachClient { client, profile }, &mut self.actions);
                    self.actions.clear();
                }
                ShardCmd::Detach(client) => self.detach(client),
                ShardCmd::Subscribe(client, filter) => self.subscribe(client, filter),
                ShardCmd::Unsubscribe(client, filter) => self.unsubscribe(client, filter),
                ShardCmd::Publish(client, event) => self.publish(client, event),
                ShardCmd::Forward(frame) => self.deliver_forwarded(frame),
                ShardCmd::Inject(frame) => self.inject(frame),
                ShardCmd::Barrier(ack) => self.acks.push(ack),
                ShardCmd::Stall(duration) => std::thread::sleep(duration),
                ShardCmd::Shutdown => stop = true,
            }
        }
        for (client, buffer) in &mut self.out_buffers {
            if buffer.is_empty() {
                continue;
            }
            match self.deliveries.get(client) {
                Some(tx) => {
                    let _ = tx.send(std::mem::take(buffer));
                }
                None => buffer.clear(),
            }
        }
        for ack in self.acks.drain(..) {
            let _ = ack.send(());
        }
        !stop
    }

    fn subscribe(&mut self, client: ClientId, filter: TopicFilter) {
        let known = self
            .filters
            .get(&client)
            .is_some_and(|fs| fs.contains(&filter));
        if known {
            return; // duplicate subscribe: no-op, same as the node.
        }
        self.filters
            .entry(client)
            .or_default()
            .push(filter.clone());
        let home = home_of(client, self.shards);
        if home == self.index {
            let _ = self
                .node
                .handle_into(Input::Subscribe { client, filter }, &mut self.actions);
            self.actions.clear();
        } else if shard_may_own(&filter, self.index, self.shards) {
            self.add_remote_ref(home, filter);
        }
    }

    fn unsubscribe(&mut self, client: ClientId, filter: TopicFilter) {
        let removed = match self.filters.get_mut(&client) {
            Some(fs) => match fs.iter().position(|f| *f == filter) {
                Some(pos) => {
                    fs.remove(pos);
                    true
                }
                None => false,
            },
            None => false,
        };
        if !removed {
            return;
        }
        let home = home_of(client, self.shards);
        if home == self.index {
            let _ = self
                .node
                .handle_into(Input::Unsubscribe { client, filter }, &mut self.actions);
            self.actions.clear();
        } else if shard_may_own(&filter, self.index, self.shards) {
            self.drop_remote_ref(home, filter);
        }
    }

    fn detach(&mut self, client: ClientId) {
        self.deliveries.remove(&client);
        self.out_buffers.remove(&client);
        let home = home_of(client, self.shards);
        if let Some(filters) = self.filters.remove(&client) {
            if home != self.index {
                for filter in filters {
                    if shard_may_own(&filter, self.index, self.shards) {
                        self.drop_remote_ref(home, filter);
                    }
                }
            }
            // Home-shard local subscriptions fall with DetachClient.
        }
        let _ = self
            .node
            .handle_into(Input::DetachClient { client }, &mut self.actions);
        self.actions.clear();
    }

    fn add_remote_ref(&mut self, home: usize, filter: TopicFilter) {
        let refs = self.remote_refs.entry((home, filter.clone())).or_insert(0);
        *refs += 1;
        if *refs == 1 {
            let _ = self.node.handle_into(
                Input::RemoteSubscribe {
                    peer: BrokerId::from_raw(home as u64),
                    filter,
                },
                &mut self.actions,
            );
            self.actions.clear();
        }
    }

    fn drop_remote_ref(&mut self, home: usize, filter: TopicFilter) {
        let gone = match self.remote_refs.get_mut(&(home, filter.clone())) {
            Some(refs) => {
                *refs = refs.saturating_sub(1);
                *refs == 0
            }
            None => false,
        };
        if gone {
            self.remote_refs.remove(&(home, filter.clone()));
            let _ = self.node.handle_into(
                Input::RemoteUnsubscribe {
                    peer: BrokerId::from_raw(home as u64),
                    filter,
                },
                &mut self.actions,
            );
            self.actions.clear();
        }
    }

    /// Owner-shard publish: route through the node, buffer local
    /// deliveries, hop `Forward` actions once over the ring.
    fn publish(&mut self, client: ClientId, event: Arc<Event>) {
        self.actions.clear();
        let routed = self.node.handle_into(
            Input::Publish {
                origin: Origin::Client(client),
                event,
            },
            &mut self.actions,
        );
        if routed.is_err() {
            // A racing detach invalidated this publish; skip it.
            self.actions.clear();
            return;
        }
        // Encode the wire frame lazily, once, no matter how many shards
        // the event forwards to: each target receives a cheap `Bytes`
        // clone sharing the same pooled storage.
        let mut frame: Option<Bytes> = None;
        for action in self.actions.drain(..) {
            match action {
                Action::Deliver { client, event, .. } => {
                    if self.deliveries.contains_key(&client) {
                        self.out_buffers.entry(client).or_default().push(event);
                    }
                }
                Action::Forward { peer, event } => {
                    let target = peer.value() as usize;
                    // Peer ids come from the router's own shard plan, so
                    // the index is always in range; `get` keeps a
                    // corrupted plan from panicking the worker.
                    let Some(link) = self.links.get(target) else {
                        continue;
                    };
                    let frame = frame
                        .get_or_insert_with(|| wire::encode(&event).freeze())
                        .clone();
                    link.send(ShardCmd::Forward(frame));
                    if let Some(m) = &self.metrics {
                        m.cross_shard_forwards.inc();
                    }
                }
                Action::AdvertiseAdd { .. } | Action::AdvertiseRemove { .. } => {}
            }
        }
    }

    /// Subscriber-home delivery of a forwarded event: decode the pooled
    /// wire frame zero-copy (the payload stays a slice of the frame),
    /// consult this shard's own route plan and deliver to local clients
    /// only — never re-forward, so each event makes at most one ring
    /// hop. Metrics mirror what `BrokerNode::route` reports for a direct
    /// publish.
    fn deliver_forwarded(&mut self, frame: Bytes) {
        let event = match wire::decode_shared(&frame) {
            Ok(event) => event.into_shared(),
            Err(err) => {
                // Frames originate from `wire::encode` on a sibling
                // shard, so this is unreachable short of memory
                // corruption; drop rather than poison the worker.
                debug_assert!(false, "malformed cross-shard frame: {err}");
                return;
            }
        };
        let plan = self.node.plan_for(&event.topic);
        let mut delivered = 0u64;
        for (client, _profile) in &plan.local {
            if self.deliveries.contains_key(client) {
                self.out_buffers
                    .entry(*client)
                    .or_default()
                    .push(Arc::clone(&event));
                delivered += 1;
            }
        }
        if let Some(m) = &self.metrics {
            m.events_in.inc();
            m.deliveries.add(delivered);
            m.fanout.record(delivered);
            if delivered == 0 {
                m.unroutable.inc();
            }
        }
    }

    /// Owner-shard entry for an event injected from outside the broker
    /// (the cluster layer's inter-node hop): deliver from this shard's
    /// own route plan, then hop the *same* frame once over the ring to
    /// every shard holding remote interest — exactly the fan-out a
    /// local publish would produce, minus the publisher validation
    /// (the source client lives on another node).
    fn inject(&mut self, frame: Bytes) {
        let event = match wire::decode_shared(&frame) {
            Ok(event) => event.into_shared(),
            Err(_) => {
                // The cluster layer validates frames before enqueueing,
                // so this is unreachable short of corruption; drop
                // rather than poison the worker.
                debug_assert!(false, "malformed injected frame");
                return;
            }
        };
        let plan = self.node.plan_for(&event.topic);
        let mut delivered = 0u64;
        for (client, _profile) in &plan.local {
            if self.deliveries.contains_key(client) {
                self.out_buffers
                    .entry(*client)
                    .or_default()
                    .push(Arc::clone(&event));
                delivered += 1;
            }
        }
        for peer in &plan.remote {
            let target = peer.value() as usize;
            let Some(link) = self.links.get(target) else {
                continue;
            };
            link.send(ShardCmd::Forward(frame.clone()));
            if let Some(m) = &self.metrics {
                m.cross_shard_forwards.inc();
            }
        }
        if let Some(m) = &self.metrics {
            m.events_in.inc();
            m.deliveries.add(delivered);
            m.fanout.record(delivered);
            if delivered == 0 && plan.remote.is_empty() {
                m.unroutable.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn topic(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    fn filter(s: &str) -> TopicFilter {
        TopicFilter::parse(s).unwrap()
    }

    const RECV: Duration = Duration::from_secs(2);

    #[test]
    fn injected_frame_delivers_like_a_publish() {
        let broker = ShardedBroker::spawn(4);
        let subscriber = broker.attach();
        subscriber.subscribe(filter("remote/#"));
        broker.quiesce();
        let event = Event::new(
            topic("remote/video"),
            ClientId::from_raw(9001), // a publisher on another node
            7,
            EventClass::Data,
            Bytes::from_static(b"frame"),
        );
        broker.inject(wire::encode(&event).freeze()).unwrap();
        let got = subscriber.recv_timeout(RECV).unwrap();
        assert_eq!(got.source, ClientId::from_raw(9001));
        assert_eq!(got.seq, 7);
        assert_eq!(&got.payload[..], b"frame");
        // Exactly once: nothing else arrives.
        assert!(subscriber.try_recv().is_none());
    }

    #[test]
    fn inject_rejects_malformed_frames() {
        let broker = ShardedBroker::spawn(2);
        assert!(broker.inject(Bytes::from_static(b"garbage")).is_err());
    }

    #[test]
    fn attach_as_preserves_caller_ids() {
        let broker = ShardedBroker::spawn(2);
        let client = broker.attach_as(ClientId::from_raw(4242));
        assert_eq!(client.id(), ClientId::from_raw(4242));
        client.subscribe(filter("news/#"));
        client.publish(topic("news/x"), Bytes::from_static(b"1"));
        let event = client.recv_timeout(RECV).unwrap();
        assert_eq!(event.source, ClientId::from_raw(4242));
    }

    #[test]
    fn pub_sub_across_shards() {
        let broker = ShardedBroker::spawn(4);
        let publisher = broker.attach();
        let subscriber = broker.attach();
        subscriber.subscribe(filter("news/#"));
        publisher.publish(topic("news/tech"), Bytes::from_static(b"1"));
        let event = subscriber.recv_timeout(RECV).unwrap();
        assert_eq!(&event.payload[..], b"1");
        assert_eq!(event.source, publisher.id());
    }

    #[test]
    fn same_first_segment_colocates() {
        let broker = ShardedBroker::spawn(4);
        let control = topic("session/42/control");
        let video = topic("session/42/video/ssrc/9");
        assert_eq!(broker.shard_for_topic(&control), broker.shard_for_topic(&video));
    }

    #[test]
    fn overlapping_filters_deliver_exactly_once() {
        let broker = ShardedBroker::spawn(4);
        let publisher = broker.attach();
        let subscriber = broker.attach();
        // Wildcard-head and literal-head filters both match; the home
        // shard's plan dedups them into one delivery.
        subscriber.subscribe(filter("#"));
        subscriber.subscribe(filter("a/#"));
        publisher.publish(topic("a/b"), Bytes::from_static(b"x"));
        broker.quiesce();
        assert!(subscriber.recv_timeout(RECV).is_some());
        assert!(subscriber.try_recv().is_none());
    }

    #[test]
    fn wildcard_head_filter_sees_every_shard() {
        let broker = ShardedBroker::spawn(4);
        let publisher = broker.attach();
        let subscriber = broker.attach();
        subscriber.subscribe(filter("#"));
        // First segments chosen to spread across shards.
        let topics = ["alpha/x", "bravo/x", "charlie/x", "delta/x", "echo/x"];
        for t in &topics {
            publisher.publish(topic(t), Bytes::new());
        }
        let mut got = 0;
        while subscriber.recv_timeout(RECV).is_some() {
            got += 1;
            if got == topics.len() {
                break;
            }
        }
        assert_eq!(got, topics.len());
    }

    #[test]
    fn per_topic_order_is_preserved() {
        let broker = ShardedBroker::spawn(4);
        let publisher = broker.attach();
        let subscriber = broker.attach();
        subscriber.subscribe(filter("ord/#"));
        for i in 0..100u64 {
            publisher.publish(topic("ord/t"), Bytes::from(i.to_le_bytes().to_vec()));
        }
        for i in 0..100u64 {
            let event = subscriber.recv_timeout(RECV).unwrap();
            assert_eq!(event.seq, i);
        }
    }

    #[test]
    fn drain_into_interleaves_with_single_recv() {
        let broker = ShardedBroker::spawn(2);
        let publisher = broker.attach();
        let subscriber = broker.attach();
        subscriber.subscribe(filter("d/#"));
        broker.quiesce();
        for i in 0..50u64 {
            publisher.publish(topic("d/t"), Bytes::from(i.to_le_bytes().to_vec()));
        }
        broker.quiesce();
        // Pull one event the slow way so part of a batch sits in
        // `pending`, then drain the rest in bulk: nothing lost, nothing
        // duplicated, order intact.
        let first = subscriber.recv_timeout(RECV).unwrap();
        assert_eq!(first.seq, 0);
        let mut rest = Vec::new();
        assert_eq!(subscriber.drain_into(&mut rest), 49);
        for (i, event) in rest.iter().enumerate() {
            assert_eq!(event.seq, i as u64 + 1);
        }
        assert_eq!(subscriber.drain_into(&mut rest), 0);
        assert!(subscriber.try_recv().is_none());
    }

    #[test]
    fn unsubscribe_stops_flow_after_quiesce() {
        let broker = ShardedBroker::spawn(4);
        let publisher = broker.attach();
        let subscriber = broker.attach();
        subscriber.subscribe(filter("u/x"));
        publisher.publish(topic("u/x"), Bytes::new());
        assert!(subscriber.recv_timeout(RECV).is_some());
        subscriber.unsubscribe(filter("u/x"));
        broker.quiesce();
        publisher.publish(topic("u/x"), Bytes::new());
        broker.quiesce();
        assert!(subscriber.try_recv().is_none());
    }

    #[test]
    fn detach_stops_delivery_and_fresh_client_works() {
        let broker = ShardedBroker::spawn(2);
        let publisher = broker.attach();
        {
            let subscriber = broker.attach();
            subscriber.subscribe(filter("d/#"));
        } // dropped -> detach broadcast
        broker.quiesce();
        publisher.publish(topic("d/x"), Bytes::new());
        let fresh = broker.attach();
        fresh.subscribe(filter("d/#"));
        broker.quiesce();
        publisher.publish(topic("d/x"), Bytes::new());
        assert!(fresh.recv_timeout(RECV).is_some());
        assert!(fresh.try_recv().is_none());
    }

    #[test]
    fn metrics_identities_hold_after_quiesce() {
        let metrics = ShardedBrokerMetrics::detached(4);
        let broker = ShardedBroker::spawn_with_metrics(Arc::clone(&metrics));
        let publisher = broker.attach();
        let sub_a = broker.attach();
        let sub_b = broker.attach();
        sub_a.subscribe(filter("#"));
        sub_b.subscribe(filter("m/#"));
        broker.quiesce();
        let publishes = 40u64;
        for i in 0..publishes {
            publisher.publish(topic(&format!("m/{}", i % 4)), Bytes::new());
        }
        broker.quiesce();
        // Both subscribers match every publish.
        assert_eq!(metrics.total(|s| s.deliveries.get()), publishes * 2);
        // Every event enters its owner shard once plus once per ring hop.
        assert_eq!(
            metrics.total(|s| s.events_in.get()),
            publishes + metrics.total(|s| s.cross_shard_forwards.get())
        );
        // Quiesced: nothing left in any ingress queue.
        for shard in metrics.shards() {
            assert_eq!(shard.queue_depth.get(), 0);
        }
        // The batch-size histogram saw every drain.
        assert!(metrics.total(|s| s.batch_size.count()) > 0);
        // Drain both subscribers fully.
        let mut got = 0;
        while sub_a.try_recv().is_some() || sub_b.try_recv().is_some() {
            got += 1;
        }
        assert_eq!(got, (publishes * 2) as usize);
    }

    #[test]
    fn backpressure_spins_then_delivers_everything() {
        let broker = ShardedBroker::builder(2).capacity(4).spawn();
        let publisher = broker.attach();
        let subscriber = broker.attach();
        subscriber.subscribe(filter("bp/#"));
        broker.quiesce();
        // Stall the owner shard so its queue hits the soft capacity and
        // the publisher has to spin.
        let owner = broker.shard_for_topic(&topic("bp/x"));
        broker.stall_shard(owner, Duration::from_millis(50));
        for _ in 0..64 {
            publisher.publish(topic("bp/x"), Bytes::new());
        }
        let mut got = 0;
        while subscriber.recv_timeout(RECV).is_some() {
            got += 1;
            if got == 64 {
                break;
            }
        }
        assert_eq!(got, 64);
    }

    #[test]
    fn shutdown_is_idempotent_and_unblocks_publishers() {
        let broker = ShardedBroker::builder(2).capacity(2).spawn();
        let publisher = broker.attach();
        let subscriber = broker.attach();
        subscriber.subscribe(filter("s/#"));
        broker.shutdown();
        broker.shutdown();
        // Publishes after shutdown go nowhere but must not hang even
        // with a tiny capacity.
        for _ in 0..16 {
            publisher.publish(topic("s/x"), Bytes::new());
        }
        assert!(subscriber.recv_timeout(Duration::from_millis(200)).is_none());
    }

    #[test]
    fn single_shard_matches_threaded_semantics() {
        let broker = ShardedBroker::spawn(1);
        let publisher = broker.attach();
        let subscriber = broker.attach();
        subscriber.subscribe(filter("one/*"));
        publisher.publish(topic("one/a"), Bytes::from_static(b"p"));
        let event = subscriber.recv_timeout(RECV).unwrap();
        assert_eq!(&event.payload[..], b"p");
        // No peers exist, so nothing can have been forwarded.
        assert_eq!(broker.shard_count(), 1);
    }
}
