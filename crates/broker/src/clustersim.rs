//! Federation ↔ simulator bridge.
//!
//! The live [`crate::cluster::Cluster`] runs node workers, gossip and
//! (optionally) real sockets, so its timings are not reproducible; the
//! capacity-frontier harness and the experiments need the *same
//! federation topology* inside the deterministic simulator. This
//! module builds that model: one [`BrokerProcess`] per cluster node,
//! each on its own simulated host, joined exactly along the direct
//! links of a [`LatencyMap`] with the map's latencies applied to the
//! simulated wire ([`Simulation::set_link`]).
//!
//! The geography is shared with the live runtime: zone homing uses the
//! same [`LatencyMap::home_node`] argmin, so a client lands on exactly
//! the gateway the thread runtime would pick, and the inter-node path
//! shape matches the live [`RouteTable`](crate::cluster::RouteTable)
//! (on a tree there is only one path; on a full mesh every path is the
//! direct link).
//!
//! Interest exchange differs by topology, mirroring what the live
//! gossip converges to:
//!
//! * **tree** (e.g. [`LatencyMap::chain`]) — the sans-IO node's native
//!   broker-to-broker subscription propagation carries interest hop by
//!   hop, and events relay through intermediate nodes exactly like
//!   live `ClusterFrame` relaying;
//! * **full mesh** — propagation must not re-forward (the mesh has
//!   cycles), so nodes run local-adverts-only and events cross exactly
//!   one link, like the live cluster's direct-path routing.
//!
//! Other cyclic topologies are rejected: the deterministic model has
//! no gossip rounds to break cycles with.

use mmcs_sim::net::{LinkConfig, NicConfig};
use mmcs_sim::{ProcessId, Simulation};
use mmcs_util::id::BrokerId;
use mmcs_util::rate::Bandwidth;
use mmcs_util::time::SimDuration;

use crate::batch::CostModel;
use crate::cluster::LatencyMap;
use crate::simdrv::BrokerProcess;

/// Configuration for [`ClusterSimNet::build`].
#[derive(Debug, Clone)]
pub struct ClusterSimConfig {
    /// Cluster geography: nodes, direct links, zone latency rows.
    pub latency: LatencyMap,
    /// CPU cost model charged by every node broker.
    pub cost: CostModel,
    /// Per-node NIC bandwidth.
    pub node_nic: Bandwidth,
    /// Per-node NIC queue limit in bytes.
    pub queue_bytes: u64,
}

impl ClusterSimConfig {
    /// A federation over `latency` with the calibrated NaradaBrokering
    /// cost model and the large socket buffers the experiments use.
    pub fn over(latency: LatencyMap) -> Self {
        Self {
            latency,
            cost: CostModel::narada(),
            node_nic: Bandwidth::from_mbps(310),
            queue_bytes: 64 * 1024 * 1024,
        }
    }
}

/// The federation modelled in the deterministic simulator: one broker
/// process per node, links and latencies from the shared
/// [`LatencyMap`]. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ClusterSimNet {
    nodes: Vec<ProcessId>,
    latency: LatencyMap,
}

impl ClusterSimNet {
    /// Adds the node hosts and broker processes to `sim` and links
    /// them along the map's direct links. Call before adding clients
    /// so process ids stay compact.
    ///
    /// # Panics
    ///
    /// Panics if the link graph is cyclic but not a full mesh (see the
    /// [module docs](self)).
    pub fn build(sim: &mut Simulation, config: &ClusterSimConfig) -> Self {
        let n = config.latency.node_count();
        let shape = classify(&config.latency);
        assert!(
            shape != Shape::Other,
            "cluster sim supports tree and full-mesh topologies"
        );
        let mut hosts = Vec::with_capacity(n);
        let mut nodes = Vec::with_capacity(n);
        for index in 0..n {
            let host = sim.add_host(
                &format!("cnode-{index}"),
                NicConfig {
                    bandwidth: config.node_nic,
                    queue_bytes: config.queue_bytes,
                    ..NicConfig::default()
                },
            );
            let mut broker = BrokerProcess::new(BrokerId::from_raw(index as u64), config.cost);
            if shape == Shape::Mesh {
                // The mesh has cycles: interest must stop after one
                // hop, exactly like the live direct-path routing.
                broker = broker.with_local_adverts_only();
            }
            hosts.push(host);
            nodes.push(sim.add_typed_process(host, broker));
        }
        for a in 0..n {
            for b in (a + 1)..n {
                let Some(ms) = config.latency.link(a as u16, b as u16) else {
                    continue;
                };
                sim.set_link(
                    hosts[a],
                    hosts[b],
                    LinkConfig {
                        latency: SimDuration::from_micros(u64::from(ms) * 1000),
                        ..LinkConfig::default()
                    },
                );
                sim.process_mut::<BrokerProcess>(nodes[a])
                    .expect("node process just added")
                    .add_peer(BrokerId::from_raw(b as u64), nodes[b]);
                sim.process_mut::<BrokerProcess>(nodes[b])
                    .expect("node process just added")
                    .add_peer(BrokerId::from_raw(a as u64), nodes[a]);
            }
        }
        Self {
            nodes,
            latency: config.latency.clone(),
        }
    }

    /// Number of nodes in the federation.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The simulator process of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node_process(&self, index: usize) -> ProcessId {
        self.nodes[index]
    }

    /// All node processes, in node order.
    pub fn node_processes(&self) -> &[ProcessId] {
        &self.nodes
    }

    /// The gateway node homing clients of `zone` — identical to the
    /// live [`LatencyMap::home_node`].
    pub fn home_node(&self, zone: usize) -> usize {
        self.latency.home_node(zone) as usize
    }

    /// The broker process clients of `zone` attach and subscribe at.
    pub fn home_process(&self, zone: usize) -> ProcessId {
        self.nodes[self.home_node(zone)]
    }

    /// The latency map this federation was built from.
    pub fn latency(&self) -> &LatencyMap {
        &self.latency
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Tree,
    Mesh,
    Other,
}

/// Classifies the link graph: a connected acyclic graph, a complete
/// graph, or anything else.
fn classify(map: &LatencyMap) -> Shape {
    let n = map.node_count();
    let mut edges = 0usize;
    for a in 0..n {
        for b in (a + 1)..n {
            if map.link(a as u16, b as u16).is_some() {
                edges += 1;
            }
        }
    }
    if edges == n * (n - 1) / 2 {
        // Complete graphs on ≤ 2 nodes are also trees; mesh semantics
        // (one hop, local adverts) are correct for those too.
        return Shape::Mesh;
    }
    if edges != n.saturating_sub(1) {
        return Shape::Other;
    }
    // n-1 edges: a tree iff connected.
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut visited = 1;
    while let Some(at) = stack.pop() {
        for (next, seen_next) in seen.iter_mut().enumerate() {
            if !*seen_next && map.link(at as u16, next as u16).is_some() {
                *seen_next = true;
                visited += 1;
                stack.push(next);
            }
        }
    }
    if visited == n {
        Shape::Tree
    } else {
        Shape::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simdrv::{PublisherConfig, RtpReceiver, VideoPublisher};
    use crate::topic::{Topic, TopicFilter};
    use mmcs_rtp::packet::payload_type;
    use mmcs_rtp::source::{VideoSource, VideoSourceConfig};
    use mmcs_util::id::ClientId;
    use mmcs_util::rng::DetRng;
    use mmcs_util::time::SimTime;

    #[test]
    fn classify_recognizes_shapes() {
        assert_eq!(classify(&LatencyMap::chain(4, 5)), Shape::Tree);
        assert_eq!(classify(&LatencyMap::full_mesh(4, 5)), Shape::Mesh);
        assert_eq!(classify(&LatencyMap::full_mesh(2, 5)), Shape::Mesh);
        let mut ring = LatencyMap::chain(4, 5);
        ring.set_link(0, 3, 5);
        assert_eq!(classify(&ring), Shape::Other);
        let disconnected = LatencyMap::new(3).with_zone(vec![1, 1, 1]);
        assert_eq!(classify(&disconnected), Shape::Other);
    }

    #[test]
    fn zone_homing_matches_live_map() {
        let map = LatencyMap::full_mesh(3, 5)
            .with_zone(vec![1, 10, 10])
            .with_zone(vec![10, 1, 10])
            .with_zone(vec![10, 10, 1]);
        let mut sim = Simulation::new(1);
        let net = ClusterSimNet::build(&mut sim, &ClusterSimConfig::over(map.clone()));
        for zone in 0..map.zone_count() {
            assert_eq!(net.home_node(zone), map.home_node(zone) as usize);
        }
    }

    fn run_video(map: LatencyMap, publisher_zone: usize, subscriber_zone: usize) -> (u64, u64) {
        let mut sim = Simulation::new(17);
        let net = ClusterSimNet::build(&mut sim, &ClusterSimConfig::over(map));
        let topic = Topic::parse("session/7/video").unwrap();

        let client_host = sim.add_host("clients", NicConfig::default());
        let receiver = sim.add_typed_process(
            client_host,
            RtpReceiver::new(
                net.home_process(subscriber_zone),
                ClientId::from_raw(2),
                TopicFilter::exact(&topic),
                payload_type::H263,
                SimDuration::from_micros(10),
            ),
        );
        let sender_host = sim.add_host("sender", NicConfig::default());
        let mut config = PublisherConfig::new(
            net.home_process(publisher_zone),
            ClientId::from_raw(1),
            topic,
        );
        config.max_packets = 30;
        let source = VideoSource::new(VideoSourceConfig::default(), 7, DetRng::new(11));
        sim.add_typed_process(sender_host, VideoPublisher::new(config, source));

        sim.run_until(SimTime::from_secs(20));
        let stats = sim.process_ref::<RtpReceiver>(receiver).unwrap().stats();
        (stats.received(), sim.counter("broker.forwarded"))
    }

    #[test]
    fn mesh_publish_crosses_exactly_one_link() {
        let (received, forwarded) = run_video(LatencyMap::full_mesh(3, 5), 0, 1);
        assert_eq!(received, 30, "all packets across the federation");
        assert_eq!(forwarded, 30, "one inter-node hop per packet");
    }

    #[test]
    fn chain_publish_relays_through_intermediate_nodes() {
        let (received, forwarded) = run_video(LatencyMap::chain(4, 5), 0, 3);
        assert_eq!(received, 30, "all packets across three links");
        assert_eq!(forwarded, 90, "each of three links carries each packet");
    }

    #[test]
    fn same_zone_publish_never_crosses_a_link() {
        let (received, forwarded) = run_video(LatencyMap::full_mesh(3, 5), 1, 1);
        assert_eq!(received, 30);
        assert_eq!(forwarded, 0, "publisher and subscriber share a gateway");
    }
}
