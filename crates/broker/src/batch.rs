//! Send batching and the broker CPU cost model.
//!
//! The paper notes NaradaBrokering beat the JMF reflector "after we made
//! some optimizations on the message transmission". We model that
//! optimization explicitly: a fan-out of one event to N destinations pays
//! the full per-send cost once and a reduced marginal cost for the
//! remaining N−1 sends (amortized syscalls/buffer handling), and
//! broker-to-broker transit can coalesce small events into one framed
//! batch ([`Batcher`]). The ablation benchmark (`ablation` bench target)
//! toggles [`CostModel::batching`] to show the effect.

use mmcs_util::time::SimDuration;

/// CPU cost model for one broker (or reflector) process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost to accept and route one incoming event (topic match,
    /// queue handling).
    pub routing: SimDuration,
    /// Cost of one outbound send.
    pub per_send: SimDuration,
    /// Additional cost per kilobyte copied.
    pub per_kilobyte: SimDuration,
    /// Whether the transmission optimization is on.
    pub batching: bool,
    /// Marginal cost multiplier for sends after the first in one fan-out
    /// (only used when `batching` is true).
    pub batch_factor: f64,
}

impl CostModel {
    /// The calibrated NaradaBrokering profile (see `EXPERIMENTS.md` for
    /// how these constants were fitted to the paper's Figure 3).
    pub fn narada() -> Self {
        Self {
            routing: SimDuration::from_micros(25),
            per_send: SimDuration::from_micros(48),
            per_kilobyte: SimDuration::from_micros(3),
            batching: true,
            batch_factor: 0.33,
        }
    }

    /// The same engine with the transmission optimization disabled
    /// (ablation A1).
    pub fn narada_unbatched() -> Self {
        Self {
            batching: false,
            ..Self::narada()
        }
    }

    /// CPU cost of the `index`-th send (0-based) within one fan-out, for
    /// a packet of `bytes`.
    pub fn send_cost(&self, index: usize, bytes: usize) -> SimDuration {
        let byte_cost = self.per_kilobyte * (bytes as f64 / 1024.0);
        let fixed = if self.batching && index > 0 {
            self.per_send * self.batch_factor
        } else {
            self.per_send
        };
        fixed + byte_cost
    }

    /// Total CPU cost of fanning one `bytes`-sized event out to
    /// `destinations` receivers, including routing.
    pub fn fanout_cost(&self, destinations: usize, bytes: usize) -> SimDuration {
        let mut total = self.routing;
        for i in 0..destinations {
            total += self.send_cost(i, bytes);
        }
        total
    }
}

/// A byte-budgeted event coalescer for broker-to-broker links.
///
/// Push events until the batch is full (by count or bytes), then
/// [`Batcher::flush`] returns the batch to frame as a single transmission.
///
/// # Examples
///
/// ```
/// use mmcs_broker::batch::Batcher;
///
/// let mut b: Batcher<u32> = Batcher::new(3, 1000);
/// assert!(b.push(1, 100).is_none());
/// assert!(b.push(2, 100).is_none());
/// let flushed = b.push(3, 100).unwrap(); // count limit reached
/// assert_eq!(flushed.items, vec![1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Batcher<T> {
    max_items: usize,
    max_bytes: usize,
    items: Vec<T>,
    bytes: usize,
}

/// A flushed batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch<T> {
    /// The coalesced items, oldest first.
    pub items: Vec<T>,
    /// Their summed payload bytes (excluding the shared frame header).
    pub bytes: usize,
}

impl<T> Batcher<T> {
    /// Creates a batcher with the given limits.
    ///
    /// # Panics
    ///
    /// Panics if either limit is zero.
    pub fn new(max_items: usize, max_bytes: usize) -> Self {
        assert!(max_items > 0, "batch item limit must be positive");
        assert!(max_bytes > 0, "batch byte limit must be positive");
        Self {
            max_items,
            max_bytes,
            items: Vec::new(),
            bytes: 0,
        }
    }

    /// Adds an item; returns a full batch if a limit was reached.
    ///
    /// An item larger than the byte limit flushes whatever is pending and
    /// then travels alone.
    pub fn push(&mut self, item: T, bytes: usize) -> Option<Batch<T>> {
        if bytes >= self.max_bytes {
            let mut flushed = self.flush();
            let solo = Batch {
                items: vec![item],
                bytes,
            };
            return match &mut flushed {
                Some(batch) => {
                    // Pending batch goes first; caller sends both. To keep
                    // the API single-return, merge them (order preserved).
                    batch.items.extend(solo.items);
                    batch.bytes += solo.bytes;
                    flushed
                }
                None => Some(solo),
            };
        }
        self.items.push(item);
        self.bytes += bytes;
        if self.items.len() >= self.max_items || self.bytes >= self.max_bytes {
            self.flush()
        } else {
            None
        }
    }

    /// Flushes the pending batch, if any.
    pub fn flush(&mut self) -> Option<Batch<T>> {
        if self.items.is_empty() {
            return None;
        }
        let items = std::mem::take(&mut self.items);
        let bytes = std::mem::replace(&mut self.bytes, 0);
        Some(Batch { items, bytes })
    }

    /// Items currently pending.
    pub fn pending(&self) -> usize {
        self.items.len()
    }

    /// Payload bytes currently pending.
    pub fn pending_bytes(&self) -> usize {
        self.bytes
    }

    /// The configured item limit. Drain loops (the sharded broker's
    /// ingress) use this to bound how many queued commands they pull
    /// before processing a batch.
    pub fn max_items(&self) -> usize {
        self.max_items
    }

    /// The configured byte limit.
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narada_profile_is_batched() {
        let m = CostModel::narada();
        assert!(m.batching);
        assert!(!CostModel::narada_unbatched().batching);
    }

    #[test]
    fn batched_fanout_is_cheaper() {
        let batched = CostModel::narada();
        let unbatched = CostModel::narada_unbatched();
        let n = 400;
        let bytes = 1060;
        assert!(batched.fanout_cost(n, bytes) < unbatched.fanout_cost(n, bytes));
        // First send costs the same either way.
        assert_eq!(batched.send_cost(0, bytes), unbatched.send_cost(0, bytes));
        assert!(batched.send_cost(1, bytes) < unbatched.send_cost(1, bytes));
    }

    #[test]
    fn fanout_cost_scales_linearly_in_destinations() {
        let m = CostModel::narada_unbatched();
        let one = m.fanout_cost(1, 1000) - m.routing;
        let ten = m.fanout_cost(10, 1000) - m.routing;
        assert_eq!(ten.as_nanos(), one.as_nanos() * 10);
    }

    #[test]
    fn byte_cost_matters() {
        let m = CostModel::narada();
        assert!(m.send_cost(0, 10_000) > m.send_cost(0, 100));
    }

    #[test]
    fn batcher_flushes_on_count() {
        let mut b: Batcher<u8> = Batcher::new(2, 10_000);
        assert!(b.push(1, 10).is_none());
        let batch = b.push(2, 10).unwrap();
        assert_eq!(batch.items, vec![1, 2]);
        assert_eq!(batch.bytes, 20);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn batcher_flushes_on_bytes() {
        let mut b: Batcher<u8> = Batcher::new(100, 250);
        assert!(b.push(1, 100).is_none());
        assert!(b.push(2, 100).is_none());
        let batch = b.push(3, 100).unwrap();
        assert_eq!(batch.items.len(), 3);
    }

    #[test]
    fn oversized_item_flushes_pending_and_travels_merged() {
        let mut b: Batcher<u8> = Batcher::new(100, 200);
        b.push(1, 50);
        let batch = b.push(2, 500).unwrap();
        assert_eq!(batch.items, vec![1, 2]);
        assert_eq!(batch.bytes, 550);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn manual_flush_drains() {
        let mut b: Batcher<u8> = Batcher::new(10, 1000);
        assert!(b.flush().is_none());
        b.push(7, 10);
        let batch = b.flush().unwrap();
        assert_eq!(batch.items, vec![7]);
        assert!(b.flush().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_limits_panic() {
        let _ = Batcher::<u8>::new(0, 10);
    }
}
