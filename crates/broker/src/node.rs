//! The sans-IO broker state machine.
//!
//! [`BrokerNode`] owns one broker's entire state — attached clients,
//! local subscriptions, links to peer brokers, and the aggregated remote
//! interest table — and advances purely through
//! [`BrokerNode::handle`]: `(Input) -> Vec<Action>`. Drivers (the
//! in-memory [`crate::network::BrokerNetwork`], the simulator
//! [`crate::simdrv`], the threaded [`crate::threaded`] runtime) own
//! transport and time.
//!
//! ## Routing protocol
//!
//! Broker networks are **trees** (NaradaBrokering's cluster hierarchy);
//! [`crate::network::BrokerNetwork::link`] enforces acyclicity. Interest
//! propagation is therefore simple and loop-free:
//!
//! * Every filter has an interest record: local subscriber count plus the
//!   set of peers that advertised it.
//! * A broker advertises a filter to peer `p` exactly when some party
//!   *other than `p`* is interested (split horizon).
//! * A data event arriving from origin `o` is delivered to matching local
//!   clients and forwarded to matching peers except `o`.
//!
//! On a tree this delivers every event exactly once to every subscriber
//! — an invariant the property tests in `tests/` exercise.
//!
//! ## Routing fast path
//!
//! Publishing is the hot loop, so [`BrokerNode`] memoizes the resolved
//! delivery plan per concrete topic as a shared [`RoutePlan`]: the
//! deduplicated local `(client, profile)` pairs plus the matching remote
//! peers. Cache entries are stamped with a **generation counter** that
//! bumps on every subscribe/unsubscribe/detach/link change; a stale
//! stamp lazily invalidates the entry on next lookup, so mutation never
//! walks the cache. On a warm hit, [`BrokerNode::handle_into`] appends
//! actions into a caller-owned scratch buffer without allocating:
//! one hash lookup, one `Arc` clone per plan, one `Arc<Event>` clone per
//! destination.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mmcs_util::id::{BrokerId, ClientId};

use crate::event::Event;
use crate::metrics::BrokerMetrics;
use crate::profile::TransportProfile;
use crate::topic::{SubscriptionTable, Topic, TopicFilter};

/// Most cached route plans a broker keeps before evicting stale ones.
/// Real deployments publish to a bounded set of session topics; the cap
/// only guards against unbounded one-shot topic churn.
const PLAN_CACHE_MAX: usize = 4096;

/// A resolved delivery plan for one concrete topic: where a publish to
/// that topic goes, with dedup and profile lookup already done.
///
/// Plans are immutable and shared (`Arc`), so the warm routing path
/// clones a pointer, not the lists.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutePlan {
    /// Matching local subscribers with their transport profiles,
    /// sorted by client id and deduplicated.
    pub local: Vec<(ClientId, TransportProfile)>,
    /// Matching peer brokers, sorted and deduplicated. Split horizon
    /// (skipping the origin peer) is applied at routing time, not here,
    /// so one plan serves every origin.
    pub remote: Vec<BrokerId>,
}

impl RoutePlan {
    /// Whether the plan delivers to no one.
    pub fn is_empty(&self) -> bool {
        self.local.is_empty() && self.remote.is_empty()
    }
}

/// A cached plan stamped with the generation it was computed under.
#[derive(Debug, Clone)]
struct CachedPlan {
    generation: u64,
    plan: Arc<RoutePlan>,
}

/// Where an input event entered this broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// Published by a locally attached client.
    Client(ClientId),
    /// Forwarded by a peer broker.
    Broker(BrokerId),
}

/// An input to the broker state machine.
#[derive(Debug, Clone)]
pub enum Input {
    /// A client opened a connection.
    AttachClient {
        /// The new client.
        client: ClientId,
        /// Its transport profile.
        profile: TransportProfile,
    },
    /// A client disconnected (gracefully or by failure); all its
    /// subscriptions are dropped.
    DetachClient {
        /// The departing client.
        client: ClientId,
    },
    /// A local client subscribes to a filter.
    Subscribe {
        /// The subscribing client.
        client: ClientId,
        /// The filter.
        filter: TopicFilter,
    },
    /// A local client drops one subscription.
    Unsubscribe {
        /// The unsubscribing client.
        client: ClientId,
        /// The filter.
        filter: TopicFilter,
    },
    /// An event entered the broker.
    Publish {
        /// Originating hop.
        origin: Origin,
        /// The event.
        event: Arc<Event>,
    },
    /// A link to a peer broker came up.
    LinkUp {
        /// The peer.
        peer: BrokerId,
    },
    /// A link to a peer broker went down; the peer's interest is dropped.
    LinkDown {
        /// The peer.
        peer: BrokerId,
    },
    /// A peer advertised interest in a filter.
    RemoteSubscribe {
        /// The advertising peer.
        peer: BrokerId,
        /// The filter.
        filter: TopicFilter,
    },
    /// A peer withdrew interest in a filter.
    RemoteUnsubscribe {
        /// The withdrawing peer.
        peer: BrokerId,
        /// The filter.
        filter: TopicFilter,
    },
}

/// An effect the driver must carry out.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Deliver an event to a locally attached client.
    Deliver {
        /// The destination client.
        client: ClientId,
        /// Its transport profile (drivers need it for overhead/cost).
        profile: TransportProfile,
        /// The event.
        event: Arc<Event>,
    },
    /// Forward an event to a peer broker.
    Forward {
        /// The next-hop broker.
        peer: BrokerId,
        /// The event.
        event: Arc<Event>,
    },
    /// Tell a peer this broker is interested in a filter.
    AdvertiseAdd {
        /// The peer to inform.
        peer: BrokerId,
        /// The filter.
        filter: TopicFilter,
    },
    /// Tell a peer this broker is no longer interested in a filter.
    AdvertiseRemove {
        /// The peer to inform.
        peer: BrokerId,
        /// The filter.
        filter: TopicFilter,
    },
}

/// Error returned for inputs that violate the broker's invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// Input referenced a client that is not attached.
    UnknownClient(ClientId),
    /// Attach for a client id that is already attached.
    DuplicateClient(ClientId),
    /// Input referenced a peer with no established link.
    UnknownPeer(BrokerId),
    /// LinkUp for a peer that is already linked.
    DuplicateLink(BrokerId),
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::UnknownClient(c) => write!(f, "unknown client {c}"),
            BrokerError::DuplicateClient(c) => write!(f, "client {c} already attached"),
            BrokerError::UnknownPeer(b) => write!(f, "no link to peer {b}"),
            BrokerError::DuplicateLink(b) => write!(f, "link to peer {b} already up"),
        }
    }
}

impl std::error::Error for BrokerError {}

/// Aggregated interest in one filter.
#[derive(Debug, Clone, Default)]
struct Interest {
    local: usize,
    peers: HashSet<BrokerId>,
}

impl Interest {
    fn is_empty(&self) -> bool {
        self.local == 0 && self.peers.is_empty()
    }

    /// Whether any party other than `peer` is interested.
    fn interesting_to(&self, peer: BrokerId) -> bool {
        self.local > 0 || self.peers.iter().any(|p| *p != peer)
    }
}

/// Counters a broker keeps about its own activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerCounters {
    /// Events accepted from clients or peers.
    pub events_in: u64,
    /// Client deliveries emitted.
    pub deliveries: u64,
    /// Broker-to-broker forwards emitted.
    pub forwards: u64,
    /// Events that matched no subscriber anywhere.
    pub unroutable: u64,
}

/// One broker's pure state machine. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct BrokerNode {
    id: BrokerId,
    clients: HashMap<ClientId, TransportProfile>,
    client_filters: HashMap<ClientId, Vec<TopicFilter>>,
    local_subs: SubscriptionTable<ClientId>,
    remote_subs: SubscriptionTable<BrokerId>,
    peers: HashSet<BrokerId>,
    interest: HashMap<TopicFilter, Interest>,
    /// Filters currently advertised to each peer.
    advertised: HashMap<BrokerId, HashSet<TopicFilter>>,
    counters: BrokerCounters,
    /// Bumped on any change that can alter a delivery plan; cached plans
    /// stamped with an older value are lazily discarded on lookup.
    generation: u64,
    /// Memoized delivery plans keyed by concrete topic.
    plans: HashMap<Topic, CachedPlan>,
    /// Optional telemetry instruments; `None` costs one branch per
    /// publish, `Some` costs a handful of relaxed atomic adds.
    metrics: Option<Arc<BrokerMetrics>>,
    /// When set, only *local* subscriber interest is advertised to peers
    /// (remote interest is never re-propagated). See
    /// [`BrokerNode::set_local_adverts_only`].
    local_adverts_only: bool,
}

impl BrokerNode {
    /// Creates an empty broker with the given id.
    pub fn new(id: BrokerId) -> Self {
        Self {
            id,
            clients: HashMap::new(),
            client_filters: HashMap::new(),
            local_subs: SubscriptionTable::new(),
            remote_subs: SubscriptionTable::new(),
            peers: HashSet::new(),
            interest: HashMap::new(),
            advertised: HashMap::new(),
            counters: BrokerCounters::default(),
            generation: 0,
            plans: HashMap::new(),
            metrics: None,
            local_adverts_only: false,
        }
    }

    /// Restricts adverts to this node's *local* subscriber interest:
    /// remote interest is never re-advertised to other peers.
    ///
    /// The default (off) implements NaradaBrokering's tree routing, where
    /// interest must propagate hop by hop — correct only on acyclic peer
    /// graphs. Full-mesh topologies (the sharded runtime's one-hop
    /// forward ring, rebuilt in the simulator by [`crate::shardsim`])
    /// turn that propagation into an advert/forward loop; with this mode
    /// on, every node advertises straight to every peer and a data event
    /// is forwarded at most one hop, exactly the thread runtime's
    /// semantics.
    ///
    /// Set before links come up: the flag only affects adverts emitted
    /// after the call.
    pub fn set_local_adverts_only(&mut self, on: bool) {
        self.local_adverts_only = on;
    }

    /// Installs telemetry instruments. Publishes, cache lookups, and
    /// fan-out widths are reported from then on; the warm publish path
    /// stays allocation-free (relaxed atomic increments only).
    pub fn set_metrics(&mut self, metrics: Arc<BrokerMetrics>) {
        self.metrics = Some(metrics);
    }

    /// The installed telemetry instruments, if any.
    pub fn metrics(&self) -> Option<&Arc<BrokerMetrics>> {
        self.metrics.as_ref()
    }

    /// This broker's id.
    pub fn id(&self) -> BrokerId {
        self.id
    }

    /// Number of attached clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Linked peers.
    pub fn peers(&self) -> impl Iterator<Item = BrokerId> + '_ {
        self.peers.iter().copied()
    }

    /// Activity counters.
    pub fn counters(&self) -> BrokerCounters {
        self.counters
    }

    /// Whether a client is attached.
    pub fn has_client(&self, client: ClientId) -> bool {
        self.clients.contains_key(&client)
    }

    /// Filters currently advertised to `peer`, sorted.
    ///
    /// Drivers on lossy transports periodically re-send these as
    /// `AdvertiseAdd` messages: the receiving node treats a duplicate
    /// `RemoteSubscribe` as a no-op, so the refresh repairs adverts the
    /// network dropped without disturbing settled state.
    pub fn advertised_to(&self, peer: BrokerId) -> Vec<TopicFilter> {
        let mut filters: Vec<TopicFilter> = self
            .advertised
            .get(&peer)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default();
        filters.sort_unstable();
        filters
    }

    /// The current route-cache generation. Bumps whenever subscriptions,
    /// clients, or links change; equal generations guarantee identical
    /// routing.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of memoized route plans (stale entries included until
    /// their next lookup).
    pub fn plan_cache_len(&self) -> usize {
        self.plans.len()
    }

    /// The delivery plan a publish to `topic` would use right now,
    /// memoizing it for subsequent publishes.
    pub fn plan_for(&mut self, topic: &Topic) -> Arc<RoutePlan> {
        if let Some(cached) = self.plans.get(topic) {
            if cached.generation == self.generation {
                if let Some(m) = &self.metrics {
                    m.route_cache_hits.inc();
                }
                return Arc::clone(&cached.plan);
            }
        }
        if let Some(m) = &self.metrics {
            m.route_cache_misses.inc();
        }
        // Cold path: resolve both tables, then memoize.
        let mut local_ids = Vec::new();
        self.local_subs.matches_into(topic, &mut local_ids);
        // Every subscribed client has a profile entry (subscribe checks
        // attachment); a missing one is a table desync, so drop that
        // client from the plan rather than panic mid-routing.
        let local = local_ids
            .into_iter()
            .filter_map(|client| {
                let profile = self.clients.get(&client).copied();
                debug_assert!(profile.is_some(), "subscriber {client} has no profile");
                profile.map(|p| (client, p))
            })
            .collect();
        let mut remote = Vec::new();
        self.remote_subs.matches_into(topic, &mut remote);
        let plan = Arc::new(RoutePlan { local, remote });
        if self.plans.len() >= PLAN_CACHE_MAX {
            // Drop stale entries first; if the cache is full of live
            // plans, start over rather than grow without bound.
            let generation = self.generation;
            self.plans.retain(|_, p| p.generation == generation);
            if self.plans.len() >= PLAN_CACHE_MAX {
                self.plans.clear();
            }
        }
        self.plans.insert(
            topic.clone(),
            CachedPlan {
                generation: self.generation,
                plan: Arc::clone(&plan),
            },
        );
        plan
    }

    /// Invalidates every memoized plan (lazily, via the generation
    /// stamp).
    fn touch(&mut self) {
        self.generation += 1;
    }

    /// Advances the state machine by one input.
    ///
    /// Convenience wrapper over [`handle_into`](Self::handle_into) that
    /// allocates a fresh action buffer per call. Hot loops should hold a
    /// scratch `Vec<Action>` and call `handle_into` instead.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError`] if the input references unknown clients or
    /// peers, or re-attaches existing ones. State is unchanged on error.
    pub fn handle(&mut self, input: Input) -> Result<Vec<Action>, BrokerError> {
        let mut actions = Vec::new();
        self.handle_into(input, &mut actions)?;
        Ok(actions)
    }

    /// Advances the state machine by one input, **appending** resulting
    /// actions to `out`. Existing contents of `out` are untouched; on a
    /// warm route-cache hit no allocation happens beyond what `out`'s
    /// spare capacity already covers.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError`] if the input references unknown clients or
    /// peers, or re-attaches existing ones. State and `out` are unchanged
    /// on error.
    pub fn handle_into(&mut self, input: Input, out: &mut Vec<Action>) -> Result<(), BrokerError> {
        match input {
            Input::AttachClient { client, profile } => {
                if self.clients.contains_key(&client) {
                    return Err(BrokerError::DuplicateClient(client));
                }
                self.clients.insert(client, profile);
                Ok(())
            }
            Input::DetachClient { client } => {
                if self.clients.remove(&client).is_none() {
                    return Err(BrokerError::UnknownClient(client));
                }
                if self.local_subs.unsubscribe_all(&client) > 0 {
                    self.touch();
                }
                let filters = self.client_filters.remove(&client).unwrap_or_default();
                for filter in filters {
                    self.release_local_interest(&filter, out);
                }
                Ok(())
            }
            Input::Subscribe { client, filter } => {
                if !self.clients.contains_key(&client) {
                    return Err(BrokerError::UnknownClient(client));
                }
                if !self.local_subs.subscribe(&filter, client) {
                    return Ok(()); // duplicate
                }
                self.touch();
                self.client_filters
                    .entry(client)
                    .or_default()
                    .push(filter.clone());
                let entry = self.interest.entry(filter.clone()).or_default();
                entry.local += 1;
                if entry.local == 1 {
                    self.refresh_adverts_for(&filter, out);
                }
                Ok(())
            }
            Input::Unsubscribe { client, filter } => {
                if !self.clients.contains_key(&client) {
                    return Err(BrokerError::UnknownClient(client));
                }
                if !self.local_subs.unsubscribe(&filter, &client) {
                    return Ok(());
                }
                self.touch();
                if let Some(filters) = self.client_filters.get_mut(&client) {
                    if let Some(pos) = filters.iter().position(|f| *f == filter) {
                        filters.remove(pos);
                    }
                }
                self.release_local_interest(&filter, out);
                Ok(())
            }
            Input::Publish { origin, event } => self.route(origin, event, out),
            Input::LinkUp { peer } => {
                if !self.peers.insert(peer) {
                    return Err(BrokerError::DuplicateLink(peer));
                }
                self.advertised.insert(peer, HashSet::new());
                // Advertise everything the rest of the world is
                // interested in to the new peer. Sorted so the advert
                // order (and thus driver send order) is independent of
                // hash-map iteration order — deterministic replay
                // across process runs depends on it.
                let mut filters: Vec<TopicFilter> = self.interest.keys().cloned().collect();
                filters.sort_unstable();
                for filter in filters {
                    self.refresh_advert_for_peer(peer, &filter, out);
                }
                Ok(())
            }
            Input::LinkDown { peer } => {
                if !self.peers.remove(&peer) {
                    return Err(BrokerError::UnknownPeer(peer));
                }
                self.advertised.remove(&peer);
                if self.remote_subs.unsubscribe_all(&peer) > 0 {
                    self.touch();
                }
                let mut affected: Vec<TopicFilter> = self
                    .interest
                    .iter()
                    .filter(|(_, i)| i.peers.contains(&peer))
                    .map(|(f, _)| f.clone())
                    .collect();
                // Sorted for cross-run-deterministic advert emission.
                affected.sort_unstable();
                for filter in affected {
                    if let Some(entry) = self.interest.get_mut(&filter) {
                        entry.peers.remove(&peer);
                        let gone = entry.is_empty();
                        if gone {
                            self.interest.remove(&filter);
                        }
                        self.refresh_adverts_for(&filter, out);
                    }
                }
                Ok(())
            }
            Input::RemoteSubscribe { peer, filter } => {
                if !self.peers.contains(&peer) {
                    return Err(BrokerError::UnknownPeer(peer));
                }
                if self.remote_subs.subscribe(&filter, peer) {
                    self.touch();
                }
                let entry = self.interest.entry(filter.clone()).or_default();
                let newly = entry.peers.insert(peer);
                if newly {
                    self.refresh_adverts_for(&filter, out);
                }
                Ok(())
            }
            Input::RemoteUnsubscribe { peer, filter } => {
                if !self.peers.contains(&peer) {
                    return Err(BrokerError::UnknownPeer(peer));
                }
                if self.remote_subs.unsubscribe(&filter, &peer) {
                    self.touch();
                }
                if let Some(entry) = self.interest.get_mut(&filter) {
                    if entry.peers.remove(&peer) {
                        if entry.is_empty() {
                            self.interest.remove(&filter);
                        }
                        self.refresh_adverts_for(&filter, out);
                    }
                }
                Ok(())
            }
        }
    }

    /// The publish hot path: validate, fetch (or build) the plan, append
    /// one action per destination. Warm hits allocate nothing.
    fn route(
        &mut self,
        origin: Origin,
        event: Arc<Event>,
        out: &mut Vec<Action>,
    ) -> Result<(), BrokerError> {
        match origin {
            Origin::Client(client) if !self.clients.contains_key(&client) => {
                return Err(BrokerError::UnknownClient(client));
            }
            Origin::Broker(peer) if !self.peers.contains(&peer) => {
                return Err(BrokerError::UnknownPeer(peer));
            }
            _ => {}
        }
        self.counters.events_in += 1;
        let before = out.len();
        let plan = self.plan_for(&event.topic);
        out.reserve(plan.local.len() + plan.remote.len());
        for (client, profile) in &plan.local {
            out.push(Action::Deliver {
                client: *client,
                profile: *profile,
                event: Arc::clone(&event),
            });
        }
        self.counters.deliveries += plan.local.len() as u64;
        let skip_peer = match origin {
            Origin::Broker(peer) => Some(peer),
            Origin::Client(_) => None,
        };
        // One-hop mesh mode: an event that already crossed a link is
        // delivered locally and never re-forwarded — on a full mesh every
        // interested peer heard it from the origin broker directly, so a
        // second hop would duplicate (split horizon alone only protects
        // the link it came in on, not the rest of a cyclic mesh).
        let forward = !(self.local_adverts_only && skip_peer.is_some());
        if forward {
            for &peer in &plan.remote {
                if Some(peer) == skip_peer {
                    continue;
                }
                out.push(Action::Forward {
                    peer,
                    event: Arc::clone(&event),
                });
                self.counters.forwards += 1;
            }
        }
        if out.len() == before {
            self.counters.unroutable += 1;
        }
        if let Some(m) = &self.metrics {
            let emitted = (out.len() - before) as u64;
            m.events_in.inc();
            m.deliveries.add(plan.local.len() as u64);
            m.forwards.add(emitted.saturating_sub(plan.local.len() as u64));
            if emitted == 0 {
                m.unroutable.inc();
            }
            m.fanout.record(emitted);
        }
        Ok(())
    }

    fn release_local_interest(&mut self, filter: &TopicFilter, actions: &mut Vec<Action>) {
        if let Some(entry) = self.interest.get_mut(filter) {
            entry.local = entry.local.saturating_sub(1);
            if entry.local == 0 {
                if entry.is_empty() {
                    self.interest.remove(filter);
                }
                self.refresh_adverts_for(filter, actions);
            }
        }
    }

    /// Re-derives whether each peer should see an advert for `filter` and
    /// emits the diff.
    fn refresh_adverts_for(&mut self, filter: &TopicFilter, actions: &mut Vec<Action>) {
        // Sorted for cross-run-deterministic advert emission.
        let mut peers: Vec<BrokerId> = self.peers.iter().copied().collect();
        peers.sort_unstable();
        for peer in peers {
            self.refresh_advert_for_peer(peer, filter, actions);
        }
    }

    fn refresh_advert_for_peer(
        &mut self,
        peer: BrokerId,
        filter: &TopicFilter,
        actions: &mut Vec<Action>,
    ) {
        let want = self.interest.get(filter).is_some_and(|i| {
            if self.local_adverts_only {
                // One-hop mesh mode: advertise only what *this* node's
                // clients subscribed to; peer interest never fans back out.
                i.local > 0
            } else {
                i.interesting_to(peer)
            }
        });
        let advertised = self.advertised.entry(peer).or_default();
        let have = advertised.contains(filter);
        if want && !have {
            advertised.insert(filter.clone());
            actions.push(Action::AdvertiseAdd {
                peer,
                filter: filter.clone(),
            });
        } else if !want && have {
            advertised.remove(filter);
            actions.push(Action::AdvertiseRemove {
                peer,
                filter: filter.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventClass;
    use crate::topic::Topic;
    use bytes::Bytes;

    fn client(n: u64) -> ClientId {
        ClientId::from_raw(n)
    }

    fn broker(n: u64) -> BrokerId {
        BrokerId::from_raw(n)
    }

    fn filter(s: &str) -> TopicFilter {
        TopicFilter::parse(s).unwrap()
    }

    fn event(topic: &str, source: u64) -> Arc<Event> {
        Event::new(
            Topic::parse(topic).unwrap(),
            client(source),
            0,
            EventClass::Data,
            Bytes::from_static(b"x"),
        )
        .into_shared()
    }

    fn node() -> BrokerNode {
        BrokerNode::new(broker(1))
    }

    #[test]
    fn attach_subscribe_publish_deliver() {
        let mut n = node();
        n.handle(Input::AttachClient {
            client: client(1),
            profile: TransportProfile::Udp,
        })
        .unwrap();
        n.handle(Input::AttachClient {
            client: client(2),
            profile: TransportProfile::Tcp,
        })
        .unwrap();
        n.handle(Input::Subscribe {
            client: client(2),
            filter: filter("s/1/#"),
        })
        .unwrap();
        let actions = n
            .handle(Input::Publish {
                origin: Origin::Client(client(1)),
                event: event("s/1/video", 1),
            })
            .unwrap();
        assert_eq!(actions.len(), 1);
        let Action::Deliver { client: c, profile, .. } = &actions[0] else {
            panic!("expected delivery");
        };
        assert_eq!(*c, client(2));
        assert_eq!(*profile, TransportProfile::Tcp);
        assert_eq!(n.counters().deliveries, 1);
    }

    #[test]
    fn publish_with_no_subscribers_is_unroutable() {
        let mut n = node();
        n.handle(Input::AttachClient {
            client: client(1),
            profile: TransportProfile::Udp,
        })
        .unwrap();
        let actions = n
            .handle(Input::Publish {
                origin: Origin::Client(client(1)),
                event: event("nobody/listens", 1),
            })
            .unwrap();
        assert!(actions.is_empty());
        assert_eq!(n.counters().unroutable, 1);
    }

    #[test]
    fn unknown_client_inputs_error() {
        let mut n = node();
        assert_eq!(
            n.handle(Input::Subscribe {
                client: client(9),
                filter: filter("a"),
            }),
            Err(BrokerError::UnknownClient(client(9)))
        );
        assert_eq!(
            n.handle(Input::DetachClient { client: client(9) }),
            Err(BrokerError::UnknownClient(client(9)))
        );
        assert_eq!(
            n.handle(Input::Publish {
                origin: Origin::Client(client(9)),
                event: event("a", 9),
            }),
            Err(BrokerError::UnknownClient(client(9)))
        );
    }

    #[test]
    fn duplicate_attach_errors() {
        let mut n = node();
        n.handle(Input::AttachClient {
            client: client(1),
            profile: TransportProfile::Udp,
        })
        .unwrap();
        assert_eq!(
            n.handle(Input::AttachClient {
                client: client(1),
                profile: TransportProfile::Udp,
            }),
            Err(BrokerError::DuplicateClient(client(1)))
        );
    }

    #[test]
    fn first_local_subscription_advertises_to_peers() {
        let mut n = node();
        n.handle(Input::LinkUp { peer: broker(2) }).unwrap();
        n.handle(Input::AttachClient {
            client: client(1),
            profile: TransportProfile::Udp,
        })
        .unwrap();
        let actions = n
            .handle(Input::Subscribe {
                client: client(1),
                filter: filter("a/#"),
            })
            .unwrap();
        assert!(matches!(
            &actions[..],
            [Action::AdvertiseAdd { peer, filter: f }]
                if *peer == broker(2) && *f == filter("a/#")
        ));
        // Second subscriber to the same filter: no new advert.
        n.handle(Input::AttachClient {
            client: client(2),
            profile: TransportProfile::Udp,
        })
        .unwrap();
        let actions = n
            .handle(Input::Subscribe {
                client: client(2),
                filter: filter("a/#"),
            })
            .unwrap();
        assert!(actions.is_empty());
    }

    #[test]
    fn last_unsubscribe_withdraws_advert() {
        let mut n = node();
        n.handle(Input::LinkUp { peer: broker(2) }).unwrap();
        n.handle(Input::AttachClient {
            client: client(1),
            profile: TransportProfile::Udp,
        })
        .unwrap();
        n.handle(Input::Subscribe {
            client: client(1),
            filter: filter("a"),
        })
        .unwrap();
        let actions = n
            .handle(Input::Unsubscribe {
                client: client(1),
                filter: filter("a"),
            })
            .unwrap();
        assert!(matches!(&actions[..], [Action::AdvertiseRemove { .. }]));
    }

    #[test]
    fn detach_withdraws_all_interest() {
        let mut n = node();
        n.handle(Input::LinkUp { peer: broker(2) }).unwrap();
        n.handle(Input::AttachClient {
            client: client(1),
            profile: TransportProfile::Udp,
        })
        .unwrap();
        n.handle(Input::Subscribe {
            client: client(1),
            filter: filter("a"),
        })
        .unwrap();
        n.handle(Input::Subscribe {
            client: client(1),
            filter: filter("b/#"),
        })
        .unwrap();
        let actions = n
            .handle(Input::DetachClient { client: client(1) })
            .unwrap();
        let removes = actions
            .iter()
            .filter(|a| matches!(a, Action::AdvertiseRemove { .. }))
            .count();
        assert_eq!(removes, 2);
        assert_eq!(n.client_count(), 0);
    }

    #[test]
    fn split_horizon_does_not_echo_to_origin_peer() {
        let mut n = node();
        n.handle(Input::LinkUp { peer: broker(2) }).unwrap();
        n.handle(Input::LinkUp { peer: broker(3) }).unwrap();
        n.handle(Input::RemoteSubscribe {
            peer: broker(2),
            filter: filter("t/#"),
        })
        .unwrap();
        n.handle(Input::RemoteSubscribe {
            peer: broker(3),
            filter: filter("t/#"),
        })
        .unwrap();
        // Event arrives from broker 2: forward only to broker 3.
        let actions = n
            .handle(Input::Publish {
                origin: Origin::Broker(broker(2)),
                event: event("t/x", 1),
            })
            .unwrap();
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            &actions[0],
            Action::Forward { peer, .. } if *peer == broker(3)
        ));
    }

    #[test]
    fn remote_interest_propagates_to_other_peers_only() {
        let mut n = node();
        n.handle(Input::LinkUp { peer: broker(2) }).unwrap();
        n.handle(Input::LinkUp { peer: broker(3) }).unwrap();
        let actions = n
            .handle(Input::RemoteSubscribe {
                peer: broker(2),
                filter: filter("x"),
            })
            .unwrap();
        // Advertise to broker 3 but never back to broker 2.
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            &actions[0],
            Action::AdvertiseAdd { peer, .. } if *peer == broker(3)
        ));
    }

    #[test]
    fn link_up_after_subscriptions_advertises_existing_interest() {
        let mut n = node();
        n.handle(Input::AttachClient {
            client: client(1),
            profile: TransportProfile::Udp,
        })
        .unwrap();
        n.handle(Input::Subscribe {
            client: client(1),
            filter: filter("a"),
        })
        .unwrap();
        let actions = n.handle(Input::LinkUp { peer: broker(2) }).unwrap();
        assert_eq!(actions.len(), 1);
        assert!(matches!(&actions[0], Action::AdvertiseAdd { .. }));
    }

    #[test]
    fn link_down_drops_peer_interest() {
        let mut n = node();
        n.handle(Input::LinkUp { peer: broker(2) }).unwrap();
        n.handle(Input::LinkUp { peer: broker(3) }).unwrap();
        n.handle(Input::RemoteSubscribe {
            peer: broker(2),
            filter: filter("x"),
        })
        .unwrap();
        let actions = n.handle(Input::LinkDown { peer: broker(2) }).unwrap();
        // Broker 3 had an advert (interest from 2); it must be withdrawn.
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::AdvertiseRemove { peer, .. } if *peer == broker(3))));
        // No more forwarding to broker 2.
        let routed = n
            .handle(Input::Publish {
                origin: Origin::Client(client(1)),
                event: event("x", 1),
            })
            .unwrap_err();
        assert_eq!(routed, BrokerError::UnknownClient(client(1)));
    }

    #[test]
    fn duplicate_link_errors() {
        let mut n = node();
        n.handle(Input::LinkUp { peer: broker(2) }).unwrap();
        assert_eq!(
            n.handle(Input::LinkUp { peer: broker(2) }),
            Err(BrokerError::DuplicateLink(broker(2)))
        );
        assert_eq!(
            n.handle(Input::LinkDown { peer: broker(9) }),
            Err(BrokerError::UnknownPeer(broker(9)))
        );
    }

    #[test]
    fn publisher_receives_own_event_only_if_subscribed() {
        let mut n = node();
        n.handle(Input::AttachClient {
            client: client(1),
            profile: TransportProfile::Udp,
        })
        .unwrap();
        let actions = n
            .handle(Input::Publish {
                origin: Origin::Client(client(1)),
                event: event("t", 1),
            })
            .unwrap();
        assert!(actions.is_empty());
        n.handle(Input::Subscribe {
            client: client(1),
            filter: filter("t"),
        })
        .unwrap();
        let actions = n
            .handle(Input::Publish {
                origin: Origin::Client(client(1)),
                event: event("t", 1),
            })
            .unwrap();
        assert_eq!(actions.len(), 1);
    }
}
