//! Firewall and proxy traversal.
//!
//! NaradaBrokering let clients behind firewalls and HTTP proxies reach
//! remote brokers by tunnelling the event stream over an outbound
//! connection. [`TunnelClient`] models that: a three-step outbound
//! handshake (connect → challenge → established), after which events are
//! framed with a tunnel header. Inbound connections to the client never
//! occur — exactly the property that makes the scheme firewall-safe.

use core::fmt;

use mmcs_util::time::SimDuration;

/// Extra bytes the tunnel frame adds to each event (HTTP-style chunk
/// header on the proxy hop).
pub const TUNNEL_OVERHEAD_BYTES: usize = 24;

/// The tunnel handshake/connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunnelState {
    /// Nothing sent yet.
    Idle,
    /// `CONNECT` sent to the proxy, waiting for the challenge.
    Connecting,
    /// Challenge received, response sent, waiting for acceptance.
    Authenticating,
    /// Tunnel is up; events may flow.
    Established,
    /// The proxy rejected the tunnel.
    Rejected,
}

/// Messages exchanged during tunnel setup (carried over the outbound
/// connection the client opened).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TunnelMessage {
    /// Client → proxy: open a tunnel to `broker_addr`.
    Connect {
        /// Logical broker address, e.g. `"broker-3"`.
        broker_addr: String,
    },
    /// Proxy → client: prove you are allowed (simple nonce).
    Challenge {
        /// The nonce to echo.
        nonce: u64,
    },
    /// Client → proxy: challenge response.
    Response {
        /// The echoed nonce.
        nonce: u64,
    },
    /// Proxy → client: tunnel accepted.
    Accepted,
    /// Proxy → client: tunnel refused.
    Refused {
        /// Human-readable reason.
        reason: String,
    },
}

/// Error from driving the tunnel state machine out of order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TunnelError {
    state: TunnelState,
    what: &'static str,
}

impl fmt::Display for TunnelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tunnel {}: invalid in state {:?}", self.what, self.state)
    }
}

impl std::error::Error for TunnelError {}

/// Client side of the firewall tunnel.
///
/// # Examples
///
/// ```
/// use mmcs_broker::firewall::{TunnelClient, TunnelMessage, TunnelState};
///
/// let mut t = TunnelClient::new("broker-1");
/// let connect = t.start();
/// assert!(matches!(connect, TunnelMessage::Connect { .. }));
/// let response = t.on_message(TunnelMessage::Challenge { nonce: 7 })?.unwrap();
/// assert_eq!(response, TunnelMessage::Response { nonce: 7 });
/// t.on_message(TunnelMessage::Accepted)?;
/// assert_eq!(t.state(), TunnelState::Established);
/// assert_eq!(t.frame_len(100), 124); // payload + tunnel overhead
/// # Ok::<(), mmcs_broker::firewall::TunnelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TunnelClient {
    broker_addr: String,
    state: TunnelState,
}

impl TunnelClient {
    /// Creates an idle tunnel toward a broker address.
    pub fn new(broker_addr: impl Into<String>) -> Self {
        Self {
            broker_addr: broker_addr.into(),
            state: TunnelState::Idle,
        }
    }

    /// Current state.
    pub fn state(&self) -> TunnelState {
        self.state
    }

    /// Begins the handshake; returns the `Connect` to send outbound.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self) -> TunnelMessage {
        assert_eq!(self.state, TunnelState::Idle, "tunnel already started");
        self.state = TunnelState::Connecting;
        TunnelMessage::Connect {
            broker_addr: self.broker_addr.clone(),
        }
    }

    /// Feeds a proxy message; returns the client's reply, if any.
    ///
    /// # Errors
    ///
    /// Returns [`TunnelError`] for messages that are invalid in the
    /// current state.
    pub fn on_message(
        &mut self,
        message: TunnelMessage,
    ) -> Result<Option<TunnelMessage>, TunnelError> {
        match (self.state, message) {
            (TunnelState::Connecting, TunnelMessage::Challenge { nonce }) => {
                self.state = TunnelState::Authenticating;
                Ok(Some(TunnelMessage::Response { nonce }))
            }
            (TunnelState::Authenticating, TunnelMessage::Accepted) => {
                self.state = TunnelState::Established;
                Ok(None)
            }
            (TunnelState::Connecting | TunnelState::Authenticating, TunnelMessage::Refused { .. }) => {
                self.state = TunnelState::Rejected;
                Ok(None)
            }
            (state, _) => Err(TunnelError {
                state,
                what: "message",
            }),
        }
    }

    /// Wire size of an event framed through the tunnel.
    pub fn frame_len(&self, event_bytes: usize) -> usize {
        event_bytes + TUNNEL_OVERHEAD_BYTES
    }

    /// Latency penalty of the extra proxy hop.
    pub fn extra_latency(&self) -> SimDuration {
        SimDuration::from_micros(350)
    }

    /// Whether events may flow.
    pub fn is_established(&self) -> bool {
        self.state == TunnelState::Established
    }
}

/// Proxy side of the tunnel: validates the handshake and relays frames.
#[derive(Debug, Clone)]
pub struct TunnelProxy {
    nonce: u64,
    allow: Vec<String>,
    established: bool,
    expecting: Option<u64>,
}

impl TunnelProxy {
    /// Creates a proxy allowing tunnels to the listed broker addresses.
    pub fn new(nonce: u64, allow: Vec<String>) -> Self {
        Self {
            nonce,
            allow,
            established: false,
            expecting: None,
        }
    }

    /// Feeds a client message; returns the proxy's reply, if any.
    ///
    /// # Errors
    ///
    /// Returns [`TunnelError`] for out-of-order messages.
    pub fn on_message(
        &mut self,
        message: TunnelMessage,
    ) -> Result<Option<TunnelMessage>, TunnelError> {
        match message {
            TunnelMessage::Connect { broker_addr } => {
                if self.expecting.is_some() || self.established {
                    return Err(TunnelError {
                        state: TunnelState::Connecting,
                        what: "duplicate connect",
                    });
                }
                if !self.allow.contains(&broker_addr) {
                    return Ok(Some(TunnelMessage::Refused {
                        reason: format!("broker {broker_addr} not allowed"),
                    }));
                }
                self.expecting = Some(self.nonce);
                Ok(Some(TunnelMessage::Challenge { nonce: self.nonce }))
            }
            TunnelMessage::Response { nonce } => match self.expecting.take() {
                Some(expected) if expected == nonce => {
                    self.established = true;
                    Ok(Some(TunnelMessage::Accepted))
                }
                Some(_) => Ok(Some(TunnelMessage::Refused {
                    reason: "bad challenge response".to_owned(),
                })),
                None => Err(TunnelError {
                    state: TunnelState::Idle,
                    what: "unexpected response",
                }),
            },
            other => Err(TunnelError {
                state: TunnelState::Idle,
                what: match other {
                    TunnelMessage::Challenge { .. } => "challenge from client",
                    TunnelMessage::Accepted => "accepted from client",
                    TunnelMessage::Refused { .. } => "refused from client",
                    TunnelMessage::Connect { .. } | TunnelMessage::Response { .. } => {
                        unreachable!("handled above")
                    }
                },
            }),
        }
    }

    /// Whether the tunnel completed its handshake.
    pub fn is_established(&self) -> bool {
        self.established
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handshake(
        client: &mut TunnelClient,
        proxy: &mut TunnelProxy,
    ) -> Result<(), Box<dyn std::error::Error>> {
        let mut to_proxy = Some(client.start());
        while let Some(message) = to_proxy.take() {
            if let Some(reply) = proxy.on_message(message)? {
                to_proxy = client.on_message(reply)?;
            }
        }
        Ok(())
    }

    #[test]
    fn successful_handshake_establishes_both_sides() {
        let mut client = TunnelClient::new("broker-1");
        let mut proxy = TunnelProxy::new(42, vec!["broker-1".to_owned()]);
        handshake(&mut client, &mut proxy).unwrap();
        assert!(client.is_established());
        assert!(proxy.is_established());
    }

    #[test]
    fn disallowed_broker_is_refused() {
        let mut client = TunnelClient::new("broker-9");
        let mut proxy = TunnelProxy::new(42, vec!["broker-1".to_owned()]);
        handshake(&mut client, &mut proxy).unwrap();
        assert_eq!(client.state(), TunnelState::Rejected);
        assert!(!proxy.is_established());
    }

    #[test]
    fn wrong_nonce_is_refused() {
        let mut proxy = TunnelProxy::new(42, vec!["b".to_owned()]);
        proxy
            .on_message(TunnelMessage::Connect {
                broker_addr: "b".to_owned(),
            })
            .unwrap();
        let reply = proxy
            .on_message(TunnelMessage::Response { nonce: 7 })
            .unwrap();
        assert!(matches!(reply, Some(TunnelMessage::Refused { .. })));
        assert!(!proxy.is_established());
    }

    #[test]
    fn out_of_order_messages_error() {
        let mut client = TunnelClient::new("b");
        assert!(client.on_message(TunnelMessage::Accepted).is_err());
        let mut proxy = TunnelProxy::new(1, vec![]);
        assert!(proxy
            .on_message(TunnelMessage::Response { nonce: 1 })
            .is_err());
        assert!(proxy.on_message(TunnelMessage::Accepted).is_err());
    }

    #[test]
    fn frame_overhead_and_latency() {
        let client = TunnelClient::new("b");
        assert_eq!(client.frame_len(0), TUNNEL_OVERHEAD_BYTES);
        assert_eq!(client.frame_len(1000), 1000 + TUNNEL_OVERHEAD_BYTES);
        assert!(client.extra_latency() > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "already started")]
    fn double_start_panics() {
        let mut client = TunnelClient::new("b");
        client.start();
        client.start();
    }
}
