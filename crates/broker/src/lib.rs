//! A NaradaBrokering-style distributed publish/subscribe event broker.
//!
//! NaradaBrokering is the messaging middleware under Global-MMCS: all
//! group communication — XGSP signaling fan-out and, crucially, the RTP
//! audio/video itself — travels as events published to hierarchical
//! topics and routed through a distributed network of brokers. This crate
//! re-implements that middleware as a **sans-IO core** plus drivers:
//!
//! * [`event`] — the event model ([`event::Event`]): topic, source,
//!   sequence, payload, priority class.
//! * [`topic`] — hierarchical topic names (`session/42/video`) and
//!   wildcard filters (`session/42/*`, `session/#`) with a trie-backed
//!   subscription table.
//! * [`node`] — [`node::BrokerNode`], the pure broker state machine:
//!   client attach/detach, subscribe/unsubscribe, publish routing,
//!   broker-to-broker subscription propagation over a tree of links.
//! * [`network`] — [`network::BrokerNetwork`], an in-memory assembly of
//!   several nodes for direct (driver-less) use and unit tests.
//! * [`profile`] — transport profiles (TCP/UDP/Multicast/SSL/raw-RTP)
//!   with per-packet overheads, mirroring NaradaBrokering's pluggable
//!   transports.
//! * [`batch`] — the send-batching optimization the paper alludes to
//!   ("after we made some optimizations on the message transmission");
//!   the ablation benchmark toggles it.
//! * [`firewall`] — outbound-only tunnelling through a proxy for clients
//!   behind firewalls.
//! * [`reliable`] — positive-ack reliable delivery for control-plane
//!   events, and [`ordering`] — per-source in-order release.
//! * [`liveness`] — heartbeat failure detection for broker links, and
//!   [`rtpproxy`] — the raw-RTP ⇄ event bridge for legacy endpoints.
//! * [`p2p`] — the JXTA-like peer-to-peer delivery mode; combined with
//!   the client-server mode it reproduces the paper's
//!   performance-functionality trade-off knob.
//! * [`simdrv`] — drives a [`node::BrokerNode`] inside the deterministic
//!   simulator with a CPU cost model; used by every experiment.
//! * [`threaded`] — a real multi-threaded in-process driver with
//!   crossbeam channels, for the examples and concurrency tests.
//! * [`sharded`] — the multi-worker runtime: the topic space is
//!   partitioned across N shards, each with its own node slice and
//!   batched ingress queue, joined by a cross-shard forwarding ring.
//!
//! # Examples
//!
//! ```
//! use mmcs_broker::network::BrokerNetwork;
//! use mmcs_broker::topic::{Topic, TopicFilter};
//! use bytes::Bytes;
//!
//! let mut net = BrokerNetwork::new();
//! let a = net.add_broker();
//! let b = net.add_broker();
//! net.link(a, b)?;
//!
//! let alice = net.attach_client(a);
//! let bob = net.attach_client(b);
//! net.subscribe(bob, TopicFilter::parse("session/7/*")?)?;
//!
//! net.publish(alice, Topic::parse("session/7/video")?, Bytes::from_static(b"frame"));
//! let delivered = net.drain_deliveries();
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].client, bob);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

/// Send batching and the broker CPU cost model.
pub mod batch;
/// The broker event: topic, origin, sequence, class and payload.
pub mod event;
/// Federation runtime: N sharded brokers joined by gossip interest
/// exchange, hop-bounded inter-node routing and zone-homed clients.
pub mod cluster;
/// Firewall/NAT traversal modelling for client transports.
pub mod firewall;
/// The federation topology rebuilt inside the deterministic simulator:
/// one broker process per cluster node, links from the latency map.
pub mod clustersim;
/// Anti-entropy gossip of per-node subscription interest.
pub mod gossip;
/// Liveness tracking: heartbeats and failure suspicion for peers.
pub mod liveness;
/// Telemetry instruments for the broker hot path and its drivers.
pub mod metrics;
/// A synchronous in-process network of broker nodes for tests and sims.
pub mod network;
/// The sans-IO broker node state machine (`handle(Input) -> Actions`).
pub mod node;
/// Per-publisher sequence tracking and in-order delivery guards.
pub mod ordering;
/// Peer-to-peer delivery mode, bypassing the broker overlay.
pub mod p2p;
/// Transport profiles (UDP/TCP/tunnelled) attached to clients.
pub mod profile;
/// Reliable-delivery layer: acknowledgements, retransmit and dedup.
pub mod reliable;
/// RTP proxying through the broker overlay for media topics.
pub mod rtpproxy;
/// A sharded multi-worker runtime: topic-partitioned node slices with
/// batched ingress and a cross-shard forwarding ring.
pub mod sharded;
/// The sharded topology rebuilt inside the deterministic simulator:
/// one broker process per shard, shared placement hashes, full mesh.
pub mod shardsim;
/// Drives broker nodes from the discrete-event simulator clock.
pub mod simdrv;
/// Flat zero-copy wire encoding for events over pooled frame buffers.
pub mod wire;
/// A threaded runtime wrapping the sans-IO node in real OS threads.
pub mod threaded;
/// Hierarchical topics and wildcard topic filters.
pub mod topic;

pub use event::Event;
pub use node::BrokerNode;
pub use topic::{Topic, TopicFilter};
