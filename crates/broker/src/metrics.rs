//! Telemetry instruments for the broker hot path.
//!
//! [`BrokerMetrics`] bundles every instrument a broker node and its
//! driver report into: publish-rate counters, the fan-out width
//! histogram, route-cache hit/miss (the PR 1 fast path), driver queue
//! depth, reliable-channel retransmissions, and failure-detector
//! transitions. All instruments are relaxed atomics from
//! `mmcs-telemetry`, so an instrumented warm publish stays
//! **zero-allocation and lock-free** — `tests/route_alloc.rs` and the
//! `telemetry_overhead` Criterion group hold that line.
//!
//! Instrumentation is opt-in: [`node::BrokerNode`](crate::node) carries
//! an `Option<Arc<BrokerMetrics>>` and pays one branch per publish when
//! disabled.

use std::sync::Arc;

use mmcs_telemetry::{Counter, Gauge, Histogram, Registry};

/// Shared instruments for one broker (node + driver). See the
/// [module docs](self).
#[derive(Debug)]
pub struct BrokerMetrics {
    /// Events accepted from clients or peers (publish rate numerator).
    pub events_in: Arc<Counter>,
    /// Client deliveries emitted.
    pub deliveries: Arc<Counter>,
    /// Broker-to-broker forwards emitted.
    pub forwards: Arc<Counter>,
    /// Publishes that matched no subscriber anywhere.
    pub unroutable: Arc<Counter>,
    /// Route-plan cache hits (plan reused from the memo).
    pub route_cache_hits: Arc<Counter>,
    /// Route-plan cache misses (plan rebuilt from the tables).
    pub route_cache_misses: Arc<Counter>,
    /// Fan-out width per publish (deliveries + forwards emitted).
    pub fanout: Arc<Histogram>,
    /// Driver inbound queue depth (commands accepted but not yet
    /// processed by the broker loop).
    pub queue_depth: Arc<Gauge>,
    /// Reliable-channel retransmissions attributed to this broker's
    /// clients.
    pub retransmissions: Arc<Counter>,
    /// Failure-detector Suspected transitions observed.
    pub peers_suspected: Arc<Counter>,
    /// Failure-detector Rejoined transitions observed.
    pub peers_rejoined: Arc<Counter>,
    /// Commands drained per worker wakeup (sharded runtime ingress
    /// batches; stays empty under the one-command-per-recv drivers).
    pub batch_size: Arc<Histogram>,
    /// Events handed to a peer shard over the sharded runtime's
    /// forwarding ring, counted at the sending (topic-owner) shard.
    pub cross_shard_forwards: Arc<Counter>,
}

impl BrokerMetrics {
    /// Registers the bundle under `{prefix}_…` names (e.g. prefix
    /// `broker0` gives `broker0_events_in_total`).
    pub fn register(registry: &Registry, prefix: &str) -> Arc<Self> {
        Arc::new(Self {
            events_in: registry.counter(
                &format!("{prefix}_events_in_total"),
                "events accepted from clients or peers",
            ),
            deliveries: registry.counter(
                &format!("{prefix}_deliveries_total"),
                "client deliveries emitted",
            ),
            forwards: registry.counter(
                &format!("{prefix}_forwards_total"),
                "broker-to-broker forwards emitted",
            ),
            unroutable: registry.counter(
                &format!("{prefix}_unroutable_total"),
                "publishes that matched no subscriber",
            ),
            route_cache_hits: registry.counter(
                &format!("{prefix}_route_cache_hits_total"),
                "route-plan cache hits",
            ),
            route_cache_misses: registry.counter(
                &format!("{prefix}_route_cache_misses_total"),
                "route-plan cache misses (plan rebuilt)",
            ),
            fanout: registry.histogram(
                &format!("{prefix}_fanout_width"),
                "actions emitted per publish (deliveries + forwards)",
            ),
            queue_depth: registry.gauge(
                &format!("{prefix}_queue_depth"),
                "driver commands accepted but not yet processed",
            ),
            retransmissions: registry.counter(
                &format!("{prefix}_retransmissions_total"),
                "reliable-channel retransmissions",
            ),
            peers_suspected: registry.counter(
                &format!("{prefix}_peers_suspected_total"),
                "failure-detector Suspected transitions",
            ),
            peers_rejoined: registry.counter(
                &format!("{prefix}_peers_rejoined_total"),
                "failure-detector Rejoined transitions",
            ),
            batch_size: registry.histogram(
                &format!("{prefix}_batch_size"),
                "commands drained per worker wakeup",
            ),
            cross_shard_forwards: registry.counter(
                &format!("{prefix}_cross_shard_forwards_total"),
                "events forwarded to peer shards over the ring",
            ),
        })
    }

    /// Creates a detached bundle (not in any registry) for benches and
    /// tests that only need the instruments themselves.
    pub fn detached() -> Arc<Self> {
        Arc::new(Self {
            events_in: Arc::new(Counter::new()),
            deliveries: Arc::new(Counter::new()),
            forwards: Arc::new(Counter::new()),
            unroutable: Arc::new(Counter::new()),
            route_cache_hits: Arc::new(Counter::new()),
            route_cache_misses: Arc::new(Counter::new()),
            fanout: Arc::new(Histogram::new()),
            queue_depth: Arc::new(Gauge::new()),
            retransmissions: Arc::new(Counter::new()),
            peers_suspected: Arc::new(Counter::new()),
            peers_rejoined: Arc::new(Counter::new()),
            batch_size: Arc::new(Histogram::new()),
            cross_shard_forwards: Arc::new(Counter::new()),
        })
    }
}

/// One [`BrokerMetrics`] bundle per worker shard of a
/// [`crate::sharded::ShardedBroker`], registered under per-shard label
/// prefixes (`{prefix}_shard{i}_…`) so queue depth, batch sizes, and
/// cross-shard forwards can be read per shard and summed across them.
#[derive(Debug)]
pub struct ShardedBrokerMetrics {
    shards: Vec<Arc<BrokerMetrics>>,
}

impl ShardedBrokerMetrics {
    /// Registers `shards` per-shard bundles under
    /// `{prefix}_shard{i}_…` names.
    pub fn register(registry: &Registry, prefix: &str, shards: usize) -> Arc<Self> {
        Arc::new(Self {
            shards: (0..shards)
                .map(|i| BrokerMetrics::register(registry, &format!("{prefix}_shard{i}")))
                .collect(),
        })
    }

    /// Creates detached per-shard bundles (not in any registry) for
    /// tests and benches.
    pub fn detached(shards: usize) -> Arc<Self> {
        Arc::new(Self {
            shards: (0..shards).map(|_| BrokerMetrics::detached()).collect(),
        })
    }

    /// Number of shard bundles.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The bundle for shard `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn shard(&self, index: usize) -> &Arc<BrokerMetrics> {
        &self.shards[index]
    }

    /// Iterates the per-shard bundles in shard order.
    pub fn shards(&self) -> impl Iterator<Item = &Arc<BrokerMetrics>> {
        self.shards.iter()
    }

    /// Sums one counter across all shards (e.g.
    /// `m.total(|s| s.deliveries.get())`).
    pub fn total(&self, read: impl Fn(&BrokerMetrics) -> u64) -> u64 {
        self.shards.iter().map(|s| read(s)).sum()
    }
}

/// Instruments for one federation node's cluster layer (the gossip
/// loop plus the inter-node forwarding plane of
/// [`crate::cluster::Cluster`]). One bundle per node, registered under
/// per-node label prefixes by [`ClusterMetrics`].
#[derive(Debug)]
pub struct ClusterNodeMetrics {
    /// Gossip rounds initiated (ticks processed).
    pub gossip_rounds: Arc<Counter>,
    /// Gossip entries accepted into the interest view.
    pub gossip_entries_applied: Arc<Counter>,
    /// Current `(node, filter)` interest entries known cluster-wide.
    pub interest_entries: Arc<Gauge>,
    /// Event frames sent toward other nodes, counted at the origin.
    pub inter_node_forwards: Arc<Counter>,
    /// Event frames relayed for other nodes (multi-hop middle legs).
    pub relays: Arc<Counter>,
    /// Links traversed by each event frame accepted at its destination.
    pub hop_histogram: Arc<Histogram>,
    /// Cluster frames received (before validation).
    pub frames_in: Arc<Counter>,
    /// Frames rejected by the typed cluster/gossip/event decoders.
    pub decode_errors: Arc<Counter>,
    /// Event frames routed under an interest generation older than the
    /// destination's current one (harmless — counted for observability).
    pub stale_generation: Arc<Counter>,
    /// Frames dropped at the hop-count bound (would-be forwarding loop).
    pub hop_limit_drops: Arc<Counter>,
    /// Frames dropped on an administratively-down link (chaos faults).
    pub link_drops: Arc<Counter>,
    /// Gossip frames dropped by an injected gossip-loss fault.
    pub gossip_drops: Arc<Counter>,
    /// Frames dropped for lack of any route to their destination.
    pub no_route_drops: Arc<Counter>,
    /// Duplicate frames suppressed by the TCP link-sequence dedup.
    pub duplicate_frames: Arc<Counter>,
    /// TCP link re-establishments after a connection failure.
    pub reconnects: Arc<Counter>,
}

impl ClusterNodeMetrics {
    /// Registers the bundle under `{prefix}_…` names.
    pub fn register(registry: &Registry, prefix: &str) -> Arc<Self> {
        Arc::new(Self {
            gossip_rounds: registry.counter(
                &format!("{prefix}_gossip_rounds_total"),
                "gossip rounds initiated",
            ),
            gossip_entries_applied: registry.counter(
                &format!("{prefix}_gossip_entries_applied_total"),
                "gossip entries accepted into the interest view",
            ),
            interest_entries: registry.gauge(
                &format!("{prefix}_interest_entries"),
                "(node, filter) interest entries currently known",
            ),
            inter_node_forwards: registry.counter(
                &format!("{prefix}_inter_node_forwards_total"),
                "event frames sent toward other nodes",
            ),
            relays: registry.counter(
                &format!("{prefix}_relays_total"),
                "event frames relayed for other nodes",
            ),
            hop_histogram: registry.histogram(
                &format!("{prefix}_hops"),
                "links traversed per delivered event frame",
            ),
            frames_in: registry.counter(
                &format!("{prefix}_frames_in_total"),
                "cluster frames received",
            ),
            decode_errors: registry.counter(
                &format!("{prefix}_decode_errors_total"),
                "frames rejected by the typed decoders",
            ),
            stale_generation: registry.counter(
                &format!("{prefix}_stale_generation_total"),
                "event frames routed under an outdated interest generation",
            ),
            hop_limit_drops: registry.counter(
                &format!("{prefix}_hop_limit_drops_total"),
                "frames dropped at the hop-count bound",
            ),
            link_drops: registry.counter(
                &format!("{prefix}_link_drops_total"),
                "frames dropped on a down link",
            ),
            gossip_drops: registry.counter(
                &format!("{prefix}_gossip_drops_total"),
                "gossip frames dropped by an injected loss fault",
            ),
            no_route_drops: registry.counter(
                &format!("{prefix}_no_route_drops_total"),
                "frames dropped for lack of a route",
            ),
            duplicate_frames: registry.counter(
                &format!("{prefix}_duplicate_frames_total"),
                "duplicates suppressed by the TCP link dedup",
            ),
            reconnects: registry.counter(
                &format!("{prefix}_reconnects_total"),
                "TCP link re-establishments",
            ),
        })
    }

    /// Creates a detached bundle (not in any registry).
    pub fn detached() -> Arc<Self> {
        Arc::new(Self {
            gossip_rounds: Arc::new(Counter::new()),
            gossip_entries_applied: Arc::new(Counter::new()),
            interest_entries: Arc::new(Gauge::new()),
            inter_node_forwards: Arc::new(Counter::new()),
            relays: Arc::new(Counter::new()),
            hop_histogram: Arc::new(Histogram::new()),
            frames_in: Arc::new(Counter::new()),
            decode_errors: Arc::new(Counter::new()),
            stale_generation: Arc::new(Counter::new()),
            hop_limit_drops: Arc::new(Counter::new()),
            link_drops: Arc::new(Counter::new()),
            gossip_drops: Arc::new(Counter::new()),
            no_route_drops: Arc::new(Counter::new()),
            duplicate_frames: Arc::new(Counter::new()),
            reconnects: Arc::new(Counter::new()),
        })
    }
}

/// One [`ClusterNodeMetrics`] bundle per federation node, registered
/// under `{prefix}_node{i}_…` labels — the cluster counterpart of
/// [`ShardedBrokerMetrics`].
#[derive(Debug)]
pub struct ClusterMetrics {
    nodes: Vec<Arc<ClusterNodeMetrics>>,
}

impl ClusterMetrics {
    /// Registers `nodes` per-node bundles under `{prefix}_node{i}_…`.
    pub fn register(registry: &Registry, prefix: &str, nodes: usize) -> Arc<Self> {
        Arc::new(Self {
            nodes: (0..nodes)
                .map(|i| ClusterNodeMetrics::register(registry, &format!("{prefix}_node{i}")))
                .collect(),
        })
    }

    /// Creates detached per-node bundles (not in any registry).
    pub fn detached(nodes: usize) -> Arc<Self> {
        Arc::new(Self {
            nodes: (0..nodes).map(|_| ClusterNodeMetrics::detached()).collect(),
        })
    }

    /// Number of node bundles.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The bundle for node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node(&self, index: usize) -> &Arc<ClusterNodeMetrics> {
        &self.nodes[index]
    }

    /// Iterates the per-node bundles in node order.
    pub fn nodes(&self) -> impl Iterator<Item = &Arc<ClusterNodeMetrics>> {
        self.nodes.iter()
    }

    /// Sums one counter across all nodes (e.g.
    /// `m.total(|n| n.relays.get())`).
    pub fn total(&self, read: impl Fn(&ClusterNodeMetrics) -> u64) -> u64 {
        self.nodes.iter().map(|n| read(n)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names_follow_prefix() {
        let registry = Registry::new();
        let m = BrokerMetrics::register(&registry, "broker0");
        m.events_in.inc();
        m.fanout.record(3);
        let text = registry.render_prometheus();
        assert!(text.contains("broker0_events_in_total 1"));
        assert!(text.contains("broker0_fanout_width_count 1"));
        assert!(text.contains("broker0_queue_depth 0"));
        assert!(text.contains("broker0_batch_size_count 0"));
        assert!(text.contains("broker0_cross_shard_forwards_total 0"));
    }

    #[test]
    fn sharded_bundle_registers_per_shard_labels() {
        let registry = Registry::new();
        let m = ShardedBrokerMetrics::register(&registry, "b", 3);
        assert_eq!(m.shard_count(), 3);
        m.shard(0).events_in.add(2);
        m.shard(2).events_in.add(5);
        m.shard(1).cross_shard_forwards.inc();
        m.shard(1).batch_size.record(8);
        assert_eq!(m.total(|s| s.events_in.get()), 7);
        assert_eq!(m.total(|s| s.cross_shard_forwards.get()), 1);
        let text = registry.render_prometheus();
        assert!(text.contains("b_shard0_events_in_total 2"));
        assert!(text.contains("b_shard2_events_in_total 5"));
        assert!(text.contains("b_shard1_cross_shard_forwards_total 1"));
        assert!(text.contains("b_shard1_batch_size_count 1"));
        assert_eq!(m.shards().count(), 3);
    }

    #[test]
    fn cluster_bundle_registers_per_node_labels() {
        let registry = Registry::new();
        let m = ClusterMetrics::register(&registry, "fed", 2);
        assert_eq!(m.node_count(), 2);
        m.node(0).gossip_rounds.inc();
        m.node(1).inter_node_forwards.add(3);
        m.node(1).hop_histogram.record(2);
        m.node(0).interest_entries.set(5);
        assert_eq!(m.total(|n| n.inter_node_forwards.get()), 3);
        let text = registry.render_prometheus();
        assert!(text.contains("fed_node0_gossip_rounds_total 1"));
        assert!(text.contains("fed_node1_inter_node_forwards_total 3"));
        assert!(text.contains("fed_node1_hops_count 1"));
        assert!(text.contains("fed_node0_interest_entries 5"));
        assert_eq!(m.nodes().count(), 2);
    }
}
