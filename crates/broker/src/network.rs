//! An in-memory broker network.
//!
//! [`BrokerNetwork`] wires several [`BrokerNode`]s together with zero-cost
//! synchronous links: every action a node emits is executed immediately
//! (forwards are fed to the peer node, adverts update the peer's interest
//! table, deliveries are collected for the caller). This is the
//! driver-less mode used by unit/property tests and by components that
//! need pub/sub semantics without a network model; the simulator driver
//! in [`crate::simdrv`] adds time and cost.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use mmcs_util::id::{BrokerId, ClientId, IdAllocator};

use crate::event::{Event, EventClass};
use crate::node::{Action, BrokerError, BrokerNode, Input, Origin};
use crate::profile::TransportProfile;
use crate::topic::{Topic, TopicFilter};
use crate::wire;

/// A delivery produced by [`BrokerNetwork::publish`].
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The receiving client.
    pub client: ClientId,
    /// The client's transport profile.
    pub profile: TransportProfile,
    /// The delivered event.
    pub event: Arc<Event>,
}

/// Error from network-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// Underlying broker rejected the input.
    Broker(BrokerError),
    /// Linking these brokers would create a cycle (broker networks are
    /// trees; see [`crate::node`] module docs).
    WouldCycle(BrokerId, BrokerId),
    /// Unknown broker id.
    UnknownBroker(BrokerId),
    /// Unknown client id.
    UnknownClient(ClientId),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Broker(e) => write!(f, "broker error: {e}"),
            NetworkError::WouldCycle(a, b) => {
                write!(f, "linking {a} and {b} would create a cycle")
            }
            NetworkError::UnknownBroker(b) => write!(f, "unknown broker {b}"),
            NetworkError::UnknownClient(c) => write!(f, "unknown client {c}"),
        }
    }
}

impl std::error::Error for NetworkError {}

impl From<BrokerError> for NetworkError {
    fn from(e: BrokerError) -> Self {
        NetworkError::Broker(e)
    }
}

/// Several brokers plus synchronous links. See the [module docs](self).
#[derive(Debug, Default)]
pub struct BrokerNetwork {
    nodes: HashMap<BrokerId, BrokerNode>,
    broker_ids: IdAllocator<BrokerId>,
    client_ids: IdAllocator<ClientId>,
    client_home: HashMap<ClientId, BrokerId>,
    client_seq: HashMap<ClientId, u64>,
    deliveries: Vec<Delivery>,
    /// Recycled action buffers, one per level of cascade depth reached so
    /// far; steady-state dispatch allocates nothing.
    spare: Vec<Vec<Action>>,
}

impl BrokerNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a broker node.
    pub fn add_broker(&mut self) -> BrokerId {
        let id = self.broker_ids.next();
        self.nodes.insert(id, BrokerNode::new(id));
        id
    }

    /// Number of brokers.
    pub fn broker_count(&self) -> usize {
        self.nodes.len()
    }

    /// Borrows a broker node (e.g. to read counters).
    pub fn broker(&self, id: BrokerId) -> Option<&BrokerNode> {
        self.nodes.get(&id)
    }

    /// Links two brokers.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::WouldCycle`] if the brokers are already
    /// connected through other links, and [`NetworkError::UnknownBroker`]
    /// for unknown ids.
    pub fn link(&mut self, a: BrokerId, b: BrokerId) -> Result<(), NetworkError> {
        if !self.nodes.contains_key(&a) {
            return Err(NetworkError::UnknownBroker(a));
        }
        if !self.nodes.contains_key(&b) {
            return Err(NetworkError::UnknownBroker(b));
        }
        if a == b || self.connected(a, b) {
            return Err(NetworkError::WouldCycle(a, b));
        }
        self.dispatch(a, Input::LinkUp { peer: b })?;
        self.dispatch(b, Input::LinkUp { peer: a })?;
        Ok(())
    }

    /// Tears down a link (both directions).
    ///
    /// # Errors
    ///
    /// Returns an error if either side has no such link.
    pub fn unlink(&mut self, a: BrokerId, b: BrokerId) -> Result<(), NetworkError> {
        self.dispatch(a, Input::LinkDown { peer: b })?;
        self.dispatch(b, Input::LinkDown { peer: a })?;
        Ok(())
    }

    /// Whether two brokers can reach each other over links.
    fn connected(&self, from: BrokerId, to: BrokerId) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(current) = stack.pop() {
            if current == to {
                return true;
            }
            if let Some(node) = self.nodes.get(&current) {
                for peer in node.peers() {
                    if !seen.contains(&peer) {
                        seen.push(peer);
                        stack.push(peer);
                    }
                }
            }
        }
        false
    }

    /// Attaches a new client to a broker with the default (TCP) profile.
    ///
    /// # Panics
    ///
    /// Panics if `broker` is unknown.
    pub fn attach_client(&mut self, broker: BrokerId) -> ClientId {
        self.attach_client_with(broker, TransportProfile::default())
    }

    /// Attaches a new client with an explicit transport profile.
    ///
    /// # Panics
    ///
    /// Panics if `broker` is unknown.
    pub fn attach_client_with(&mut self, broker: BrokerId, profile: TransportProfile) -> ClientId {
        assert!(self.nodes.contains_key(&broker), "unknown broker {broker}");
        let client = self.client_ids.next();
        self.dispatch(broker, Input::AttachClient { client, profile })
            .expect("fresh client id cannot collide");
        self.client_home.insert(client, broker);
        client
    }

    /// Detaches a client, dropping its subscriptions everywhere.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownClient`] if the client is unknown.
    pub fn detach_client(&mut self, client: ClientId) -> Result<(), NetworkError> {
        let broker = self
            .client_home
            .remove(&client)
            .ok_or(NetworkError::UnknownClient(client))?;
        self.dispatch(broker, Input::DetachClient { client })?;
        Ok(())
    }

    /// Subscribes a client to a filter.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownClient`] if the client is unknown.
    pub fn subscribe(&mut self, client: ClientId, filter: TopicFilter) -> Result<(), NetworkError> {
        let broker = *self
            .client_home
            .get(&client)
            .ok_or(NetworkError::UnknownClient(client))?;
        self.dispatch(broker, Input::Subscribe { client, filter })?;
        Ok(())
    }

    /// Removes one subscription.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownClient`] if the client is unknown.
    pub fn unsubscribe(
        &mut self,
        client: ClientId,
        filter: TopicFilter,
    ) -> Result<(), NetworkError> {
        let broker = *self
            .client_home
            .get(&client)
            .ok_or(NetworkError::UnknownClient(client))?;
        self.dispatch(broker, Input::Unsubscribe { client, filter })?;
        Ok(())
    }

    /// Publishes a data event from a client; deliveries accumulate until
    /// [`BrokerNetwork::drain_deliveries`].
    ///
    /// # Panics
    ///
    /// Panics if `client` is unknown. Use [`BrokerNetwork::try_publish`]
    /// to handle that case as an error instead.
    pub fn publish(&mut self, client: ClientId, topic: Topic, payload: Bytes) {
        self.publish_class(client, topic, EventClass::Data, payload);
    }

    /// Publishes an event with an explicit class.
    ///
    /// # Panics
    ///
    /// Panics if `client` is unknown. Use
    /// [`BrokerNetwork::try_publish_class`] to handle that case as an
    /// error instead.
    pub fn publish_class(
        &mut self,
        client: ClientId,
        topic: Topic,
        class: EventClass,
        payload: Bytes,
    ) {
        self.try_publish_class(client, topic, class, payload)
            .expect("publish requires an attached client");
    }

    /// Publishes a data event from a client, reporting an unknown client
    /// as an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownClient`] if the client is not
    /// attached (never attached, or already detached).
    pub fn try_publish(
        &mut self,
        client: ClientId,
        topic: Topic,
        payload: Bytes,
    ) -> Result<(), NetworkError> {
        self.try_publish_class(client, topic, EventClass::Data, payload)
    }

    /// Publishes an event with an explicit class, reporting an unknown
    /// client as an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownClient`] if the client is not
    /// attached (never attached, or already detached).
    pub fn try_publish_class(
        &mut self,
        client: ClientId,
        topic: Topic,
        class: EventClass,
        payload: Bytes,
    ) -> Result<(), NetworkError> {
        let broker = *self
            .client_home
            .get(&client)
            .ok_or(NetworkError::UnknownClient(client))?;
        let seq = self.client_seq.entry(client).or_insert(0);
        let event = Event::new(topic, client, *seq, class, payload).into_shared();
        *seq += 1;
        self.dispatch(broker, Input::Publish {
            origin: Origin::Client(client),
            event,
        })
    }

    /// Takes all deliveries accumulated so far.
    pub fn drain_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// Feeds one input to a node using a recycled action buffer, then
    /// executes whatever it emitted. The buffer is returned to the pool
    /// afterwards, so steady-state traffic allocates nothing here.
    fn dispatch(&mut self, broker: BrokerId, input: Input) -> Result<(), NetworkError> {
        let mut actions = self.spare.pop().unwrap_or_default();
        let outcome = match self.nodes.get_mut(&broker) {
            Some(node) => node.handle_into(input, &mut actions).map_err(NetworkError::from),
            None => Err(NetworkError::UnknownBroker(broker)),
        };
        if outcome.is_ok() {
            self.execute(broker, &mut actions);
        }
        actions.clear();
        self.spare.push(actions);
        outcome
    }

    /// Executes a node's actions synchronously, cascading forwards and
    /// adverts into peer nodes.
    fn execute(&mut self, from: BrokerId, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Deliver {
                    client,
                    profile,
                    event,
                } => self.deliveries.push(Delivery {
                    client,
                    profile,
                    event,
                }),
                Action::Forward { peer, event } => {
                    // Broker-to-broker hops travel as pooled wire frames,
                    // exactly like the sharded runtime's ring: encode once
                    // into a pool buffer, decode zero-copy on the peer.
                    // Routing every multi-hop test through the codec keeps
                    // the oracle honest about the wire format.
                    let frame = wire::encode(&event).freeze();
                    let event = wire::decode_shared(&frame)
                        .expect("frames encoded by the sending broker are well-formed")
                        .into_shared();
                    self.dispatch(peer, Input::Publish {
                        origin: Origin::Broker(from),
                        event,
                    })
                    .expect("forward between linked brokers cannot fail");
                }
                Action::AdvertiseAdd { peer, filter } => {
                    self.dispatch(peer, Input::RemoteSubscribe { peer: from, filter })
                        .expect("advert between linked brokers cannot fail");
                }
                Action::AdvertiseRemove { peer, filter } => {
                    self.dispatch(peer, Input::RemoteUnsubscribe { peer: from, filter })
                        .expect("advert between linked brokers cannot fail");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    fn filter(s: &str) -> TopicFilter {
        TopicFilter::parse(s).unwrap()
    }

    #[test]
    fn single_broker_delivery() {
        let mut net = BrokerNetwork::new();
        let b = net.add_broker();
        let pub_client = net.attach_client(b);
        let sub_client = net.attach_client(b);
        net.subscribe(sub_client, filter("room/1/#")).unwrap();
        net.publish(pub_client, topic("room/1/chat"), Bytes::from_static(b"hi"));
        let deliveries = net.drain_deliveries();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].client, sub_client);
        assert_eq!(&deliveries[0].event.payload[..], b"hi");
    }

    #[test]
    fn delivery_crosses_multiple_hops() {
        // Chain: b1 - b2 - b3; subscriber on b3, publisher on b1.
        let mut net = BrokerNetwork::new();
        let b1 = net.add_broker();
        let b2 = net.add_broker();
        let b3 = net.add_broker();
        net.link(b1, b2).unwrap();
        net.link(b2, b3).unwrap();
        let publisher = net.attach_client(b1);
        let subscriber = net.attach_client(b3);
        net.subscribe(subscriber, filter("s/#")).unwrap();
        net.publish(publisher, topic("s/av"), Bytes::from_static(b"pkt"));
        let deliveries = net.drain_deliveries();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].client, subscriber);
        // The event flowed b1 -> b2 -> b3.
        assert_eq!(net.broker(b1).unwrap().counters().forwards, 1);
        assert_eq!(net.broker(b2).unwrap().counters().forwards, 1);
        assert_eq!(net.broker(b3).unwrap().counters().deliveries, 1);
    }

    #[test]
    fn exactly_once_delivery_with_many_subscribers() {
        let mut net = BrokerNetwork::new();
        let b1 = net.add_broker();
        let b2 = net.add_broker();
        let b3 = net.add_broker();
        net.link(b1, b2).unwrap();
        net.link(b1, b3).unwrap();
        let publisher = net.attach_client(b2);
        let mut subscribers = Vec::new();
        for broker in [b1, b2, b3] {
            for _ in 0..5 {
                let c = net.attach_client(broker);
                net.subscribe(c, filter("conf/9/video")).unwrap();
                subscribers.push(c);
            }
        }
        net.publish(publisher, topic("conf/9/video"), Bytes::from_static(b"v"));
        let mut delivered: Vec<ClientId> =
            net.drain_deliveries().into_iter().map(|d| d.client).collect();
        delivered.sort_unstable();
        let mut expected = subscribers.clone();
        expected.sort_unstable();
        assert_eq!(delivered, expected, "every subscriber exactly once");
    }

    #[test]
    fn cycle_links_are_rejected() {
        let mut net = BrokerNetwork::new();
        let b1 = net.add_broker();
        let b2 = net.add_broker();
        let b3 = net.add_broker();
        net.link(b1, b2).unwrap();
        net.link(b2, b3).unwrap();
        assert_eq!(
            net.link(b1, b3),
            Err(NetworkError::WouldCycle(b1, b3))
        );
        assert_eq!(net.link(b1, b1), Err(NetworkError::WouldCycle(b1, b1)));
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut net = BrokerNetwork::new();
        let b = net.add_broker();
        let p = net.attach_client(b);
        let s = net.attach_client(b);
        net.subscribe(s, filter("t")).unwrap();
        net.unsubscribe(s, filter("t")).unwrap();
        net.publish(p, topic("t"), Bytes::new());
        assert!(net.drain_deliveries().is_empty());
    }

    #[test]
    fn detach_client_stops_cross_broker_forwarding() {
        let mut net = BrokerNetwork::new();
        let b1 = net.add_broker();
        let b2 = net.add_broker();
        net.link(b1, b2).unwrap();
        let p = net.attach_client(b1);
        let s = net.attach_client(b2);
        net.subscribe(s, filter("x")).unwrap();
        net.detach_client(s).unwrap();
        net.publish(p, topic("x"), Bytes::new());
        assert!(net.drain_deliveries().is_empty());
        // The advert was withdrawn, so b1 should not even forward.
        assert_eq!(net.broker(b1).unwrap().counters().forwards, 0);
    }

    #[test]
    fn unlink_partitions_the_network() {
        let mut net = BrokerNetwork::new();
        let b1 = net.add_broker();
        let b2 = net.add_broker();
        net.link(b1, b2).unwrap();
        let p = net.attach_client(b1);
        let s = net.attach_client(b2);
        net.subscribe(s, filter("x")).unwrap();
        net.unlink(b1, b2).unwrap();
        net.publish(p, topic("x"), Bytes::new());
        assert!(net.drain_deliveries().is_empty());
        // Relinking restores delivery (interest re-advertised on LinkUp).
        net.link(b1, b2).unwrap();
        net.publish(p, topic("x"), Bytes::new());
        assert_eq!(net.drain_deliveries().len(), 1);
    }

    #[test]
    fn wildcard_subscription_spans_brokers() {
        let mut net = BrokerNetwork::new();
        let b1 = net.add_broker();
        let b2 = net.add_broker();
        net.link(b1, b2).unwrap();
        let p = net.attach_client(b1);
        let s = net.attach_client(b2);
        net.subscribe(s, filter("session/*/audio")).unwrap();
        net.publish(p, topic("session/42/audio"), Bytes::new());
        net.publish(p, topic("session/42/video"), Bytes::new());
        let deliveries = net.drain_deliveries();
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].event.topic.to_string(), "session/42/audio");
    }

    #[test]
    fn unknown_ids_error() {
        let mut net = BrokerNetwork::new();
        let b = net.add_broker();
        assert!(matches!(
            net.link(b, BrokerId::from_raw(99)),
            Err(NetworkError::UnknownBroker(_))
        ));
        assert!(matches!(
            net.subscribe(ClientId::from_raw(99), filter("a")),
            Err(NetworkError::UnknownClient(_))
        ));
        assert!(matches!(
            net.detach_client(ClientId::from_raw(99)),
            Err(NetworkError::UnknownClient(_))
        ));
    }

    #[test]
    fn event_sequence_numbers_increment_per_client() {
        let mut net = BrokerNetwork::new();
        let b = net.add_broker();
        let p = net.attach_client(b);
        let s = net.attach_client(b);
        net.subscribe(s, filter("t")).unwrap();
        net.publish(p, topic("t"), Bytes::new());
        net.publish(p, topic("t"), Bytes::new());
        let deliveries = net.drain_deliveries();
        assert_eq!(deliveries[0].event.seq, 0);
        assert_eq!(deliveries[1].event.seq, 1);
    }
}
