//! Simulator driver: broker and A/V client processes.
//!
//! This module plugs the sans-IO [`BrokerNode`] and the RTP source/sink
//! models into the deterministic simulator. It is the machinery behind
//! every experiment in `EXPERIMENTS.md`:
//!
//! * [`BrokerProcess`] — a broker on a host, charging CPU per the
//!   [`CostModel`] for routing and each outbound send (so fan-out to 400
//!   receivers serializes through the broker CPU and NIC).
//! * [`VideoPublisher`] / [`AudioPublisher`] — paced media sources that
//!   attach, then publish each RTP packet as a broker event.
//! * [`RtpReceiver`] — attaches, subscribes, decodes arriving RTP and
//!   maintains [`ReceiverStats`] (delay from `Event::published_at`,
//!   RFC 3550 jitter, loss).
//!
//! Wiring protocol: clients send [`BrokerMsg::Attach`] (carrying their
//! process id) and [`BrokerMsg::Subscribe`] at simulation start; media
//! flows after a configurable start delay, by which point subscriptions
//! have settled.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use mmcs_rtp::packet::RtpPacket;
use mmcs_rtp::recv::ReceiverStats;
use mmcs_rtp::source::{AudioSource, VideoSource};
use mmcs_sim::{Context, Packet, Process, ProcessId};
use mmcs_util::id::{BrokerId, ClientId};
use mmcs_util::time::SimDuration;

use crate::batch::CostModel;
use crate::event::{Event, EventClass};
use crate::liveness::FailureDetector;
use crate::metrics::BrokerMetrics;
use crate::node::{Action, BrokerNode, Input, Origin};
use crate::profile::TransportProfile;
use crate::topic::{Topic, TopicFilter};

/// Messages addressed to a [`BrokerProcess`].
#[derive(Debug, Clone)]
pub enum BrokerMsg {
    /// A client announces itself (and its process id for deliveries).
    Attach {
        /// The client id.
        client: ClientId,
        /// The client's simulator process.
        process: ProcessId,
        /// Its transport profile.
        profile: TransportProfile,
    },
    /// A client subscribes.
    Subscribe {
        /// The subscribing client.
        client: ClientId,
        /// The filter.
        filter: TopicFilter,
    },
    /// A client unsubscribes.
    Unsubscribe {
        /// The unsubscribing client.
        client: ClientId,
        /// The filter.
        filter: TopicFilter,
    },
    /// A client publishes an event.
    Publish {
        /// The publishing client.
        client: ClientId,
        /// The event.
        event: Arc<Event>,
    },
    /// A peer broker forwards an event.
    Forward {
        /// The sending broker.
        from: BrokerId,
        /// The event.
        event: Arc<Event>,
    },
    /// A peer broker's liveness heartbeat.
    Heartbeat {
        /// The beating broker.
        from: BrokerId,
        /// The sender's restart count. A jump tells the receiver the
        /// peer restarted (losing its interest table) even if the
        /// explicit `Hello` was dropped by a lossy link, so heartbeats
        /// double as a self-healing resync trigger.
        incarnation: u64,
    },
    /// A peer broker (re)announces itself after a restart. The receiver
    /// bounces the link (`LinkDown` + `LinkUp`) so every advert is
    /// re-sent — the restarted peer lost its remote interest table.
    Hello {
        /// The announcing broker.
        from: BrokerId,
    },
    /// A peer broker advertises interest.
    AdvertiseAdd {
        /// The advertising broker.
        from: BrokerId,
        /// The filter.
        filter: TopicFilter,
    },
    /// A peer broker withdraws interest.
    AdvertiseRemove {
        /// The withdrawing broker.
        from: BrokerId,
        /// The filter.
        filter: TopicFilter,
    },
}

/// Messages a broker sends to a client process.
#[derive(Debug, Clone)]
pub enum ClientMsg {
    /// An event matching one of the client's subscriptions.
    Deliver(Arc<Event>),
}

/// Control-plane message size on the wire (attach/subscribe/adverts).
const CONTROL_BYTES: usize = 96;

/// A broker running inside the simulator.
pub struct BrokerProcess {
    node: BrokerNode,
    cost: CostModel,
    clients: HashMap<ClientId, (ProcessId, TransportProfile)>,
    /// Static configuration: every peer this broker is wired to, whether
    /// or not the node-level link is currently up. Ordered so heartbeat
    /// and resync send order is deterministic across process runs.
    peers: BTreeMap<BrokerId, ProcessId>,
    /// Heartbeat-based peer failure detection, when enabled.
    detector: Option<FailureDetector>,
    /// Liveness parameters, kept to rebuild the detector after a crash.
    liveness_cfg: Option<(SimDuration, SimDuration)>,
    /// This broker's restart count, stamped into heartbeats.
    incarnation: u64,
    /// Last incarnation seen per peer; a jump forces an advert resync.
    peer_incarnations: BTreeMap<BrokerId, u64>,
    /// Liveness ticks elapsed (drives the periodic advert refresh).
    ticks: u64,
    /// Whether this broker emits heartbeats (tests disable it to model
    /// a hung broker).
    heartbeats_enabled: bool,
    /// Interleaved history of peer suspicions and rejoins, in the order
    /// they happened (chaos-harness probe; survives simulated restarts —
    /// it belongs to the observer, not the broker state).
    peer_history: Vec<(BrokerId, PeerLinkEvent)>,
    /// Reused action buffer: the per-packet hot path allocates nothing
    /// once it has grown to the peak fan-out.
    scratch: Vec<Action>,
    /// Telemetry instruments, kept here (durable configuration, like
    /// `liveness_cfg`) so a restart reinstalls them on the fresh node.
    metrics: Option<Arc<BrokerMetrics>>,
    /// Durable copy of [`BrokerNode::set_local_adverts_only`], reapplied
    /// to the fresh node after a simulated restart.
    local_adverts_only: bool,
}

/// Timer token for the liveness tick.
const LIVENESS_TICK: u64 = 0xBEA7;

/// One entry in a broker's peer-link history (see
/// [`BrokerProcess::peer_history`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerLinkEvent {
    /// The failure detector declared the peer dead (one `LinkDown`).
    Suspected,
    /// The peer came back (heartbeat/`Hello` after a disconnect, one
    /// `LinkUp`).
    Rejoined,
}

impl BrokerProcess {
    /// Creates a broker process with the given cost model.
    pub fn new(id: BrokerId, cost: CostModel) -> Self {
        Self {
            node: BrokerNode::new(id),
            cost,
            clients: HashMap::new(),
            peers: BTreeMap::new(),
            detector: None,
            liveness_cfg: None,
            incarnation: 0,
            peer_incarnations: BTreeMap::new(),
            ticks: 0,
            heartbeats_enabled: true,
            peer_history: Vec::new(),
            scratch: Vec::new(),
            metrics: None,
            local_adverts_only: false,
        }
    }

    /// One-hop mesh mode, builder style: adverts carry only local
    /// subscriber interest (see [`BrokerNode::set_local_adverts_only`]).
    /// Required whenever the peer graph has cycles — the full-mesh shard
    /// cluster of [`crate::shardsim`] — and durable across restarts.
    pub fn with_local_adverts_only(mut self) -> Self {
        self.node.set_local_adverts_only(true);
        self.local_adverts_only = true;
        self
    }

    /// Installs telemetry instruments on this broker: the node reports
    /// the hot-path metrics, and the driver reports failure-detector
    /// Suspected/Rejoined transitions. Survives simulated restarts.
    pub fn set_metrics(&mut self, metrics: Arc<BrokerMetrics>) {
        self.node.set_metrics(Arc::clone(&metrics));
        self.metrics = Some(metrics);
    }

    /// Enables heartbeat liveness detection on broker links: beats every
    /// `every`, disconnects peers silent for `timeout` (issuing the
    /// node's `LinkDown`, which withdraws their interest).
    pub fn with_liveness(mut self, every: SimDuration, timeout: SimDuration) -> Self {
        self.detector = Some(FailureDetector::new(every, timeout));
        self.liveness_cfg = Some((every, timeout));
        self
    }

    /// Stops this broker from emitting heartbeats (models a hang; it
    /// still routes traffic, so only liveness sees the failure).
    pub fn mute_heartbeats(&mut self) {
        self.heartbeats_enabled = false;
    }

    /// Re-enables heartbeats after [`BrokerProcess::mute_heartbeats`]
    /// (the chaos harness uses the pair to model a transient hang).
    pub fn unmute_heartbeats(&mut self) {
        self.heartbeats_enabled = true;
    }

    /// Interleaved suspicion/rejoin history, oldest first. The chaos
    /// harness checks that two suspicions of the same peer always have a
    /// rejoin between them (exactly one `LinkDown` per death).
    pub fn peer_history(&self) -> &[(BrokerId, PeerLinkEvent)] {
        &self.peer_history
    }

    /// Mutable access to the underlying node (the chaos harness calls
    /// [`BrokerNode::plan_for`], which memoizes, hence `&mut`).
    pub fn node_mut(&mut self) -> &mut BrokerNode {
        &mut self.node
    }

    /// Whether a peer link is currently up at the node level.
    pub fn has_peer_link(&self, peer: BrokerId) -> bool {
        self.node.peers().any(|p| p == peer)
    }

    /// Declares a peer broker reachable at `process` (links come up at
    /// simulation start; both sides must declare each other).
    pub fn add_peer(&mut self, peer: BrokerId, process: ProcessId) {
        self.peers.insert(peer, process);
    }

    /// Read access to the underlying node (e.g. counters).
    pub fn node(&self) -> &BrokerNode {
        &self.node
    }

    fn execute(&mut self, ctx: &mut Context<'_>, actions: &mut Vec<Action>) {
        let mut send_index = 0usize;
        for action in actions.drain(..) {
            match action {
                Action::Deliver {
                    client,
                    profile,
                    event,
                } => {
                    let Some((process, _)) = self.clients.get(&client) else {
                        ctx.count("broker.deliver.unknown_client", 1);
                        continue;
                    };
                    let wire = event.wire_len() + profile.overhead_bytes();
                    ctx.spend_cpu(profile.scale_cost(self.cost.send_cost(send_index, wire)));
                    send_index += 1;
                    ctx.send(*process, ClientMsg::Deliver(event), wire);
                    ctx.count("broker.delivered", 1);
                }
                Action::Forward { peer, event } => {
                    let Some(process) = self.peers.get(&peer) else {
                        ctx.count("broker.forward.unknown_peer", 1);
                        continue;
                    };
                    let wire = event.wire_len() + TransportProfile::Tcp.overhead_bytes();
                    ctx.spend_cpu(self.cost.send_cost(send_index, wire));
                    send_index += 1;
                    ctx.send(
                        *process,
                        BrokerMsg::Forward {
                            from: self.node.id(),
                            event,
                        },
                        wire,
                    );
                    ctx.count("broker.forwarded", 1);
                }
                Action::AdvertiseAdd { peer, filter } => {
                    if let Some(process) = self.peers.get(&peer) {
                        ctx.send(
                            *process,
                            BrokerMsg::AdvertiseAdd {
                                from: self.node.id(),
                                filter,
                            },
                            CONTROL_BYTES,
                        );
                    }
                }
                Action::AdvertiseRemove { peer, filter } => {
                    if let Some(process) = self.peers.get(&peer) {
                        ctx.send(
                            *process,
                            BrokerMsg::AdvertiseRemove {
                                from: self.node.id(),
                                filter,
                            },
                            CONTROL_BYTES,
                        );
                    }
                }
            }
        }
    }

    fn apply(&mut self, ctx: &mut Context<'_>, input: Input) {
        let mut actions = std::mem::take(&mut self.scratch);
        match self.node.handle_into(input, &mut actions) {
            Ok(()) => self.execute(ctx, &mut actions),
            Err(err) => {
                // Drivers drop protocol violations (e.g. racing a detach);
                // surface them as a counter for the harness.
                let _ = err;
                ctx.count("broker.protocol_error", 1);
            }
        }
        actions.clear();
        self.scratch = actions;
    }

    /// Brings a configured peer's link (back) up and starts watching it.
    fn rejoin_peer(&mut self, ctx: &mut Context<'_>, peer: BrokerId) {
        self.apply(ctx, Input::LinkUp { peer });
        if let Some(detector) = &mut self.detector {
            detector.watch(peer, ctx.now());
        }
        self.peer_history.push((peer, PeerLinkEvent::Rejoined));
        ctx.count("broker.peer_rejoined", 1);
        if let Some(m) = &self.metrics {
            m.peers_rejoined.inc();
        }
    }

    /// Bounces an up link so every advert is re-sent to a peer that lost
    /// its interest table (restart detected via `Hello` or an
    /// incarnation jump in its heartbeats).
    fn resync_peer(&mut self, ctx: &mut Context<'_>, peer: BrokerId) {
        self.apply(ctx, Input::LinkDown { peer });
        self.apply(ctx, Input::LinkUp { peer });
        if let Some(detector) = &mut self.detector {
            detector.watch(peer, ctx.now());
        }
        ctx.count("broker.peer_resynced", 1);
    }

    /// Re-sends every advert this node believes `peer` holds. Duplicate
    /// `RemoteSubscribe`s are no-ops at the peer, so this repairs advert
    /// packets a lossy link dropped.
    fn refresh_adverts(&mut self, ctx: &mut Context<'_>) {
        let linked: Vec<BrokerId> = {
            let mut l: Vec<BrokerId> = self.node.peers().collect();
            l.sort_unstable();
            l
        };
        let from = self.node.id();
        for peer in linked {
            let Some(process) = self.peers.get(&peer).copied() else {
                continue;
            };
            for filter in self.node.advertised_to(peer) {
                ctx.send(
                    process,
                    BrokerMsg::AdvertiseAdd { from, filter },
                    CONTROL_BYTES,
                );
            }
        }
    }
}

impl Process for BrokerProcess {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let peers: Vec<BrokerId> = self.peers.keys().copied().collect();
        for peer in &peers {
            self.apply(ctx, Input::LinkUp { peer: *peer });
        }
        if let Some(detector) = &mut self.detector {
            for peer in &peers {
                detector.watch(*peer, ctx.now());
            }
            ctx.set_timer(SimDuration::from_millis(250), LIVENESS_TICK);
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        // A broker restart loses all volatile state: the routing node
        // (subscriptions, remote interest, links) and the client table.
        // Configuration (id, cost model, wired peers, liveness params)
        // is durable. Suspicion/rejoin histories belong to the harness
        // observer and deliberately survive.
        self.node = BrokerNode::new(self.node.id());
        self.node.set_local_adverts_only(self.local_adverts_only);
        if let Some(m) = &self.metrics {
            self.node.set_metrics(Arc::clone(m));
        }
        self.clients.clear();
        self.detector = self
            .liveness_cfg
            .map(|(every, timeout)| FailureDetector::new(every, timeout));
        self.incarnation += 1;
        self.peer_incarnations.clear();
        self.ticks = 0;
        ctx.count("broker.restarted", 1);
        let peers: Vec<(BrokerId, ProcessId)> =
            self.peers.iter().map(|(b, p)| (*b, *p)).collect();
        let hello = BrokerMsg::Hello {
            from: self.node.id(),
        };
        for (peer, process) in &peers {
            self.apply(ctx, Input::LinkUp { peer: *peer });
            // Ask each peer to resync: they may still believe the link
            // is up and would otherwise never re-advertise.
            ctx.send(*process, hello.clone(), CONTROL_BYTES);
        }
        if let Some(detector) = &mut self.detector {
            for (peer, _) in &peers {
                detector.watch(*peer, ctx.now());
            }
            ctx.set_timer(SimDuration::from_millis(250), LIVENESS_TICK);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token != LIVENESS_TICK {
            return;
        }
        if self.detector.is_none() {
            return;
        }
        let now = ctx.now();
        if let Some(detector) = &mut self.detector {
            if self.heartbeats_enabled && detector.should_send_heartbeat(now) {
                let from = self.node.id();
                let incarnation = self.incarnation;
                for process in self.peers.values() {
                    ctx.send(
                        *process,
                        BrokerMsg::Heartbeat { from, incarnation },
                        CONTROL_BYTES,
                    );
                }
            }
        }
        self.ticks += 1;
        if self.ticks.is_multiple_of(4) {
            // Periodic advert refresh (~1 s): repairs advert packets a
            // lossy link dropped. Duplicates are no-ops at the peer.
            self.refresh_adverts(ctx);
        }
        let suspects = match &mut self.detector {
            Some(detector) => detector.take_suspects(now),
            None => Vec::new(),
        };
        for peer in suspects {
            ctx.count("broker.peer_suspected", 1);
            if let Some(m) = &self.metrics {
                m.peers_suspected.inc();
            }
            self.peer_history.push((peer, PeerLinkEvent::Suspected));
            // The node link goes down (withdrawing the peer's interest)
            // but the peer stays in the static `peers` map: if it comes
            // back — restart or healed partition — its next heartbeat or
            // `Hello` rejoins it.
            self.apply(ctx, Input::LinkDown { peer });
        }
        ctx.set_timer(SimDuration::from_millis(250), LIVENESS_TICK);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(msg) = packet.payload::<BrokerMsg>() else {
            ctx.count("broker.bad_payload", 1);
            return;
        };
        let msg = msg.clone();
        match msg {
            BrokerMsg::Attach {
                client,
                process,
                profile,
            } => {
                self.clients.insert(client, (process, profile));
                if self.node.has_client(client) {
                    // Periodic client refresh: already attached, nothing
                    // for the node to do.
                    ctx.count("broker.client_reattach", 1);
                } else {
                    self.apply(ctx, Input::AttachClient { client, profile });
                }
            }
            BrokerMsg::Subscribe { client, filter } => {
                self.apply(ctx, Input::Subscribe { client, filter });
            }
            BrokerMsg::Unsubscribe { client, filter } => {
                self.apply(ctx, Input::Unsubscribe { client, filter });
            }
            BrokerMsg::Publish { client, event } => {
                ctx.spend_cpu(self.cost.routing);
                self.apply(
                    ctx,
                    Input::Publish {
                        origin: Origin::Client(client),
                        event,
                    },
                );
            }
            BrokerMsg::Heartbeat { from, incarnation } => {
                if self.peers.contains_key(&from) {
                    let linked = self.node.peers().any(|p| p == from);
                    let prev = self.peer_incarnations.insert(from, incarnation);
                    if !linked {
                        // A configured peer we had disconnected is
                        // talking again: bring the link back and ask it
                        // to resend its interest (we dropped our copy on
                        // LinkDown).
                        self.rejoin_peer(ctx, from);
                        if let Some(process) = self.peers.get(&from) {
                            let hello = BrokerMsg::Hello {
                                from: self.node.id(),
                            };
                            ctx.send(*process, hello, CONTROL_BYTES);
                        }
                    } else if prev.is_some_and(|p| p < incarnation) {
                        // The peer restarted (and its Hello may have
                        // been lost): re-send every advert.
                        self.resync_peer(ctx, from);
                    }
                }
                if let Some(detector) = &mut self.detector {
                    detector.on_heartbeat(from, ctx.now());
                }
            }
            BrokerMsg::Hello { from } => {
                if self.peers.contains_key(&from) {
                    if self.node.peers().any(|p| p == from) {
                        // Link never dropped on our side: bounce it so
                        // every advert is re-sent to the resynced peer.
                        self.resync_peer(ctx, from);
                    } else {
                        self.rejoin_peer(ctx, from);
                    }
                }
            }
            BrokerMsg::Forward { from, event } => {
                if self.peers.contains_key(&from) && !self.node.peers().any(|p| p == from) {
                    // Data from a peer we had disconnected: rejoin first
                    // so the event routes instead of erroring.
                    self.rejoin_peer(ctx, from);
                    if let Some(process) = self.peers.get(&from) {
                        let hello = BrokerMsg::Hello {
                            from: self.node.id(),
                        };
                        ctx.send(*process, hello, CONTROL_BYTES);
                    }
                }
                if let Some(detector) = &mut self.detector {
                    // Data traffic proves liveness too.
                    detector.on_heartbeat(from, ctx.now());
                }
                ctx.spend_cpu(self.cost.routing);
                self.apply(
                    ctx,
                    Input::Publish {
                        origin: Origin::Broker(from),
                        event,
                    },
                );
            }
            BrokerMsg::AdvertiseAdd { from, filter } => {
                self.apply(ctx, Input::RemoteSubscribe { peer: from, filter });
            }
            BrokerMsg::AdvertiseRemove { from, filter } => {
                self.apply(ctx, Input::RemoteUnsubscribe { peer: from, filter });
            }
        }
    }
}

/// Shared pacing/publishing configuration for media publishers.
#[derive(Debug, Clone)]
pub struct PublisherConfig {
    /// The broker process to publish through.
    pub broker: ProcessId,
    /// This client's id.
    pub client: ClientId,
    /// Topic to publish to.
    pub topic: Topic,
    /// Transport profile.
    pub profile: TransportProfile,
    /// Media starts flowing this long after simulation start (lets
    /// subscriptions settle).
    pub start_delay: SimDuration,
    /// Stop after this many RTP packets (`u64::MAX` = unlimited).
    pub max_packets: u64,
    /// Client-side CPU cost to emit one packet.
    pub send_cpu: SimDuration,
}

impl PublisherConfig {
    /// A sensible default: 100 ms start delay, unlimited packets, 5 µs
    /// send cost.
    pub fn new(broker: ProcessId, client: ClientId, topic: Topic) -> Self {
        Self {
            broker,
            client,
            topic,
            profile: TransportProfile::Udp,
            start_delay: SimDuration::from_millis(100),
            max_packets: u64::MAX,
            send_cpu: SimDuration::from_micros(5),
        }
    }
}

/// A paced video publisher (one frame per timer tick, every packet of the
/// frame published back to back — the paper's bursty 600 Kbps stream).
pub struct VideoPublisher {
    config: PublisherConfig,
    source: VideoSource,
    sent: u64,
    seq: u64,
}

impl VideoPublisher {
    /// Creates a video publisher.
    pub fn new(config: PublisherConfig, source: VideoSource) -> Self {
        Self {
            config,
            source,
            sent: 0,
            seq: 0,
        }
    }

    /// RTP packets published so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn publish_packet(&mut self, ctx: &mut Context<'_>, rtp: RtpPacket) {
        ctx.spend_cpu(self.config.send_cpu);
        let event = Event::new(
            self.config.topic.clone(),
            self.config.client,
            self.seq,
            EventClass::Rtp,
            rtp.encode(),
        )
        .with_published_at(ctx.now())
        .into_shared();
        self.seq += 1;
        let wire = event.wire_len() + self.config.profile.overhead_bytes();
        ctx.send(
            self.config.broker,
            BrokerMsg::Publish {
                client: self.config.client,
                event,
            },
            wire,
        );
        self.sent += 1;
        ctx.count("publisher.rtp_sent", 1);
    }
}

impl Process for VideoPublisher {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send(
            self.config.broker,
            BrokerMsg::Attach {
                client: self.config.client,
                process: ctx.me(),
                profile: self.config.profile,
            },
            CONTROL_BYTES,
        );
        ctx.set_timer(self.config.start_delay, 0);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if self.sent >= self.config.max_packets {
            return;
        }
        let frame = self.source.next_frame();
        for rtp in frame {
            if self.sent >= self.config.max_packets {
                break;
            }
            self.publish_packet(ctx, rtp);
        }
        ctx.set_timer(self.source.frame_interval(), 0);
    }
}

/// A paced audio publisher (one packet per 20 ms tick).
pub struct AudioPublisher {
    config: PublisherConfig,
    source: AudioSource,
    sent: u64,
    seq: u64,
}

impl AudioPublisher {
    /// Creates an audio publisher.
    pub fn new(config: PublisherConfig, source: AudioSource) -> Self {
        Self {
            config,
            source,
            sent: 0,
            seq: 0,
        }
    }

    /// RTP packets published so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl Process for AudioPublisher {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send(
            self.config.broker,
            BrokerMsg::Attach {
                client: self.config.client,
                process: ctx.me(),
                profile: self.config.profile,
            },
            CONTROL_BYTES,
        );
        ctx.set_timer(self.config.start_delay, 0);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if self.sent >= self.config.max_packets {
            return;
        }
        ctx.spend_cpu(self.config.send_cpu);
        let rtp = self.source.next_packet();
        let event = Event::new(
            self.config.topic.clone(),
            self.config.client,
            self.seq,
            EventClass::Rtp,
            rtp.encode(),
        )
        .with_published_at(ctx.now())
        .into_shared();
        self.seq += 1;
        let wire = event.wire_len() + self.config.profile.overhead_bytes();
        ctx.send(
            self.config.broker,
            BrokerMsg::Publish {
                client: self.config.client,
                event,
            },
            wire,
        );
        self.sent += 1;
        ctx.count("publisher.rtp_sent", 1);
        ctx.set_timer(self.source.frame_interval(), 0);
    }
}

/// An RTP-subscribing client measuring delivery quality.
pub struct RtpReceiver {
    broker: ProcessId,
    client: ClientId,
    filter: TopicFilter,
    profile: TransportProfile,
    recv_cpu: SimDuration,
    stats: ReceiverStats,
}

impl RtpReceiver {
    /// Creates a receiver that subscribes to `filter` on start.
    ///
    /// `payload_type` selects the RTP clock for jitter computation;
    /// `recv_cpu` is the per-packet processing cost at the client (this
    /// is what makes co-located receivers perturb each other).
    pub fn new(
        broker: ProcessId,
        client: ClientId,
        filter: TopicFilter,
        payload_type: u8,
        recv_cpu: SimDuration,
    ) -> Self {
        Self {
            broker,
            client,
            filter,
            profile: TransportProfile::Udp,
            recv_cpu,
            stats: ReceiverStats::new(0, payload_type),
        }
    }

    /// Enables per-packet series capture (Figure 3 plotting).
    pub fn with_series_capture(mut self) -> Self {
        self.stats = self.stats.with_series_capture();
        self
    }

    /// Overrides the transport profile (default UDP), builder style.
    pub fn with_profile(mut self, profile: TransportProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The receiver's quality statistics.
    pub fn stats(&self) -> &ReceiverStats {
        &self.stats
    }
}

impl Process for RtpReceiver {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send(
            self.broker,
            BrokerMsg::Attach {
                client: self.client,
                process: ctx.me(),
                profile: self.profile,
            },
            CONTROL_BYTES,
        );
        ctx.send(
            self.broker,
            BrokerMsg::Subscribe {
                client: self.client,
                filter: self.filter.clone(),
            },
            CONTROL_BYTES,
        );
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(ClientMsg::Deliver(event)) = packet.payload::<ClientMsg>() else {
            ctx.count("receiver.bad_payload", 1);
            return;
        };
        let arrival = ctx.now();
        match RtpPacket::decode(&event.payload) {
            Ok(rtp) => {
                self.stats.record(&rtp.header, event.published_at, arrival);
                ctx.count("receiver.rtp_received", 1);
            }
            Err(_) => ctx.count("receiver.rtp_decode_error", 1),
        }
        ctx.spend_cpu(self.recv_cpu);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmcs_rtp::packet::payload_type;
    use mmcs_rtp::source::VideoSourceConfig;
    use mmcs_sim::net::NicConfig;
    use mmcs_sim::Simulation;
    use mmcs_util::rng::DetRng;
    use mmcs_util::time::SimTime;

    fn video_sim(seed: u64) -> (Simulation, ProcessId, Vec<ProcessId>) {
        let mut sim = Simulation::new(seed);
        let sender_host = sim.add_host("sender", NicConfig::default());
        let broker_host = sim.add_host("broker", NicConfig::default());
        let client_host = sim.add_host("clients", NicConfig::default());

        let broker = sim.add_typed_process(
            broker_host,
            BrokerProcess::new(BrokerId::from_raw(1), CostModel::narada()),
        );
        let mut receivers = Vec::new();
        for i in 0..3 {
            let host = if i == 0 { sender_host } else { client_host };
            let receiver = RtpReceiver::new(
                broker,
                ClientId::from_raw(100 + i),
                TopicFilter::parse("conf/1/video").unwrap(),
                payload_type::H263,
                SimDuration::from_micros(30),
            )
            .with_series_capture();
            receivers.push(sim.add_typed_process(host, receiver));
        }
        let mut config = PublisherConfig::new(
            broker,
            ClientId::from_raw(1),
            Topic::parse("conf/1/video").unwrap(),
        );
        config.max_packets = 100;
        let source = VideoSource::new(VideoSourceConfig::default(), 42, DetRng::new(seed));
        sim.add_typed_process(sender_host, VideoPublisher::new(config, source));
        (sim, broker, receivers)
    }

    #[test]
    fn video_flows_through_broker_to_all_receivers() {
        let (mut sim, broker, receivers) = video_sim(7);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.counter("publisher.rtp_sent"), 100);
        assert_eq!(sim.counter("receiver.rtp_received"), 300);
        for r in &receivers {
            let stats = sim.process_ref::<RtpReceiver>(*r).unwrap().stats();
            assert_eq!(stats.received(), 100);
            assert_eq!(stats.lost(), 0);
            assert!(stats.delay_ms().mean() > 0.0);
        }
        let node = sim.process_ref::<BrokerProcess>(broker).unwrap().node();
        assert_eq!(node.counters().deliveries, 300);
    }

    #[test]
    fn runs_are_deterministic() {
        fn digest(seed: u64) -> Vec<u64> {
            let (mut sim, _, receivers) = video_sim(seed);
            sim.run_until(SimTime::from_secs(10));
            receivers
                .iter()
                .map(|r| {
                    let s = sim.process_ref::<RtpReceiver>(*r).unwrap().stats();
                    (s.delay_ms().mean() * 1e9) as u64
                })
                .collect()
        }
        assert_eq!(digest(3), digest(3));
        assert_ne!(digest(3), digest(4));
    }

    #[test]
    fn audio_publisher_paces_at_50pps() {
        let mut sim = Simulation::new(1);
        let host = sim.add_host("all", NicConfig::default());
        let broker = sim.add_typed_process(
            host,
            BrokerProcess::new(BrokerId::from_raw(1), CostModel::narada()),
        );
        let receiver = sim.add_typed_process(
            host,
            RtpReceiver::new(
                broker,
                ClientId::from_raw(2),
                TopicFilter::parse("conf/1/audio").unwrap(),
                payload_type::PCMU,
                SimDuration::from_micros(10),
            ),
        );
        let config = PublisherConfig::new(
            broker,
            ClientId::from_raw(1),
            Topic::parse("conf/1/audio").unwrap(),
        );
        let source = AudioSource::new(mmcs_rtp::source::AudioCodec::Pcmu, 9);
        sim.add_typed_process(host, AudioPublisher::new(config, source));
        // 2 seconds of media after the 100 ms start delay: ~95 packets.
        sim.run_until(SimTime::from_secs(2));
        let stats = sim.process_ref::<RtpReceiver>(receiver).unwrap().stats();
        assert!((90..=96).contains(&stats.received()), "{}", stats.received());
        assert_eq!(stats.lost(), 0);
    }

    #[test]
    fn multi_broker_path_delivers() {
        let mut sim = Simulation::new(5);
        let h1 = sim.add_host("a", NicConfig::default());
        let h2 = sim.add_host("b", NicConfig::default());
        let b1 = sim.add_typed_process(
            h1,
            BrokerProcess::new(BrokerId::from_raw(1), CostModel::narada()),
        );
        let b2 = sim.add_typed_process(
            h2,
            BrokerProcess::new(BrokerId::from_raw(2), CostModel::narada()),
        );
        sim.process_mut::<BrokerProcess>(b1)
            .unwrap()
            .add_peer(BrokerId::from_raw(2), b2);
        sim.process_mut::<BrokerProcess>(b2)
            .unwrap()
            .add_peer(BrokerId::from_raw(1), b1);
        let receiver = sim.add_typed_process(
            h2,
            RtpReceiver::new(
                b2,
                ClientId::from_raw(2),
                TopicFilter::parse("conf/9/video").unwrap(),
                payload_type::H263,
                SimDuration::from_micros(10),
            ),
        );
        let mut config = PublisherConfig::new(
            b1,
            ClientId::from_raw(1),
            Topic::parse("conf/9/video").unwrap(),
        );
        config.max_packets = 50;
        let source = VideoSource::new(VideoSourceConfig::default(), 4, DetRng::new(2));
        sim.add_typed_process(h1, VideoPublisher::new(config, source));
        sim.run_until(SimTime::from_secs(10));
        let stats = sim.process_ref::<RtpReceiver>(receiver).unwrap().stats();
        assert_eq!(stats.received(), 50);
        // Two broker hops forwarded across hosts.
        assert!(sim.counter("broker.forwarded") >= 50);
    }
}

/// A multicast relay: the broker delivers one copy per *machine*, and
/// the relay fans it out locally over the loopback — NaradaBrokering's
/// multicast transport ("one NIC transmission reaches every group
/// member on the same segment"). The relay attaches to the broker as a
/// single [`TransportProfile::Multicast`] client; its local receivers
/// get the event without touching the broker or its NIC again.
pub struct MulticastRelay {
    broker: ProcessId,
    client: ClientId,
    filter: TopicFilter,
    local_receivers: Vec<ProcessId>,
    relay_cpu: SimDuration,
    relayed: u64,
}

impl MulticastRelay {
    /// Creates a relay subscribing to `filter` on `broker` as `client`.
    pub fn new(broker: ProcessId, client: ClientId, filter: TopicFilter) -> Self {
        Self {
            broker,
            client,
            filter,
            local_receivers: Vec::new(),
            relay_cpu: SimDuration::from_micros(4),
            relayed: 0,
        }
    }

    /// Adds a receiver on this relay's machine (must live on the same
    /// simulated host for the loopback model to hold).
    pub fn add_local_receiver(&mut self, receiver: ProcessId) {
        self.local_receivers.push(receiver);
    }

    /// Events relayed so far.
    pub fn relayed(&self) -> u64 {
        self.relayed
    }
}

impl Process for MulticastRelay {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send(
            self.broker,
            BrokerMsg::Attach {
                client: self.client,
                process: ctx.me(),
                profile: TransportProfile::Multicast,
            },
            CONTROL_BYTES,
        );
        ctx.send(
            self.broker,
            BrokerMsg::Subscribe {
                client: self.client,
                filter: self.filter.clone(),
            },
            CONTROL_BYTES,
        );
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(ClientMsg::Deliver(event)) = packet.payload::<ClientMsg>() else {
            return;
        };
        ctx.spend_cpu(self.relay_cpu);
        let wire = event.wire_len();
        let message = Arc::new(ClientMsg::Deliver(Arc::clone(event)));
        for receiver in &self.local_receivers {
            // Loopback delivery: same host, no NIC serialization.
            ctx.send_shared(*receiver, message.clone(), wire);
        }
        self.relayed += 1;
        ctx.count("mcast.relayed", 1);
    }
}

#[cfg(test)]
mod mcast_tests {
    use super::*;
    use mmcs_rtp::packet::payload_type;
    use mmcs_rtp::source::{VideoSource, VideoSourceConfig};
    use mmcs_sim::net::NicConfig;
    use mmcs_sim::Simulation;
    use mmcs_util::rng::DetRng;
    use mmcs_util::time::SimTime;

    #[test]
    fn relay_fans_out_locally_with_one_broker_send() {
        let mut sim = Simulation::new(2);
        let sender_host = sim.add_host("sender", NicConfig::default());
        let broker_host = sim.add_host("broker", NicConfig::default());
        let segment_host = sim.add_host("segment", NicConfig::default());

        let broker = sim.add_typed_process(
            broker_host,
            BrokerProcess::new(BrokerId::from_raw(1), crate::batch::CostModel::narada()),
        );
        let topic = Topic::parse("conf/9/video").unwrap();
        let filter = TopicFilter::exact(&topic);

        // 10 receivers behind one relay on the segment host.
        let mut receiver_ids = Vec::new();
        for i in 0..10 {
            let receiver = RtpReceiver::new(
                broker,
                ClientId::from_raw(100 + i),
                // Receivers do NOT subscribe at the broker: the relay
                // feeds them. Give them an unmatched filter.
                TopicFilter::parse("unused/topic").unwrap(),
                payload_type::H263,
                SimDuration::from_micros(10),
            );
            receiver_ids.push(sim.add_typed_process(segment_host, receiver));
        }
        let relay = sim.add_typed_process(
            segment_host,
            MulticastRelay::new(broker, ClientId::from_raw(50), filter),
        );
        for id in &receiver_ids {
            sim.process_mut::<MulticastRelay>(relay)
                .unwrap()
                .add_local_receiver(*id);
        }

        let mut config =
            PublisherConfig::new(broker, ClientId::from_raw(1), topic);
        config.max_packets = 60;
        let source = VideoSource::new(VideoSourceConfig::default(), 3, DetRng::new(4));
        sim.add_typed_process(sender_host, VideoPublisher::new(config, source));

        sim.run_until(SimTime::from_secs(10));

        // The broker delivered each packet exactly once (to the relay).
        assert_eq!(sim.counter("broker.delivered"), 60);
        assert_eq!(sim.counter("mcast.relayed"), 60);
        // Every local receiver still got all 60.
        for id in &receiver_ids {
            let stats = sim.process_ref::<RtpReceiver>(*id).unwrap().stats();
            assert_eq!(stats.received(), 60);
            assert_eq!(stats.lost(), 0);
        }
    }
}

#[cfg(test)]
mod liveness_tests {
    use super::*;
    use mmcs_rtp::packet::payload_type;
    use mmcs_rtp::source::{AudioCodec, AudioSource};
    use mmcs_sim::net::NicConfig;
    use mmcs_sim::Simulation;
    use mmcs_util::time::SimTime;

    /// A hung peer (no heartbeats) is detected and its link torn down;
    /// a healthy peer stays linked.
    #[test]
    fn hung_broker_is_disconnected() {
        let mut sim = Simulation::new(6);
        let h1 = sim.add_host("a", NicConfig::default());
        let h2 = sim.add_host("b", NicConfig::default());
        let every = SimDuration::from_millis(500);
        let timeout = SimDuration::from_millis(1600);
        let b1 = sim.add_typed_process(
            h1,
            BrokerProcess::new(BrokerId::from_raw(1), CostModel::narada())
                .with_liveness(every, timeout),
        );
        let b2 = sim.add_typed_process(
            h2,
            BrokerProcess::new(BrokerId::from_raw(2), CostModel::narada())
                .with_liveness(every, timeout),
        );
        sim.process_mut::<BrokerProcess>(b1)
            .unwrap()
            .add_peer(BrokerId::from_raw(2), b2);
        sim.process_mut::<BrokerProcess>(b2)
            .unwrap()
            .add_peer(BrokerId::from_raw(1), b1);
        // Broker 2 is hung from the start.
        sim.process_mut::<BrokerProcess>(b2).unwrap().mute_heartbeats();

        sim.run_until(SimTime::from_secs(5));
        let b1_state = sim.process_ref::<BrokerProcess>(b1).unwrap();
        assert!(
            !b1_state.has_peer_link(BrokerId::from_raw(2)),
            "broker 1 must have dropped the hung peer"
        );
        assert!(sim.counter("broker.peer_suspected") >= 1);
    }

    /// With healthy heartbeats both directions, links stay up and media
    /// keeps flowing across the pair indefinitely.
    #[test]
    fn healthy_brokers_stay_linked_and_forwarding() {
        let mut sim = Simulation::new(8);
        let h1 = sim.add_host("a", NicConfig::default());
        let h2 = sim.add_host("b", NicConfig::default());
        let every = SimDuration::from_millis(500);
        let timeout = SimDuration::from_millis(1600);
        let b1 = sim.add_typed_process(
            h1,
            BrokerProcess::new(BrokerId::from_raw(1), CostModel::narada())
                .with_liveness(every, timeout),
        );
        let b2 = sim.add_typed_process(
            h2,
            BrokerProcess::new(BrokerId::from_raw(2), CostModel::narada())
                .with_liveness(every, timeout),
        );
        sim.process_mut::<BrokerProcess>(b1)
            .unwrap()
            .add_peer(BrokerId::from_raw(2), b2);
        sim.process_mut::<BrokerProcess>(b2)
            .unwrap()
            .add_peer(BrokerId::from_raw(1), b1);

        let topic = Topic::parse("live/audio").unwrap();
        let receiver = sim.add_typed_process(
            h2,
            RtpReceiver::new(
                b2,
                ClientId::from_raw(2),
                TopicFilter::exact(&topic),
                payload_type::PCMU,
                SimDuration::from_micros(10),
            ),
        );
        let mut config = PublisherConfig::new(b1, ClientId::from_raw(1), topic);
        config.max_packets = 200; // 4 seconds of audio
        sim.add_typed_process(
            h1,
            AudioPublisher::new(config, AudioSource::new(AudioCodec::Pcmu, 1)),
        );
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.counter("broker.peer_suspected"), 0);
        let stats = sim.process_ref::<RtpReceiver>(receiver).unwrap().stats();
        assert_eq!(stats.received(), 200);
    }
}

/// A weighted receiver standing in for `weight` co-located clients — the
/// simulation-side analogue of [`MulticastRelay`]: the broker performs
/// one delivery per bundle (a [`TransportProfile::Multicast`] client when
/// `weight > 1`), and the bundle accounts for all `weight` clients behind
/// it — recording the delivery delay `weight` times into a shared
/// histogram pool and charging `weight ×` the per-client receive CPU.
///
/// This is what makes million-subscriber scenarios simulable: broker work
/// and simulator events scale with the number of *bundles*, while the
/// delay histogram and CPU accounting still reflect every individual
/// client. With `weight == 1` the bundle degenerates to an honest unicast
/// receiver (UDP profile, one delivery per client) for knee sweeps where
/// per-client broker cost must stay real.
///
/// The histogram pool is shared (`Arc`) so one pool per home shard can
/// absorb deliveries from thousands of bundles without per-receiver
/// snapshot merging — the "histogram pooling across shards" used by the
/// capacity-frontier harness.
pub struct ClientBundle {
    broker: ProcessId,
    client: ClientId,
    filter: TopicFilter,
    weight: u64,
    recv_cpu: SimDuration,
    delay_pool: Arc<mmcs_telemetry::Histogram>,
    received: u64,
}

impl ClientBundle {
    /// Creates a bundle of `weight` clients behind one delivery, homed at
    /// `broker`, subscribing to `filter` on start, pooling delay samples
    /// (one per represented client) into `delay_pool`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn new(
        broker: ProcessId,
        client: ClientId,
        filter: TopicFilter,
        weight: u64,
        recv_cpu: SimDuration,
        delay_pool: Arc<mmcs_telemetry::Histogram>,
    ) -> Self {
        assert!(weight > 0, "a bundle must represent at least one client");
        Self {
            broker,
            client,
            filter,
            weight,
            recv_cpu,
            delay_pool,
            received: 0,
        }
    }

    /// Broker deliveries received (events, not per-client copies).
    pub fn received(&self) -> u64 {
        self.received
    }

    /// The number of clients this bundle represents.
    pub fn weight(&self) -> u64 {
        self.weight
    }
}

impl Process for ClientBundle {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let profile = if self.weight > 1 {
            TransportProfile::Multicast
        } else {
            TransportProfile::Udp
        };
        ctx.send(
            self.broker,
            BrokerMsg::Attach {
                client: self.client,
                process: ctx.me(),
                profile,
            },
            CONTROL_BYTES,
        );
        ctx.send(
            self.broker,
            BrokerMsg::Subscribe {
                client: self.client,
                filter: self.filter.clone(),
            },
            CONTROL_BYTES,
        );
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(ClientMsg::Deliver(event)) = packet.payload::<ClientMsg>() else {
            ctx.count("bundle.bad_payload", 1);
            return;
        };
        let delay = ctx.now().saturating_duration_since(event.published_at);
        self.delay_pool.record_n(delay.as_nanos(), self.weight);
        self.received += 1;
        ctx.count("bundle.delivered_clients", self.weight);
        ctx.spend_cpu(self.recv_cpu * self.weight);
    }
}

#[cfg(test)]
mod bundle_tests {
    use super::*;
    use mmcs_rtp::source::{VideoSource, VideoSourceConfig};
    use mmcs_sim::net::NicConfig;
    use mmcs_sim::Simulation;
    use mmcs_telemetry::Histogram;
    use mmcs_util::rng::DetRng;
    use mmcs_util::time::SimTime;

    #[test]
    fn bundle_records_weight_samples_per_delivery() {
        let mut sim = Simulation::new(4);
        let broker_host = sim.add_host("broker", NicConfig::default());
        let segment_host = sim.add_host("segment", NicConfig::default());
        let broker = sim.add_typed_process(
            broker_host,
            BrokerProcess::new(BrokerId::from_raw(1), CostModel::narada()),
        );
        let topic = Topic::parse("conf/3/video").unwrap();
        let pool = Arc::new(Histogram::new());
        let bundle = sim.add_typed_process(
            segment_host,
            ClientBundle::new(
                broker,
                ClientId::from_raw(500),
                TopicFilter::exact(&topic),
                250,
                SimDuration::from_nanos(40),
                Arc::clone(&pool),
            ),
        );
        let mut config = PublisherConfig::new(broker, ClientId::from_raw(1), topic);
        config.max_packets = 30;
        let source = VideoSource::new(VideoSourceConfig::default(), 5, DetRng::new(6));
        sim.add_typed_process(broker_host, VideoPublisher::new(config, source));

        sim.run_until(SimTime::from_secs(10));
        let bundle_ref = sim.process_ref::<ClientBundle>(bundle).unwrap();
        assert_eq!(bundle_ref.received(), 30);
        // One broker delivery per event, but weight samples per delivery.
        assert_eq!(sim.counter("broker.delivered"), 30);
        assert_eq!(sim.counter("bundle.delivered_clients"), 30 * 250);
        let snap = pool.snapshot();
        assert_eq!(snap.count(), 30 * 250);
        assert!(snap.mean() > 0.0, "delays are positive");
    }

    #[test]
    fn weight_one_bundle_uses_unicast_profile_costs() {
        // Two sims: a weight-1 bundle vs an RtpReceiver-style unicast
        // client must cost the broker the same number of deliveries.
        let mut sim = Simulation::new(9);
        let host = sim.add_host("all", NicConfig::default());
        let broker = sim.add_typed_process(
            host,
            BrokerProcess::new(BrokerId::from_raw(1), CostModel::narada()),
        );
        let topic = Topic::parse("conf/8/audio").unwrap();
        let pool = Arc::new(Histogram::new());
        sim.add_typed_process(
            host,
            ClientBundle::new(
                broker,
                ClientId::from_raw(2),
                TopicFilter::exact(&topic),
                1,
                SimDuration::from_micros(10),
                Arc::clone(&pool),
            ),
        );
        let mut config = PublisherConfig::new(broker, ClientId::from_raw(1), topic);
        config.max_packets = 20;
        let source = mmcs_rtp::source::AudioSource::new(mmcs_rtp::source::AudioCodec::Pcmu, 3);
        sim.add_typed_process(host, AudioPublisher::new(config, source));
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.counter("broker.delivered"), 20);
        assert_eq!(pool.snapshot().count(), 20);
    }
}
