//! The RTP proxy.
//!
//! "Any RTP client or server who wants to join in this session, it can
//! 'subscribe' to this topic and 'publish' its RTP messages through RTP
//! Proxies in the NaradaBrokering system" (§3.2). Legacy endpoints
//! (H.323 terminals, MBONE tools) speak raw RTP to a proxy address; the
//! proxy wraps each packet as a broker event on the session topic, and
//! unwraps events from the topic back into raw RTP toward its attached
//! legacy receivers.
//!
//! [`RtpProxyProcess`] is the simulator driver; the sans-IO pair
//! ([`wrap_rtp`], [`unwrap_event`]) is reused by any other driver.

use std::sync::Arc;

use bytes::Bytes;
use mmcs_rtp::packet::WireRtp;
use mmcs_sim::{Context, Packet, Process, ProcessId};
use mmcs_util::id::ClientId;
use mmcs_util::time::{SimDuration, SimTime};

use crate::event::{Event, EventClass};
use crate::profile::TransportProfile;
use crate::simdrv::{BrokerMsg, ClientMsg};
use crate::topic::{Topic, TopicFilter};

/// A raw RTP packet on the legacy side of the proxy.
#[derive(Debug, Clone)]
pub struct LegacyRtp {
    /// The encoded RTP packet.
    pub bytes: Bytes,
    /// When the legacy endpoint sent it.
    pub sent_at: SimTime,
}

/// Wraps one raw RTP packet as a broker event on `topic`.
pub fn wrap_rtp(
    topic: &Topic,
    proxy_client: ClientId,
    seq: u64,
    rtp_bytes: Bytes,
    sent_at: SimTime,
) -> Arc<Event> {
    Event::new(
        topic.clone(),
        proxy_client,
        seq,
        EventClass::Rtp,
        rtp_bytes,
    )
    .with_published_at(sent_at)
    .into_shared()
}

/// Unwraps a broker event back into raw RTP for the legacy side.
/// Returns `None` for non-RTP events.
pub fn unwrap_event(event: &Event) -> Option<LegacyRtp> {
    if event.class != EventClass::Rtp {
        return None;
    }
    Some(LegacyRtp {
        bytes: event.payload.clone(),
        sent_at: event.published_at,
    })
}

/// UDP/IP framing on the legacy side.
const UDP_OVERHEAD: usize = 28;

/// The proxy as a simulator process: legacy RTP in ⇄ topic events out.
pub struct RtpProxyProcess {
    broker: ProcessId,
    client: ClientId,
    topic: Topic,
    /// Legacy receivers fed with raw RTP unwrapped from the topic.
    legacy_receivers: Vec<ProcessId>,
    /// Per-packet proxy CPU cost.
    relay_cpu: SimDuration,
    seq: u64,
    wrapped: u64,
    unwrapped: u64,
}

impl RtpProxyProcess {
    /// Creates a proxy publishing to (and subscribing from) `topic`
    /// through `broker` as `client`.
    pub fn new(broker: ProcessId, client: ClientId, topic: Topic) -> Self {
        Self {
            broker,
            client,
            topic,
            legacy_receivers: Vec::new(),
            relay_cpu: SimDuration::from_micros(8),
            seq: 0,
            wrapped: 0,
            unwrapped: 0,
        }
    }

    /// Adds a legacy receiver (raw RTP out).
    pub fn add_legacy_receiver(&mut self, receiver: ProcessId) {
        self.legacy_receivers.push(receiver);
    }

    /// Packets wrapped into events (legacy → topic).
    pub fn wrapped(&self) -> u64 {
        self.wrapped
    }

    /// Events unwrapped to raw RTP (topic → legacy).
    pub fn unwrapped(&self) -> u64 {
        self.unwrapped
    }
}

impl Process for RtpProxyProcess {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.send(
            self.broker,
            BrokerMsg::Attach {
                client: self.client,
                process: ctx.me(),
                profile: TransportProfile::RawRtp,
            },
            96,
        );
        ctx.send(
            self.broker,
            BrokerMsg::Subscribe {
                client: self.client,
                filter: TopicFilter::exact(&self.topic),
            },
            96,
        );
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        if let Some(raw) = packet.payload::<LegacyRtp>() {
            // Legacy endpoint → topic. Validate the raw packet with the
            // zero-copy view parser before it enters the overlay: a
            // malformed frame is dropped (and counted) at the edge
            // instead of fanning out to every subscriber.
            if WireRtp::parse(&raw.bytes).is_err() {
                ctx.count("rtpproxy.malformed", 1);
                return;
            }
            ctx.spend_cpu(self.relay_cpu);
            let event = wrap_rtp(
                &self.topic,
                self.client,
                self.seq,
                raw.bytes.clone(),
                raw.sent_at,
            );
            self.seq += 1;
            let wire = event.wire_len() + TransportProfile::RawRtp.overhead_bytes();
            ctx.send(
                self.broker,
                BrokerMsg::Publish {
                    client: self.client,
                    event,
                },
                wire,
            );
            self.wrapped += 1;
            ctx.count("rtpproxy.wrapped", 1);
            return;
        }
        if let Some(ClientMsg::Deliver(event)) = packet.payload::<ClientMsg>() {
            // Topic → legacy receivers, except events we published
            // ourselves (no hairpin).
            if event.source == self.client {
                return;
            }
            let Some(raw) = unwrap_event(event) else {
                return;
            };
            ctx.spend_cpu(self.relay_cpu);
            let wire = raw.bytes.len() + UDP_OVERHEAD;
            let shared = std::sync::Arc::new(raw);
            for receiver in &self.legacy_receivers {
                ctx.send_shared(*receiver, shared.clone(), wire);
            }
            self.unwrapped += 1;
            ctx.count("rtpproxy.unwrapped", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::CostModel;
    use crate::simdrv::{BrokerProcess, RtpReceiver};
    use mmcs_rtp::packet::{payload_type, RtpHeader, RtpPacket};
    use mmcs_sim::net::NicConfig;
    use mmcs_sim::Simulation;
    use mmcs_util::id::BrokerId;

    /// A legacy endpoint: sends raw RTP to the proxy, records raw RTP
    /// it receives back.
    struct LegacyEndpoint {
        proxy: ProcessId,
        to_send: u16,
        sent: u16,
        received: Vec<u16>,
    }

    impl Process for LegacyEndpoint {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(50), 0);
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, packet: Packet) {
            if let Some(raw) = packet.payload::<LegacyRtp>() {
                let rtp = RtpPacket::decode(&raw.bytes).expect("valid rtp");
                self.received.push(rtp.header.sequence_number);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
            if self.sent >= self.to_send {
                return;
            }
            let rtp = RtpPacket::new(
                RtpHeader::new(payload_type::PCMU, self.sent, self.sent as u32 * 160, 9),
                Bytes::from(vec![0u8; 160]),
            );
            ctx.send(
                self.proxy,
                LegacyRtp {
                    bytes: rtp.encode(),
                    sent_at: ctx.now(),
                },
                200,
            );
            self.sent += 1;
            ctx.set_timer(SimDuration::from_millis(20), 0);
        }
    }

    #[test]
    fn legacy_rtp_reaches_broker_subscribers_and_back() {
        let mut sim = Simulation::new(3);
        let legacy_host = sim.add_host("legacy", NicConfig::default());
        let broker_host = sim.add_host("broker", NicConfig::default());
        let modern_host = sim.add_host("modern", NicConfig::default());

        let broker = sim.add_typed_process(
            broker_host,
            BrokerProcess::new(BrokerId::from_raw(1), CostModel::narada()),
        );
        let topic = Topic::parse("conf/5/audio").unwrap();

        // A native broker subscriber.
        let native = sim.add_typed_process(
            modern_host,
            RtpReceiver::new(
                broker,
                ClientId::from_raw(20),
                TopicFilter::exact(&topic),
                payload_type::PCMU,
                SimDuration::from_micros(10),
            ),
        );

        // The proxy + two legacy endpoints behind it (one sender).
        let proxy = sim.add_typed_process(
            broker_host,
            RtpProxyProcess::new(broker, ClientId::from_raw(10), topic.clone()),
        );
        let listener = sim.add_typed_process(
            legacy_host,
            LegacyEndpoint {
                proxy,
                to_send: 0,
                sent: 0,
                received: Vec::new(),
            },
        );
        let _talker = sim.add_typed_process(
            legacy_host,
            LegacyEndpoint {
                proxy,
                to_send: 30,
                sent: 0,
                received: Vec::new(),
            },
        );
        sim.process_mut::<RtpProxyProcess>(proxy)
            .unwrap()
            .add_legacy_receiver(listener);

        // A native publisher too, so traffic flows both directions.
        let mut config = crate::simdrv::PublisherConfig::new(
            broker,
            ClientId::from_raw(30),
            topic.clone(),
        );
        config.max_packets = 20;
        let source = mmcs_rtp::source::AudioSource::new(mmcs_rtp::source::AudioCodec::Pcmu, 7);
        sim.add_typed_process(modern_host, crate::simdrv::AudioPublisher::new(config, source));

        sim.run_until(SimTime::from_secs(5));

        // Legacy → topic: the native subscriber got the talker's 30.
        let native_stats = sim.process_ref::<RtpReceiver>(native).unwrap().stats();
        assert_eq!(native_stats.received(), 50, "30 legacy + 20 native");
        // Topic → legacy: the listener got the native publisher's 20
        // (not the talker's own packets hairpinned back).
        let listener_state = sim.process_ref::<LegacyEndpoint>(listener).unwrap();
        assert_eq!(listener_state.received.len(), 20);
        let proxy_state = sim.process_ref::<RtpProxyProcess>(proxy).unwrap();
        assert_eq!(proxy_state.wrapped(), 30);
        assert_eq!(proxy_state.unwrapped(), 20);
        assert_eq!(sim.counter("rtpproxy.wrapped"), 30);
    }

    /// Sends one well-formed RTP packet and one garbage frame.
    struct MixedSender {
        proxy: ProcessId,
        fired: bool,
    }

    impl Process for MixedSender {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(50), 0);
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
            if self.fired {
                return;
            }
            self.fired = true;
            let good = RtpPacket::new(
                RtpHeader::new(payload_type::PCMU, 1, 160, 9),
                Bytes::from(vec![0u8; 160]),
            );
            ctx.send(
                self.proxy,
                LegacyRtp {
                    bytes: good.encode(),
                    sent_at: ctx.now(),
                },
                200,
            );
            // Claims 3 CSRCs but truncates the CSRC area.
            ctx.send(
                self.proxy,
                LegacyRtp {
                    bytes: Bytes::from_static(&[0x83, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0]),
                    sent_at: ctx.now(),
                },
                200,
            );
        }
    }

    #[test]
    fn malformed_legacy_frames_are_dropped_at_the_edge() {
        let mut sim = Simulation::new(7);
        let legacy_host = sim.add_host("legacy", NicConfig::default());
        let broker_host = sim.add_host("broker", NicConfig::default());
        let broker = sim.add_typed_process(
            broker_host,
            BrokerProcess::new(BrokerId::from_raw(1), CostModel::narada()),
        );
        let topic = Topic::parse("conf/6/audio").unwrap();
        let proxy = sim.add_typed_process(
            broker_host,
            RtpProxyProcess::new(broker, ClientId::from_raw(10), topic),
        );
        sim.add_typed_process(legacy_host, MixedSender { proxy, fired: false });

        sim.run_until(SimTime::from_secs(1));

        let proxy_state = sim.process_ref::<RtpProxyProcess>(proxy).unwrap();
        assert_eq!(proxy_state.wrapped(), 1, "only the valid packet enters");
        assert_eq!(sim.counter("rtpproxy.malformed"), 1);
    }

    #[test]
    fn unwrap_ignores_non_rtp_events() {
        let event = Event::new(
            Topic::parse("t").unwrap(),
            ClientId::from_raw(1),
            0,
            EventClass::Data,
            Bytes::from_static(b"not rtp"),
        );
        assert!(unwrap_event(&event).is_none());
        let rtp_event = Event::new(
            Topic::parse("t").unwrap(),
            ClientId::from_raw(1),
            0,
            EventClass::Rtp,
            Bytes::from_static(b"rtpish"),
        );
        assert!(unwrap_event(&rtp_event).is_some());
    }
}
