//! Sharded-broker ↔ simulator bridge.
//!
//! The live [`crate::sharded::ShardedBroker`] runs N worker threads and
//! is therefore not deterministic; the capacity-frontier harness needs
//! the *same topology* inside the deterministic simulator so that knees
//! and delay histograms are bit-reproducible per seed. This module
//! builds that model: one [`BrokerProcess`](crate::simdrv::BrokerProcess)
//! per shard, each on its own simulated host (its own serial CPU — the
//! multicore analogue), joined in a full peer mesh.
//!
//! The placement functions are shared with the live runtime —
//! [`crate::sharded::owner_shard`] / [`crate::sharded::home_shard`] — so
//! a topic or client lands on exactly the shard the thread runtime
//! would pick, and the one-hop forwarding shape is identical: a publish
//! enters its owner shard, which delivers to locally-homed subscribers
//! and forwards at most once per interested peer shard (interest flows
//! as `AdvertiseAdd` from each home shard, mirroring the refcounted
//! remote-interest registration of the thread runtime).
//!
//! NIC budget: callers pass the **per-shard** NIC bandwidth. The usual
//! model is `total_nic / shards` — aggregate wire capacity constant
//! while CPU scales with the shard count — which is what makes the
//! audio (CPU-bound) knee grow with shards while the video (NIC-bound)
//! knee stays put, the frontier harness's headline contrast.

use mmcs_sim::net::NicConfig;
use mmcs_sim::{ProcessId, Simulation};
use mmcs_util::id::{BrokerId, ClientId};
use mmcs_util::rate::Bandwidth;

use crate::batch::CostModel;
use crate::sharded::{home_shard, owner_shard_of_topic};
use crate::simdrv::BrokerProcess;
use crate::topic::Topic;

/// Configuration for [`ShardedSimCluster::build`].
#[derive(Debug, Clone)]
pub struct ShardedSimConfig {
    /// Number of shards (one simulated host + broker process each).
    pub shards: usize,
    /// CPU cost model charged by every shard.
    pub cost: CostModel,
    /// Per-shard NIC bandwidth (typically `total_nic / shards`).
    pub shard_nic: Bandwidth,
    /// Per-shard NIC queue limit in bytes.
    pub queue_bytes: u64,
}

impl ShardedSimConfig {
    /// A cluster of `shards` shards splitting `total_nic` evenly, with
    /// the calibrated NaradaBrokering cost model and the large socket
    /// buffers the experiments use.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn split(shards: usize, total_nic: Bandwidth) -> Self {
        assert!(shards > 0, "shard count must be positive");
        Self {
            shards,
            cost: CostModel::narada(),
            shard_nic: Bandwidth::from_bps(total_nic.bps() / shards as u64),
            queue_bytes: 64 * 1024 * 1024,
        }
    }
}

/// A sharded broker modelled in the deterministic simulator: one
/// [`BrokerProcess`] per shard, full mesh, shared placement hashes with
/// the live runtime. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ShardedSimCluster {
    shards: Vec<ProcessId>,
}

impl ShardedSimCluster {
    /// Adds the shard hosts and broker processes to `sim` and meshes
    /// them. Call before adding clients so process ids stay compact.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    pub fn build(sim: &mut Simulation, config: &ShardedSimConfig) -> Self {
        assert!(config.shards > 0, "shard count must be positive");
        let mut shards = Vec::with_capacity(config.shards);
        for index in 0..config.shards {
            let host = sim.add_host(
                &format!("shard-{index}"),
                NicConfig {
                    bandwidth: config.shard_nic,
                    queue_bytes: config.queue_bytes,
                    ..NicConfig::default()
                },
            );
            // Shard index == BrokerId, matching the thread runtime's
            // ShardWorker numbering. Local-adverts-only: the mesh has
            // cycles, so interest must not re-propagate (one-hop ring).
            let broker = BrokerProcess::new(BrokerId::from_raw(index as u64), config.cost)
                .with_local_adverts_only();
            shards.push(sim.add_typed_process(host, broker));
        }
        // Full mesh: every shard is a peer of every other, exactly like
        // the thread runtime's forwarding ring.
        for a in 0..config.shards {
            for b in 0..config.shards {
                if a == b {
                    continue;
                }
                let peer_process = shards[b];
                sim.process_mut::<BrokerProcess>(shards[a])
                    .expect("shard process just added")
                    .add_peer(BrokerId::from_raw(b as u64), peer_process);
            }
        }
        Self { shards }
    }

    /// Number of shards in the cluster.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The simulator process of shard `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn shard_process(&self, index: usize) -> ProcessId {
        self.shards[index]
    }

    /// All shard processes, in shard order.
    pub fn shard_processes(&self) -> &[ProcessId] {
        &self.shards
    }

    /// The shard index owning publishes to `topic` — identical to
    /// [`crate::sharded::ShardedBroker::shard_for_topic`].
    pub fn owner_shard(&self, topic: &Topic) -> usize {
        owner_shard_of_topic(topic, self.shards.len())
    }

    /// The broker process publishes to `topic` must be sent to.
    pub fn owner_process(&self, topic: &Topic) -> ProcessId {
        self.shards[self.owner_shard(topic)]
    }

    /// The shard index homing `client` — identical to
    /// [`crate::sharded::ShardedBroker::home_shard`].
    pub fn home_shard(&self, client: ClientId) -> usize {
        home_shard(client, self.shards.len())
    }

    /// The broker process `client` attaches and subscribes at.
    pub fn home_process(&self, client: ClientId) -> ProcessId {
        self.shards[self.home_shard(client)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardedBroker;
    use crate::simdrv::{PublisherConfig, RtpReceiver, VideoPublisher};
    use crate::topic::TopicFilter;
    use mmcs_rtp::packet::payload_type;
    use mmcs_rtp::source::{VideoSource, VideoSourceConfig};
    use mmcs_util::rng::DetRng;
    use mmcs_util::time::{SimDuration, SimTime};

    #[test]
    fn placement_matches_live_runtime() {
        // The sim cluster and the thread runtime must agree on every
        // placement decision: same hash, same modulus, same fallbacks.
        for shards in [1usize, 2, 3, 4, 8] {
            let live = ShardedBroker::spawn(shards);
            let mut sim = Simulation::new(1);
            let cluster = ShardedSimCluster::build(
                &mut sim,
                &ShardedSimConfig::split(shards, Bandwidth::from_mbps(310)),
            );
            for raw in 1..200u64 {
                let client = ClientId::from_raw(raw);
                assert_eq!(cluster.home_shard(client), live.home_shard(client));
            }
            for name in ["alpha/x", "bravo/y/z", "sess42/audio", "a", "globalmmcs/capacity/av"] {
                let topic = Topic::parse(name).unwrap();
                assert_eq!(cluster.owner_shard(&topic), live.shard_for_topic(&topic));
            }
            live.shutdown();
        }
    }

    #[test]
    fn cross_shard_publish_reaches_remote_homed_subscriber() {
        // Find a (topic, client) pair owned/homed on different shards,
        // then prove the publish hops the mesh exactly once.
        let mut sim = Simulation::new(3);
        let cluster =
            ShardedSimCluster::build(&mut sim, &ShardedSimConfig::split(4, Bandwidth::from_mbps(310)));
        let topic = Topic::parse("frontier/video").unwrap();
        let owner = cluster.owner_shard(&topic);
        let client = (1..64)
            .map(ClientId::from_raw)
            .find(|c| cluster.home_shard(*c) != owner)
            .expect("some client homes off the owner shard");

        let client_host = sim.add_host("clients", NicConfig::default());
        let receiver = sim.add_typed_process(
            client_host,
            RtpReceiver::new(
                cluster.home_process(client),
                client,
                TopicFilter::exact(&topic),
                payload_type::H263,
                SimDuration::from_micros(10),
            ),
        );
        let sender_host = sim.add_host("sender", NicConfig::default());
        let mut config = PublisherConfig::new(
            cluster.owner_process(&topic),
            ClientId::from_raw(9000),
            topic,
        );
        config.max_packets = 40;
        let source = VideoSource::new(VideoSourceConfig::default(), 7, DetRng::new(11));
        sim.add_typed_process(sender_host, VideoPublisher::new(config, source));

        sim.run_until(SimTime::from_secs(10));
        let stats = sim.process_ref::<RtpReceiver>(receiver).unwrap().stats();
        assert_eq!(stats.received(), 40, "all packets across the shard hop");
        assert_eq!(stats.lost(), 0);
        // Exactly one mesh hop per packet: owner shard -> home shard.
        assert_eq!(sim.counter("broker.forwarded"), 40);
    }

    #[test]
    fn same_shard_publish_never_hops() {
        let mut sim = Simulation::new(5);
        let cluster =
            ShardedSimCluster::build(&mut sim, &ShardedSimConfig::split(4, Bandwidth::from_mbps(310)));
        let topic = Topic::parse("frontier/video").unwrap();
        let owner = cluster.owner_shard(&topic);
        let client = (1..64)
            .map(ClientId::from_raw)
            .find(|c| cluster.home_shard(*c) == owner)
            .expect("some client homes on the owner shard");

        let client_host = sim.add_host("clients", NicConfig::default());
        let receiver = sim.add_typed_process(
            client_host,
            RtpReceiver::new(
                cluster.home_process(client),
                client,
                TopicFilter::exact(&topic),
                payload_type::H263,
                SimDuration::from_micros(10),
            ),
        );
        let sender_host = sim.add_host("sender", NicConfig::default());
        let mut config = PublisherConfig::new(
            cluster.owner_process(&topic),
            ClientId::from_raw(9000),
            topic,
        );
        config.max_packets = 25;
        let source = VideoSource::new(VideoSourceConfig::default(), 7, DetRng::new(11));
        sim.add_typed_process(sender_host, VideoPublisher::new(config, source));

        sim.run_until(SimTime::from_secs(10));
        let stats = sim.process_ref::<RtpReceiver>(receiver).unwrap().stats();
        assert_eq!(stats.received(), 25);
        assert_eq!(sim.counter("broker.forwarded"), 0, "owner == home: no hop");
    }

    #[test]
    fn broadcast_to_all_shards_delivers_exactly_once() {
        // The duplication regression: when *every* shard has local
        // subscribers on one topic, each advertises interest to each
        // peer — a forwarded event must still stop after one hop, not
        // ricochet around the mesh and deliver copies.
        let shards = 4usize;
        let mut sim = Simulation::new(9);
        let cluster = ShardedSimCluster::build(
            &mut sim,
            &ShardedSimConfig::split(shards, Bandwidth::from_mbps(310)),
        );
        let topic = Topic::parse("frontier/broadcast").unwrap();
        let owner = cluster.owner_shard(&topic);

        // One receiver homed on every shard.
        let client_host = sim.add_host("clients", NicConfig::default());
        let mut receivers = Vec::new();
        for shard in 0..shards {
            let client = (1..256)
                .map(ClientId::from_raw)
                .find(|c| cluster.home_shard(*c) == shard)
                .expect("some client homes on each shard");
            receivers.push(sim.add_typed_process(
                client_host,
                RtpReceiver::new(
                    cluster.home_process(client),
                    client,
                    TopicFilter::exact(&topic),
                    payload_type::H263,
                    SimDuration::from_micros(10),
                ),
            ));
        }
        let sender_host = sim.add_host("sender", NicConfig::default());
        let mut config = PublisherConfig::new(
            cluster.owner_process(&topic),
            ClientId::from_raw(9000),
            topic,
        );
        config.max_packets = 30;
        let source = VideoSource::new(VideoSourceConfig::default(), 7, DetRng::new(11));
        sim.add_typed_process(sender_host, VideoPublisher::new(config, source));

        sim.run_until(SimTime::from_secs(10));
        for receiver in &receivers {
            let stats = sim.process_ref::<RtpReceiver>(*receiver).unwrap().stats();
            assert_eq!(stats.received(), 30, "exactly once per subscriber");
        }
        // One hop to each non-owner shard and nothing further.
        assert_eq!(
            sim.counter("broker.forwarded"),
            30 * (shards as u64 - 1),
            "owner {owner} forwards once per interested peer"
        );
    }
}
