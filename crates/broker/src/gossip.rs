//! Anti-entropy gossip of per-node subscription interest.
//!
//! Every federation node keeps a [`GossipState`]: its own **interest
//! truth** (the deduplicated set of filters its local clients hold,
//! stamped with a monotonically increasing *generation*) plus a **view**
//! of every other node's truth learned through gossip. The vector of
//! `(node, generation)` pairs — the **digest** — is a version vector:
//! node A is strictly behind node B on entry `n` exactly when A's
//! generation for `n` is lower.
//!
//! Rounds are push-pull over direct links only:
//!
//! 1. on its gossip tick a node sends its digest to each live peer;
//! 2. a peer receiving a digest replies with the **entries** the sender
//!    is missing (every node for which the receiver's known generation
//!    is higher) — the *push* half;
//! 3. if the incoming digest shows the receiver itself is behind
//!    anywhere, it answers with its own digest too — the *pull* half.
//!    That reply can only fire while strictly behind, so the exchange
//!    terminates instead of ping-ponging.
//!
//! Applying an entry is idempotent and monotone (`apply` takes an entry
//! only if its generation is strictly newer), so lost or duplicated
//! gossip frames are harmless — anti-entropy re-heals on the next
//! round. Interest spreads one link-hop per round; a connected graph of
//! diameter *d* converges in at most *d* rounds.
//!
//! The publish hot path asks [`GossipState::targets_for`] which nodes
//! hold matching interest. Matches are answered from a
//! generation-stamped per-topic cache (mirroring the
//! [`crate::node::BrokerNode`] route cache), so a warm publish costs a
//! hash lookup plus an `Arc` clone — no allocation.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::BufMut;

use crate::topic::{SubscriptionTable, Topic, TopicFilter};

/// Index of a node inside one federation cluster. Node ids are dense
/// (`0..nodes`) and appear on the wire as `u16` in [`crate::cluster`]
/// frame headers and gossip bodies.
pub type NodeId = u16;

/// One node's interest truth as carried by gossip: a generation plus
/// the deduplicated, deterministically ordered filter set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InterestEntry {
    /// Version of this node's interest; bumped on every change.
    pub generation: u64,
    /// The node's filters, sorted by their canonical string form so
    /// encodings (and fingerprints over them) are deterministic.
    pub filters: Vec<TopicFilter>,
}

/// Cached match result for one topic, stamped with the interest
/// generation it was computed under.
struct CachedTargets {
    stamp: u64,
    targets: Arc<Vec<NodeId>>,
}

/// Per-node gossip state: local interest truth, the learned view of
/// every peer, and the compiled match table for the publish hot path.
pub struct GossipState {
    me: NodeId,
    /// `view[n]` is what this node believes node `n`'s truth to be;
    /// `view[me]` *is* the truth.
    view: Vec<InterestEntry>,
    /// Refcounts behind the local truth — two clients sharing a filter
    /// keep it advertised until both unsubscribe.
    local_refs: HashMap<TopicFilter, usize>,
    /// Filter → interested nodes, rebuilt whenever the view changes.
    table: SubscriptionTable<NodeId>,
    /// Bumped on every view change; stamps `cache` entries.
    table_stamp: u64,
    cache: HashMap<Topic, CachedTargets>,
    scratch: Vec<NodeId>,
}

impl GossipState {
    /// Creates the state for node `me` in a cluster of `nodes` nodes.
    /// Every entry starts at generation 0 with no filters — which is
    /// also every node's initial truth, so a fresh cluster is already
    /// converged.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range.
    pub fn new(me: NodeId, nodes: usize) -> Self {
        assert!((me as usize) < nodes, "node id {me} out of range ({nodes} nodes)");
        Self {
            me,
            view: vec![InterestEntry::default(); nodes],
            local_refs: HashMap::new(),
            table: SubscriptionTable::new(),
            table_stamp: 0,
            cache: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes tracked.
    pub fn node_count(&self) -> usize {
        self.view.len()
    }

    /// This node's own interest generation.
    pub fn local_generation(&self) -> u64 {
        self.entry(self.me).generation
    }

    /// What this node believes node `n`'s interest to be (for `n == me`,
    /// the local truth). Out-of-range ids read as an empty entry.
    pub fn entry(&self, node: NodeId) -> &InterestEntry {
        static EMPTY: InterestEntry = InterestEntry {
            generation: 0,
            filters: Vec::new(),
        };
        self.view.get(node as usize).unwrap_or(&EMPTY)
    }

    /// Total `(node, filter)` interest entries currently known — the
    /// value exported as the `interest_entries` gauge.
    pub fn interest_entries(&self) -> usize {
        self.view.iter().map(|e| e.filters.len()).sum()
    }

    /// Adds one local subscription reference. Returns `true` when the
    /// truth changed (first reference to this filter).
    pub fn subscribe(&mut self, filter: &TopicFilter) -> bool {
        let refs = self.local_refs.entry(filter.clone()).or_insert(0);
        *refs += 1;
        if *refs > 1 {
            return false;
        }
        let me = self.me as usize;
        if let Some(entry) = self.view.get_mut(me) {
            let key = filter.to_string();
            let pos = entry
                .filters
                .binary_search_by(|f| f.to_string().cmp(&key))
                .unwrap_or_else(|insert_at| insert_at);
            entry.filters.insert(pos, filter.clone());
            entry.generation += 1;
        }
        self.rebuild();
        true
    }

    /// Drops one local subscription reference. Returns `true` when the
    /// truth changed (last reference gone).
    pub fn unsubscribe(&mut self, filter: &TopicFilter) -> bool {
        let gone = match self.local_refs.get_mut(filter) {
            Some(refs) => {
                *refs = refs.saturating_sub(1);
                *refs == 0
            }
            None => false,
        };
        if !gone {
            return false;
        }
        self.local_refs.remove(filter);
        let me = self.me as usize;
        if let Some(entry) = self.view.get_mut(me) {
            if let Some(pos) = entry.filters.iter().position(|f| f == filter) {
                entry.filters.remove(pos);
            }
            entry.generation += 1;
        }
        self.rebuild();
        true
    }

    /// Writes this node's digest — the full version vector — into `out`.
    pub fn digest_into(&self, out: &mut Vec<(NodeId, u64)>) {
        out.clear();
        for (node, entry) in self.view.iter().enumerate() {
            out.push((node as NodeId, entry.generation));
        }
    }

    /// The entries a peer reporting `digest` is missing: every node for
    /// which our known generation is strictly higher. Nodes absent from
    /// the digest count as generation 0.
    pub fn entries_newer_than(&self, digest: &[(NodeId, u64)]) -> Vec<(NodeId, InterestEntry)> {
        let mut fresh = Vec::new();
        for (node, entry) in self.view.iter().enumerate() {
            let theirs = digest
                .iter()
                .find(|(n, _)| *n as usize == node)
                .map(|(_, generation)| *generation)
                .unwrap_or(0);
            if entry.generation > theirs {
                fresh.push((node as NodeId, entry.clone()));
            }
        }
        fresh
    }

    /// Whether `digest` shows knowledge strictly newer than ours
    /// anywhere — the condition for sending the pull half (our own
    /// digest) back to the peer.
    pub fn behind(&self, digest: &[(NodeId, u64)]) -> bool {
        digest
            .iter()
            .any(|(node, generation)| *generation > self.entry(*node).generation)
    }

    /// Merges gossip entries into the view. Entries about ourselves are
    /// ignored (local truth always wins) and an entry is taken only if
    /// strictly newer, so `apply` is idempotent and monotone. Returns
    /// how many entries were applied.
    pub fn apply(&mut self, entries: &[(NodeId, InterestEntry)]) -> usize {
        let mut applied = 0;
        for (node, entry) in entries {
            if *node == self.me {
                continue;
            }
            let Some(known) = self.view.get_mut(*node as usize) else {
                continue;
            };
            if entry.generation > known.generation {
                *known = entry.clone();
                applied += 1;
            }
        }
        if applied > 0 {
            self.rebuild();
        }
        applied
    }

    /// Forgets everything learned about other nodes (back to the
    /// generation-0 empty view) while keeping the local truth — the
    /// state of a gateway daemon that restarted with its clients still
    /// attached. Anti-entropy refills the view on the next rounds.
    pub fn restart(&mut self) {
        let me = self.me as usize;
        for (node, entry) in self.view.iter_mut().enumerate() {
            if node != me {
                *entry = InterestEntry::default();
            }
        }
        self.rebuild();
    }

    /// Wipes the local truth too — generation back to 0, filters and
    /// refcounts gone — modelling a restart that lost its durable
    /// interest store. Peers holding the higher pre-crash generation
    /// will now never accept the empty set: the cluster cannot
    /// re-converge. Exists so the chaos harness can inject exactly that
    /// bug and prove its invariants catch it.
    pub fn wipe_local(&mut self) {
        self.local_refs.clear();
        let me = self.me as usize;
        if let Some(entry) = self.view.get_mut(me) {
            *entry = InterestEntry::default();
        }
        self.rebuild();
    }

    /// The nodes whose interest matches `topic`, including ourselves if
    /// we match (callers exclude `me` when fanning out). Warm topics are
    /// answered from a generation-stamped cache: a hash lookup and an
    /// `Arc` clone, no allocation.
    pub fn targets_for(&mut self, topic: &Topic) -> Arc<Vec<NodeId>> {
        if let Some(cached) = self.cache.get(topic) {
            if cached.stamp == self.table_stamp {
                return Arc::clone(&cached.targets);
            }
        }
        self.scratch.clear();
        self.table.matches_into(topic, &mut self.scratch);
        self.scratch.sort_unstable();
        self.scratch.dedup();
        let targets = Arc::new(self.scratch.clone());
        self.cache.insert(
            topic.clone(),
            CachedTargets {
                stamp: self.table_stamp,
                targets: Arc::clone(&targets),
            },
        );
        targets
    }

    fn rebuild(&mut self) {
        self.table = SubscriptionTable::new();
        for (node, entry) in self.view.iter().enumerate() {
            for filter in &entry.filters {
                self.table.subscribe(filter, node as NodeId);
            }
        }
        self.table_stamp += 1;
    }
}

impl std::fmt::Debug for GossipState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GossipState")
            .field("me", &self.me)
            .field("nodes", &self.view.len())
            .field("local_generation", &self.local_generation())
            .field("interest_entries", &self.interest_entries())
            .finish()
    }
}

/// Typed errors decoding gossip bodies. Mirrors
/// [`crate::wire::DecodeEventError`]: malformed input is reported, never
/// panicked on, so a byte off the socket cannot take a worker down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeGossipError {
    /// The body ended before a declared field.
    Truncated,
    /// Bytes remained after the declared content.
    TrailingBytes,
    /// A filter string failed to parse.
    BadFilter,
    /// A declared count exceeds the sanity bound.
    TooLarge,
}

impl std::fmt::Display for DecodeGossipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "gossip body truncated"),
            Self::TrailingBytes => write!(f, "gossip body has trailing bytes"),
            Self::BadFilter => write!(f, "gossip body carries an invalid filter"),
            Self::TooLarge => write!(f, "gossip body declares an oversized count"),
        }
    }
}

impl std::error::Error for DecodeGossipError {}

/// Sanity bound on counts in gossip bodies; real clusters are a few
/// dozen nodes with a few hundred filters.
const MAX_GOSSIP_ITEMS: usize = 65_535;

/// Encodes a digest body: `u16` count, then `(u16 node, u64 generation)`
/// per entry, all big-endian.
pub fn encode_digest_into(digest: &[(NodeId, u64)], buf: &mut impl BufMut) {
    let count = digest.len().min(MAX_GOSSIP_ITEMS);
    buf.put_u16(count as u16);
    for (node, generation) in digest.iter().take(count) {
        buf.put_u16(*node);
        buf.put_u64(*generation);
    }
}

/// Decodes a digest body. See [`encode_digest_into`] for the layout.
///
/// # Errors
///
/// Returns a [`DecodeGossipError`] describing the first malformation.
pub fn decode_digest(body: &[u8]) -> Result<Vec<(NodeId, u64)>, DecodeGossipError> {
    let mut cursor = Cursor::new(body);
    let count = cursor.u16()? as usize;
    let mut digest = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let node = cursor.u16()?;
        let generation = cursor.u64()?;
        digest.push((node, generation));
    }
    cursor.finish()?;
    Ok(digest)
}

/// Encodes an entries body: `u16` count, then per entry `u16` node,
/// `u64` generation, `u16` filter count, and each filter as a
/// `u16`-length-prefixed UTF-8 pattern.
pub fn encode_entries_into(entries: &[(NodeId, InterestEntry)], buf: &mut impl BufMut) {
    let count = entries.len().min(MAX_GOSSIP_ITEMS);
    buf.put_u16(count as u16);
    for (node, entry) in entries.iter().take(count) {
        buf.put_u16(*node);
        buf.put_u64(entry.generation);
        let filters = entry.filters.len().min(MAX_GOSSIP_ITEMS);
        buf.put_u16(filters as u16);
        for filter in entry.filters.iter().take(filters) {
            let pattern = filter.to_string();
            let bytes = pattern.as_bytes();
            let len = bytes.len().min(MAX_GOSSIP_ITEMS);
            buf.put_u16(len as u16);
            if let Some(head) = bytes.get(..len) {
                buf.put_slice(head);
            }
        }
    }
}

/// Decodes an entries body. See [`encode_entries_into`] for the layout.
///
/// # Errors
///
/// Returns a [`DecodeGossipError`] describing the first malformation.
pub fn decode_entries(body: &[u8]) -> Result<Vec<(NodeId, InterestEntry)>, DecodeGossipError> {
    let mut cursor = Cursor::new(body);
    let count = cursor.u16()? as usize;
    let mut entries = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let node = cursor.u16()?;
        let generation = cursor.u64()?;
        let nfilters = cursor.u16()? as usize;
        let mut filters = Vec::with_capacity(nfilters.min(64));
        for _ in 0..nfilters {
            let len = cursor.u16()? as usize;
            let raw = cursor.bytes(len)?;
            let text = std::str::from_utf8(raw).map_err(|_| DecodeGossipError::BadFilter)?;
            let filter = TopicFilter::parse(text).map_err(|_| DecodeGossipError::BadFilter)?;
            filters.push(filter);
        }
        entries.push((node, InterestEntry { generation, filters }));
    }
    cursor.finish()?;
    Ok(entries)
}

/// Bounds-checked big-endian reader over a gossip body; every read is
/// explicit so truncation surfaces as an error, never a panic.
struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Self {
        Self { body, at: 0 }
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], DecodeGossipError> {
        let end = self.at.checked_add(len).ok_or(DecodeGossipError::Truncated)?;
        let slice = self
            .body
            .get(self.at..end)
            .ok_or(DecodeGossipError::Truncated)?;
        self.at = end;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, DecodeGossipError> {
        let raw = self.bytes(2)?;
        Ok(u16::from_be_bytes([raw[0], raw[1]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeGossipError> {
        let raw = self.bytes(8)?;
        let mut word = [0u8; 8];
        word.copy_from_slice(raw);
        Ok(u64::from_be_bytes(word))
    }

    fn finish(&self) -> Result<(), DecodeGossipError> {
        if self.at == self.body.len() {
            Ok(())
        } else {
            Err(DecodeGossipError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(s: &str) -> TopicFilter {
        TopicFilter::parse(s).unwrap()
    }

    fn topic(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    #[test]
    fn subscribe_bumps_generation_once_per_distinct_filter() {
        let mut state = GossipState::new(0, 2);
        assert!(state.subscribe(&filter("a/#")));
        assert!(!state.subscribe(&filter("a/#"))); // refcounted
        assert_eq!(state.local_generation(), 1);
        assert!(!state.unsubscribe(&filter("a/#")));
        assert!(state.unsubscribe(&filter("a/#")));
        assert_eq!(state.local_generation(), 2);
        assert!(state.entry(0).filters.is_empty());
    }

    #[test]
    fn push_pull_converges_both_directions() {
        let mut a = GossipState::new(0, 2);
        let mut b = GossipState::new(1, 2);
        a.subscribe(&filter("audio/#"));
        b.subscribe(&filter("video/#"));

        // A ticks: digest to B; B pushes what A lacks and pulls back.
        let mut digest = Vec::new();
        a.digest_into(&mut digest);
        let push = b.entries_newer_than(&digest);
        assert_eq!(a.apply(&push), 1);
        assert!(b.behind(&digest));
        let mut reply = Vec::new();
        b.digest_into(&mut reply);
        let pull = a.entries_newer_than(&reply);
        assert_eq!(b.apply(&pull), 1);

        assert_eq!(a.entry(1), b.entry(1));
        assert_eq!(b.entry(0), a.entry(0));
        assert!(!a.behind(&reply));
    }

    #[test]
    fn apply_is_idempotent_and_ignores_self_and_stale() {
        let mut a = GossipState::new(0, 3);
        a.subscribe(&filter("x/#"));
        let entries = vec![
            (
                1,
                InterestEntry {
                    generation: 5,
                    filters: vec![filter("y/#")],
                },
            ),
            (
                0, // about ourselves: local truth wins
                InterestEntry {
                    generation: 99,
                    filters: vec![filter("z/#")],
                },
            ),
        ];
        assert_eq!(a.apply(&entries), 1);
        assert_eq!(a.apply(&entries), 0); // same generation: no-op
        assert_eq!(a.local_generation(), 1);
        assert_eq!(a.entry(1).generation, 5);
        let stale = vec![(
            1,
            InterestEntry {
                generation: 3,
                filters: vec![],
            },
        )];
        assert_eq!(a.apply(&stale), 0);
    }

    #[test]
    fn targets_for_matches_across_the_view_and_caches() {
        let mut a = GossipState::new(0, 3);
        a.subscribe(&filter("media/#"));
        a.apply(&[(
            2,
            InterestEntry {
                generation: 1,
                filters: vec![filter("media/42/*")],
            },
        )]);
        let t = topic("media/42/video");
        let first = a.targets_for(&t);
        assert_eq!(first.as_slice(), &[0, 2]);
        let warm = a.targets_for(&t);
        assert!(Arc::ptr_eq(&first, &warm));
        // Interest change invalidates the cache.
        a.apply(&[(
            1,
            InterestEntry {
                generation: 4,
                filters: vec![filter("media/#")],
            },
        )]);
        assert_eq!(a.targets_for(&t).as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn restart_forgets_peers_but_keeps_truth() {
        let mut a = GossipState::new(0, 2);
        a.subscribe(&filter("keep/#"));
        a.apply(&[(
            1,
            InterestEntry {
                generation: 7,
                filters: vec![filter("peer/#")],
            },
        )]);
        a.restart();
        assert_eq!(a.local_generation(), 1);
        assert_eq!(a.entry(1).generation, 0);
        assert!(a.entry(1).filters.is_empty());
    }

    #[test]
    fn digest_roundtrip() {
        let digest = vec![(0u16, 0u64), (1, 42), (7, u64::MAX)];
        let mut buf = Vec::new();
        encode_digest_into(&digest, &mut buf);
        assert_eq!(decode_digest(&buf).unwrap(), digest);
        for cut in 0..buf.len() {
            assert!(
                matches!(decode_digest(&buf[..cut]), Err(DecodeGossipError::Truncated)),
                "prefix {cut} must be truncated"
            );
        }
        let mut extra = buf.clone();
        extra.push(0);
        assert_eq!(decode_digest(&extra), Err(DecodeGossipError::TrailingBytes));
    }

    #[test]
    fn entries_roundtrip_and_reject_bad_filters() {
        let entries = vec![
            (
                5u16,
                InterestEntry {
                    generation: 1,
                    filters: vec![],
                },
            ),
            (
                3,
                InterestEntry {
                    generation: 9,
                    filters: vec![filter("a/#"), filter("b/*/c")],
                },
            ),
        ];
        let mut buf = Vec::new();
        encode_entries_into(&entries, &mut buf);
        assert_eq!(decode_entries(&buf).unwrap(), entries);
        for cut in 0..buf.len() {
            assert!(
                decode_entries(&buf[..cut]).is_err(),
                "prefix {cut} must fail"
            );
        }
        // Corrupt a filter byte into an invalid pattern character.
        let mut bad = buf.clone();
        let pos = bad.len() - 1; // last byte of "b/*/c"
        bad[pos] = b'\xff';
        assert_eq!(decode_entries(&bad), Err(DecodeGossipError::BadFilter));
    }
}
