//! Ordered-delivery QoS.
//!
//! NaradaBrokering "helps to ensure QoS requirements of various
//! collaboration applications": shared-application events (whiteboard
//! strokes, chat) need per-source ordering even when the underlying
//! transport reorders. [`Reassembler`] buffers out-of-order events per
//! source and releases them in sequence, with a bounded window that
//! skips over losses instead of stalling forever (media must keep
//! flowing).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use mmcs_util::id::ClientId;

use crate::event::Event;

/// Per-source in-order delivery with a bounded reorder window.
#[derive(Debug)]
pub struct Reassembler {
    window: u64,
    sources: HashMap<ClientId, SourceState>,
}

#[derive(Debug, Default)]
struct SourceState {
    next_seq: u64,
    pending: BTreeMap<u64, Arc<Event>>,
    skipped: u64,
    delivered: u64,
}

impl Reassembler {
    /// Creates a reassembler releasing events in order per source,
    /// skipping a missing sequence number once `window` newer events
    /// have queued behind it.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "reorder window must be positive");
        Self {
            window,
            sources: HashMap::new(),
        }
    }

    /// Offers one received event; returns everything now deliverable, in
    /// order.
    pub fn offer(&mut self, event: Arc<Event>) -> Vec<Arc<Event>> {
        let state = self.sources.entry(event.source).or_default();
        if event.seq < state.next_seq {
            // Late duplicate of something already delivered or skipped.
            return Vec::new();
        }
        state.pending.insert(event.seq, event);

        let mut out = Vec::new();
        loop {
            if let Some(next) = state.pending.remove(&state.next_seq) {
                state.next_seq += 1;
                state.delivered += 1;
                out.push(next);
                continue;
            }
            // Gap at next_seq: skip it only when the window overflows.
            let Some((&newest, _)) = state.pending.iter().next_back() else {
                break;
            };
            if newest - state.next_seq >= self.window {
                state.skipped += 1;
                state.next_seq += 1;
                continue;
            }
            break;
        }
        out
    }

    /// Events delivered in order for a source.
    pub fn delivered(&self, source: ClientId) -> u64 {
        self.sources.get(&source).map_or(0, |s| s.delivered)
    }

    /// Sequence numbers given up on for a source.
    pub fn skipped(&self, source: ClientId) -> u64 {
        self.sources.get(&source).map_or(0, |s| s.skipped)
    }

    /// Events currently buffered (all sources).
    pub fn buffered(&self) -> usize {
        self.sources.values().map(|s| s.pending.len()).sum()
    }

    /// Drops a source's state (client left).
    pub fn forget(&mut self, source: ClientId) {
        self.sources.remove(&source);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventClass;
    use crate::topic::Topic;
    use bytes::Bytes;

    fn event(source: u64, seq: u64) -> Arc<Event> {
        Event::new(
            Topic::parse("t").unwrap(),
            ClientId::from_raw(source),
            seq,
            EventClass::Data,
            Bytes::new(),
        )
        .into_shared()
    }

    fn seqs(events: &[Arc<Event>]) -> Vec<u64> {
        events.iter().map(|e| e.seq).collect()
    }

    #[test]
    fn in_order_stream_passes_through() {
        let mut r = Reassembler::new(8);
        for seq in 0..5 {
            let out = r.offer(event(1, seq));
            assert_eq!(seqs(&out), vec![seq]);
        }
        assert_eq!(r.delivered(ClientId::from_raw(1)), 5);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn reordered_events_are_released_in_order() {
        let mut r = Reassembler::new(8);
        assert!(r.offer(event(1, 1)).is_empty());
        assert!(r.offer(event(1, 2)).is_empty());
        let out = r.offer(event(1, 0));
        assert_eq!(seqs(&out), vec![0, 1, 2]);
    }

    #[test]
    fn gap_skipped_after_window_overflow() {
        let mut r = Reassembler::new(3);
        // seq 0 delivered; seq 1 lost; 2,3 buffer.
        r.offer(event(1, 0));
        assert!(r.offer(event(1, 2)).is_empty());
        assert!(r.offer(event(1, 3)).is_empty());
        // seq 4 makes newest-next_seq = 3 >= window: skip 1, release 2..4.
        let out = r.offer(event(1, 4));
        assert_eq!(seqs(&out), vec![2, 3, 4]);
        assert_eq!(r.skipped(ClientId::from_raw(1)), 1);
    }

    #[test]
    fn late_duplicates_are_dropped() {
        let mut r = Reassembler::new(4);
        r.offer(event(1, 0));
        r.offer(event(1, 1));
        assert!(r.offer(event(1, 0)).is_empty());
        assert!(r.offer(event(1, 1)).is_empty());
        assert_eq!(r.delivered(ClientId::from_raw(1)), 2);
    }

    #[test]
    fn sources_are_independent() {
        let mut r = Reassembler::new(4);
        assert!(r.offer(event(1, 1)).is_empty()); // gap for source 1
        let out = r.offer(event(2, 0)); // source 2 flows regardless
        assert_eq!(seqs(&out), vec![0]);
        r.forget(ClientId::from_raw(1));
        assert_eq!(r.buffered(), 0);
        // After forget, source 1 restarts from 0.
        let out = r.offer(event(1, 0));
        assert_eq!(seqs(&out), vec![0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = Reassembler::new(0);
    }
}
