//! Hierarchical topics and wildcard filters.
//!
//! Topics are slash-separated paths (`session/42/video/ssrc-9`). Filters
//! may use `*` to match exactly one segment and a trailing `#` to match
//! any remainder (including none) — the JMS-style grammar NaradaBrokering
//! exposed. [`SubscriptionTable`] maps filters to subscribers with a trie
//! so that matching a publish against thousands of subscriptions is a
//! single path walk.

use core::fmt;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// A concrete topic path (no wildcards).
///
/// Segments are interned as [`Arc<str>`], so cloning a topic, deriving
/// an exact filter from it, or keying a route-cache entry by it shares
/// the segment storage instead of copying strings.
///
/// # Examples
///
/// ```
/// use mmcs_broker::topic::Topic;
///
/// let t = Topic::parse("session/42/video")?;
/// assert_eq!(t.segments().len(), 3);
/// assert_eq!(t.to_string(), "session/42/video");
/// # Ok::<(), mmcs_broker::topic::ParseTopicError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Topic {
    segments: Vec<Arc<str>>,
}

impl Topic {
    /// Parses a slash-separated topic path.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTopicError`] if the path is empty, has empty
    /// segments, or contains wildcard characters (`*`, `#`).
    pub fn parse(path: &str) -> Result<Topic, ParseTopicError> {
        let segments = split_segments(path)?;
        for segment in &segments {
            if &**segment == "*" || &**segment == "#" {
                return Err(ParseTopicError::WildcardInTopic);
            }
        }
        Ok(Topic { segments })
    }

    /// Builds a topic from pre-validated segments.
    ///
    /// # Panics
    ///
    /// Panics if any segment is empty or a wildcard.
    pub fn from_segments<I, S>(segments: I) -> Topic
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let segments: Vec<Arc<str>> = segments
            .into_iter()
            .map(|s| Arc::from(s.as_ref()))
            .collect();
        assert!(!segments.is_empty(), "topic must have at least one segment");
        for segment in &segments {
            assert!(
                !segment.is_empty()
                    && &**segment != "*"
                    && &**segment != "#"
                    && !segment.contains('/'),
                "invalid topic segment {segment:?}"
            );
        }
        Topic { segments }
    }

    /// The path segments.
    pub fn segments(&self) -> &[Arc<str>] {
        &self.segments
    }

    /// Appends a segment, returning a child topic. The parent's segment
    /// storage is shared, not copied.
    pub fn child(&self, segment: impl AsRef<str>) -> Topic {
        let mut segments = self.segments.clone();
        let segment = segment.as_ref();
        assert!(
            !segment.is_empty() && !segment.contains('/'),
            "invalid topic segment"
        );
        segments.push(Arc::from(segment));
        Topic { segments }
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for segment in &self.segments {
            if !first {
                f.write_str("/")?;
            }
            first = false;
            f.write_str(segment)?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Topic {
    type Err = ParseTopicError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Topic::parse(s)
    }
}

/// One filter pattern segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum FilterSegment {
    Literal(Arc<str>),
    /// `*`: exactly one segment.
    Single,
}

/// A subscription filter: literal segments, `*` wildcards, and an
/// optional trailing `#` matching any remainder.
///
/// # Examples
///
/// ```
/// use mmcs_broker::topic::{Topic, TopicFilter};
///
/// let f = TopicFilter::parse("session/*/video/#")?;
/// assert!(f.matches(&Topic::parse("session/1/video")?));
/// assert!(f.matches(&Topic::parse("session/1/video/ssrc/5")?));
/// assert!(!f.matches(&Topic::parse("session/1/audio")?));
/// # Ok::<(), mmcs_broker::topic::ParseTopicError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicFilter {
    segments: Vec<FilterSegment>,
    tail: bool,
}

impl TopicFilter {
    /// Parses a filter pattern.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTopicError`] if the pattern is empty, has empty
    /// segments, or uses `#` anywhere but the final segment.
    pub fn parse(pattern: &str) -> Result<TopicFilter, ParseTopicError> {
        let raw = split_segments(pattern)?;
        let mut segments = Vec::with_capacity(raw.len());
        let mut tail = false;
        for (i, segment) in raw.iter().enumerate() {
            match &**segment {
                "#" => {
                    if i != raw.len() - 1 {
                        return Err(ParseTopicError::HashNotLast);
                    }
                    tail = true;
                }
                "*" => segments.push(FilterSegment::Single),
                _ => segments.push(FilterSegment::Literal(segment.clone())),
            }
        }
        if segments.is_empty() && !tail {
            return Err(ParseTopicError::Empty);
        }
        Ok(TopicFilter { segments, tail })
    }

    /// A filter matching exactly one topic. Shares the topic's interned
    /// segment storage — no string is copied.
    pub fn exact(topic: &Topic) -> TopicFilter {
        TopicFilter {
            segments: topic
                .segments()
                .iter()
                .map(|s| FilterSegment::Literal(Arc::clone(s)))
                .collect(),
            tail: false,
        }
    }

    /// Whether this filter matches a concrete topic.
    pub fn matches(&self, topic: &Topic) -> bool {
        let t = topic.segments();
        if self.tail {
            if t.len() < self.segments.len() {
                return false;
            }
        } else if t.len() != self.segments.len() {
            return false;
        }
        self.segments.iter().zip(t).all(|(f, s)| match f {
            FilterSegment::Literal(lit) => **lit == **s,
            FilterSegment::Single => true,
        })
    }

    /// Whether this filter contains any wildcard.
    pub fn has_wildcards(&self) -> bool {
        self.tail || self.segments.contains(&FilterSegment::Single)
    }

    /// The literal first segment this filter requires, or `None` when
    /// the head is a wildcard (`*`, or a bare `#`) and any first segment
    /// can match. The sharded runtime keys shard ownership on a topic's
    /// first segment, so a `Some` head pins a filter's interest to one
    /// shard while `None` means every shard may own matching topics.
    pub fn first_literal(&self) -> Option<&str> {
        match self.segments.first() {
            Some(FilterSegment::Literal(lit)) => Some(lit),
            _ => None,
        }
    }
}

impl fmt::Display for TopicFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for segment in &self.segments {
            if !first {
                f.write_str("/")?;
            }
            first = false;
            match segment {
                FilterSegment::Literal(lit) => f.write_str(lit)?,
                FilterSegment::Single => f.write_str("*")?,
            }
        }
        if self.tail {
            if !first {
                f.write_str("/")?;
            }
            f.write_str("#")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for TopicFilter {
    type Err = ParseTopicError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TopicFilter::parse(s)
    }
}

fn split_segments(path: &str) -> Result<Vec<Arc<str>>, ParseTopicError> {
    if path.is_empty() {
        return Err(ParseTopicError::Empty);
    }
    let mut segments = Vec::new();
    for segment in path.split('/') {
        if segment.is_empty() {
            return Err(ParseTopicError::EmptySegment);
        }
        segments.push(Arc::from(segment));
    }
    Ok(segments)
}

/// Error parsing a topic or filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseTopicError {
    /// The path was empty.
    Empty,
    /// A segment between slashes was empty.
    EmptySegment,
    /// A concrete topic contained `*` or `#`.
    WildcardInTopic,
    /// `#` appeared before the final segment.
    HashNotLast,
}

impl fmt::Display for ParseTopicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTopicError::Empty => write!(f, "empty topic path"),
            ParseTopicError::EmptySegment => write!(f, "empty topic segment"),
            ParseTopicError::WildcardInTopic => write!(f, "wildcard in concrete topic"),
            ParseTopicError::HashNotLast => write!(f, "'#' must be the final segment"),
        }
    }
}

impl std::error::Error for ParseTopicError {}

/// Trie node for the subscription table.
#[derive(Debug, Clone)]
struct TrieNode<S> {
    children: HashMap<Arc<str>, TrieNode<S>>,
    single: Option<Box<TrieNode<S>>>,
    /// Subscribers whose filter ends exactly here.
    here: Vec<S>,
    /// Subscribers whose filter ends here with a `#` tail.
    tail: Vec<S>,
}

impl<S> Default for TrieNode<S> {
    fn default() -> Self {
        Self {
            children: HashMap::new(),
            single: None,
            here: Vec::new(),
            tail: Vec::new(),
        }
    }
}

/// Maps filters to subscribers; matching walks the trie once.
///
/// `S` is the subscriber handle type (a client id, a broker link id, …).
#[derive(Debug, Clone)]
pub struct SubscriptionTable<S> {
    root: TrieNode<S>,
    len: usize,
}

impl<S: Clone + PartialEq> SubscriptionTable<S> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            root: TrieNode::default(),
            len: 0,
        }
    }

    /// Number of (filter, subscriber) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds a subscription. Duplicate (filter, subscriber) pairs are
    /// ignored; returns whether the entry was inserted.
    pub fn subscribe(&mut self, filter: &TopicFilter, subscriber: S) -> bool {
        let node = Self::descend(&mut self.root, &filter.segments);
        let bucket = if filter.tail { &mut node.tail } else { &mut node.here };
        if bucket.contains(&subscriber) {
            return false;
        }
        bucket.push(subscriber);
        self.len += 1;
        true
    }

    /// Removes a subscription; returns whether it existed.
    pub fn unsubscribe(&mut self, filter: &TopicFilter, subscriber: &S) -> bool {
        let node = Self::descend(&mut self.root, &filter.segments);
        let bucket = if filter.tail { &mut node.tail } else { &mut node.here };
        if let Some(pos) = bucket.iter().position(|s| s == subscriber) {
            bucket.swap_remove(pos);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    fn descend<'a>(mut node: &'a mut TrieNode<S>, segments: &[FilterSegment]) -> &'a mut TrieNode<S> {
        for segment in segments {
            node = match segment {
                FilterSegment::Literal(lit) => node.children.entry(Arc::clone(lit)).or_default(),
                FilterSegment::Single => node.single.get_or_insert_with(Default::default),
            };
        }
        node
    }

    /// Removes every subscription held by `subscriber`; returns how many
    /// were removed.
    pub fn unsubscribe_all(&mut self, subscriber: &S) -> usize {
        fn prune<S: PartialEq>(node: &mut TrieNode<S>, subscriber: &S) -> usize {
            let mut removed = 0;
            node.here.retain(|s| {
                let keep = s != subscriber;
                if !keep {
                    removed += 1;
                }
                keep
            });
            node.tail.retain(|s| {
                let keep = s != subscriber;
                if !keep {
                    removed += 1;
                }
                keep
            });
            for child in node.children.values_mut() {
                removed += prune(child, subscriber);
            }
            if let Some(single) = &mut node.single {
                removed += prune(single, subscriber);
            }
            removed
        }
        let removed = prune(&mut self.root, subscriber);
        self.len -= removed;
        removed
    }
}

impl<S: Clone + Ord> SubscriptionTable<S> {
    /// All subscribers whose filter matches `topic`, deduplicated and
    /// sorted.
    pub fn matches(&self, topic: &Topic) -> Vec<S> {
        let mut out = Vec::new();
        self.matches_into(topic, &mut out);
        out
    }

    /// Appends every subscriber whose filter matches `topic` to `out`,
    /// deduplicated and sorted. Only the appended region is touched, so
    /// callers can reuse one buffer across publishes without clearing
    /// unrelated contents — the allocation-free counterpart of
    /// [`matches`](Self::matches).
    ///
    /// Dedup is sort-based over the appended region: the walk pushes raw
    /// hits (a subscriber reachable through both a literal and a `*`
    /// path appears twice), then one `sort_unstable` + in-place compact
    /// replaces the old `contains`-scan-per-push, which was quadratic in
    /// fan-out.
    pub fn matches_into(&self, topic: &Topic, out: &mut Vec<S>) {
        let start = out.len();
        Self::walk(&self.root, topic.segments(), out);
        // `start <= out.len()` always holds (walk only appends); `get_mut`
        // keeps the hot route-planning path free of panicking indexing.
        let Some(appended) = out.get_mut(start..) else {
            return;
        };
        if appended.is_empty() {
            return;
        }
        appended.sort_unstable();
        // Compact the sorted region in place (Vec::dedup for a suffix):
        // `write` points at the last kept element, `read` scans ahead.
        let mut write = 0;
        for read in 1..appended.len() {
            if appended.get(read) != appended.get(write) {
                write += 1;
                appended.swap(write, read);
            }
        }
        out.truncate(start + write + 1);
    }

    fn walk(node: &TrieNode<S>, rest: &[Arc<str>], out: &mut Vec<S>) {
        // A `#` at this node matches the remainder, whatever it is.
        out.extend(node.tail.iter().cloned());
        let Some((head, tail)) = rest.split_first() else {
            out.extend(node.here.iter().cloned());
            return;
        };
        if let Some(child) = node.children.get(&**head) {
            Self::walk(child, tail, out);
        }
        if let Some(single) = &node.single {
            Self::walk(single, tail, out);
        }
    }
}

impl<S: Clone + PartialEq> Default for SubscriptionTable<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    fn filter(s: &str) -> TopicFilter {
        TopicFilter::parse(s).unwrap()
    }

    #[test]
    fn topic_parse_and_display() {
        let t = topic("a/b/c");
        let segments: Vec<&str> = t.segments().iter().map(|s| &**s).collect();
        assert_eq!(segments, ["a", "b", "c"]);
        assert_eq!(t.to_string(), "a/b/c");
        assert_eq!(t.child("d").to_string(), "a/b/c/d");
    }

    #[test]
    fn topic_parse_errors() {
        assert_eq!(Topic::parse(""), Err(ParseTopicError::Empty));
        assert_eq!(Topic::parse("a//b"), Err(ParseTopicError::EmptySegment));
        assert_eq!(Topic::parse("a/*"), Err(ParseTopicError::WildcardInTopic));
        assert_eq!(Topic::parse("#"), Err(ParseTopicError::WildcardInTopic));
        assert_eq!(Topic::parse("/a"), Err(ParseTopicError::EmptySegment));
    }

    #[test]
    fn filter_parse_errors() {
        assert_eq!(TopicFilter::parse(""), Err(ParseTopicError::Empty));
        assert_eq!(
            TopicFilter::parse("a/#/b"),
            Err(ParseTopicError::HashNotLast)
        );
        assert_eq!(TopicFilter::parse("a//b"), Err(ParseTopicError::EmptySegment));
    }

    #[test]
    fn exact_filter_matches_only_itself() {
        let f = TopicFilter::exact(&topic("x/y"));
        assert!(f.matches(&topic("x/y")));
        assert!(!f.matches(&topic("x/y/z")));
        assert!(!f.matches(&topic("x")));
        assert!(!f.has_wildcards());
    }

    #[test]
    fn star_matches_exactly_one_segment() {
        let f = filter("a/*/c");
        assert!(f.matches(&topic("a/b/c")));
        assert!(f.matches(&topic("a/zzz/c")));
        assert!(!f.matches(&topic("a/c")));
        assert!(!f.matches(&topic("a/b/b/c")));
        assert!(f.has_wildcards());
    }

    #[test]
    fn hash_matches_any_remainder_including_none() {
        let f = filter("a/#");
        assert!(f.matches(&topic("a")));
        assert!(f.matches(&topic("a/b")));
        assert!(f.matches(&topic("a/b/c/d")));
        assert!(!f.matches(&topic("b")));
        // Bare `#` matches everything.
        let all = filter("#");
        assert!(all.matches(&topic("a")));
        assert!(all.matches(&topic("a/b/c")));
    }

    #[test]
    fn filter_display_round_trips() {
        for pattern in ["a/b", "a/*/c", "a/#", "#", "*/x/#"] {
            assert_eq!(filter(pattern).to_string(), pattern);
            // Reparse must be identical.
            assert_eq!(filter(&filter(pattern).to_string()), filter(pattern));
        }
    }

    #[test]
    fn table_basic_subscribe_and_match() {
        let mut table: SubscriptionTable<u32> = SubscriptionTable::new();
        assert!(table.subscribe(&filter("session/7/video"), 1));
        assert!(table.subscribe(&filter("session/7/*"), 2));
        assert!(table.subscribe(&filter("session/#"), 3));
        assert!(table.subscribe(&filter("other/#"), 4));
        assert_eq!(table.len(), 4);

        let hit = table.matches(&topic("session/7/video"));
        assert_eq!(hit.len(), 3);
        assert!(hit.contains(&1) && hit.contains(&2) && hit.contains(&3));
        // Matches come back sorted (sort-based dedup).
        assert_eq!(table.matches(&topic("session/7/audio")), vec![2, 3]);
        assert_eq!(table.matches(&topic("zzz")), Vec::<u32>::new());
    }

    #[test]
    fn duplicate_subscription_is_ignored() {
        let mut table: SubscriptionTable<u32> = SubscriptionTable::new();
        assert!(table.subscribe(&filter("a/b"), 1));
        assert!(!table.subscribe(&filter("a/b"), 1));
        assert_eq!(table.len(), 1);
        assert_eq!(table.matches(&topic("a/b")), vec![1]);
    }

    #[test]
    fn overlapping_filters_dedup_subscriber() {
        let mut table: SubscriptionTable<u32> = SubscriptionTable::new();
        table.subscribe(&filter("a/#"), 1);
        table.subscribe(&filter("a/b"), 1);
        assert_eq!(table.matches(&topic("a/b")), vec![1]);
    }

    #[test]
    fn unsubscribe_removes_entry() {
        let mut table: SubscriptionTable<u32> = SubscriptionTable::new();
        table.subscribe(&filter("a/*"), 1);
        assert!(table.unsubscribe(&filter("a/*"), &1));
        assert!(!table.unsubscribe(&filter("a/*"), &1));
        assert!(table.matches(&topic("a/b")).is_empty());
        assert!(table.is_empty());
    }

    #[test]
    fn unsubscribe_all_prunes_everywhere() {
        let mut table: SubscriptionTable<u32> = SubscriptionTable::new();
        table.subscribe(&filter("a/b"), 1);
        table.subscribe(&filter("a/#"), 1);
        table.subscribe(&filter("x/*"), 1);
        table.subscribe(&filter("a/b"), 2);
        assert_eq!(table.unsubscribe_all(&1), 3);
        assert_eq!(table.len(), 1);
        assert_eq!(table.matches(&topic("a/b")), vec![2]);
    }

    /// Oracle check: trie matching agrees with direct filter matching.
    #[test]
    fn table_agrees_with_naive_oracle() {
        use mmcs_util::rng::DetRng;
        let mut rng = DetRng::new(99);
        let segs = ["a", "b", "c", "*"];
        let mut table: SubscriptionTable<usize> = SubscriptionTable::new();
        let mut filters = Vec::new();
        for id in 0..200 {
            let depth = rng.range_usize(1, 4);
            let mut parts: Vec<String> = (0..depth)
                .map(|_| (*rng.pick(&segs)).to_owned())
                .collect();
            if rng.chance(0.3) {
                parts.push("#".to_owned());
            }
            let f = filter(&parts.join("/"));
            table.subscribe(&f, id);
            filters.push((f, id));
        }
        let lits = ["a", "b", "c", "d"];
        for _ in 0..500 {
            let depth = rng.range_usize(1, 5);
            let t = Topic::from_segments((0..depth).map(|_| (*rng.pick(&lits)).to_owned()));
            let mut expected: Vec<usize> = filters
                .iter()
                .filter(|(f, _)| f.matches(&t))
                .map(|(_, id)| *id)
                .collect();
            expected.dedup();
            let mut actual = table.matches(&t);
            expected.sort_unstable();
            actual.sort_unstable();
            assert_eq!(actual, expected, "topic {t}");
        }
    }
}
