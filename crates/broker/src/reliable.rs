//! Reliable delivery.
//!
//! The NaradaBrokering the paper builds on ("The Narada Event Brokering
//! System", PDPTA'02) guarantees event delivery for control-plane
//! traffic: XGSP signaling and shared-application events must survive a
//! lossy hop even though RTP media rides best-effort. [`ReliableSender`]
//! and [`ReliableReceiver`] implement the classic positive-ack protocol
//! sans-IO: sequence numbers, cumulative acks, timeout-driven
//! retransmission with a bounded in-flight window, and duplicate
//! suppression on the receiving side.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use bytes::{BufMut, Bytes};
use mmcs_telemetry::Counter;
use mmcs_util::pool;
use mmcs_util::time::{SimDuration, SimTime};

use crate::event::Event;
use crate::wire;

/// A sequenced frame on the reliable channel.
#[derive(Debug, Clone)]
pub struct ReliableFrame {
    /// Channel sequence number.
    pub seq: u64,
    /// The event carried.
    pub event: Arc<Event>,
}

impl ReliableFrame {
    /// Serializes the frame into a pooled buffer: an 8-byte big-endian
    /// channel sequence number followed by the event's [`wire`] frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = pool::acquire(8 + wire::encoded_len(&self.event));
        buf.put_u64(self.seq);
        wire::encode_into(&self.event, &mut buf);
        buf.freeze()
    }

    /// Deserializes a frame produced by [`ReliableFrame::encode`]. The
    /// event payload stays a zero-copy slice of `frame`.
    ///
    /// # Errors
    ///
    /// Returns [`wire::DecodeEventError`] if the sequence prefix is
    /// truncated or the embedded event frame is malformed.
    pub fn decode(frame: &Bytes) -> Result<ReliableFrame, wire::DecodeEventError> {
        if frame.len() < 8 {
            return Err(wire::DecodeEventError::Truncated {
                needed: 8,
                got: frame.len(),
            });
        }
        let mut seq_bytes = [0u8; 8];
        seq_bytes.copy_from_slice(&frame[..8]);
        let event = wire::decode_shared(&frame.slice(8..))?.into_shared();
        Ok(ReliableFrame {
            seq: u64::from_be_bytes(seq_bytes),
            event,
        })
    }
}

/// A cumulative acknowledgement: everything below `next_expected` has
/// been received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// The receiver's next expected sequence number.
    pub next_expected: u64,
}

/// Sender half of the reliable channel.
#[derive(Debug)]
pub struct ReliableSender {
    next_seq: u64,
    /// Unacked frames with their last transmission time.
    in_flight: BTreeMap<u64, (Arc<Event>, SimTime)>,
    window: usize,
    retransmit_after: SimDuration,
    /// Events accepted but not yet transmitted (window full). A deque:
    /// `pump` drains from the front, so draining a backlog of n events
    /// is O(n) rather than the O(n²) a `Vec::remove(0)` would cost.
    backlog: VecDeque<Arc<Event>>,
    retransmissions: u64,
    /// Optional telemetry counter mirroring `retransmissions`.
    retransmit_counter: Option<Arc<Counter>>,
}

impl ReliableSender {
    /// Creates a sender with the given in-flight window and
    /// retransmission timeout.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize, retransmit_after: SimDuration) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            next_seq: 0,
            in_flight: BTreeMap::new(),
            window,
            retransmit_after,
            backlog: VecDeque::new(),
            retransmissions: 0,
            retransmit_counter: None,
        }
    }

    /// Mirrors every retransmission into a telemetry counter (shared
    /// with a registry), in addition to the internal total.
    pub fn set_retransmit_counter(&mut self, counter: Arc<Counter>) {
        self.retransmit_counter = Some(counter);
    }

    /// Offers an event for transmission; returns the frames to put on
    /// the wire now (possibly none if the window is full).
    pub fn send(&mut self, event: Arc<Event>, now: SimTime) -> Vec<ReliableFrame> {
        self.backlog.push_back(event);
        self.pump(now)
    }

    /// Processes an ack; returns frames newly released by the window.
    pub fn on_ack(&mut self, ack: Ack, now: SimTime) -> Vec<ReliableFrame> {
        self.in_flight = self.in_flight.split_off(&ack.next_expected);
        self.pump(now)
    }

    /// Timer tick: returns frames due for retransmission.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<ReliableFrame> {
        let mut out = Vec::new();
        for (seq, (event, last_sent)) in self.in_flight.iter_mut() {
            if now.saturating_duration_since(*last_sent) >= self.retransmit_after {
                *last_sent = now;
                self.retransmissions += 1;
                if let Some(counter) = &self.retransmit_counter {
                    counter.inc();
                }
                out.push(ReliableFrame {
                    seq: *seq,
                    event: Arc::clone(event),
                });
            }
        }
        out
    }

    fn pump(&mut self, now: SimTime) -> Vec<ReliableFrame> {
        let mut out = Vec::new();
        while self.in_flight.len() < self.window {
            let Some(event) = self.backlog.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            self.next_seq += 1;
            self.in_flight.insert(seq, (Arc::clone(&event), now));
            out.push(ReliableFrame { seq, event });
        }
        out
    }

    /// Frames currently awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Events accepted but not yet transmitted.
    pub fn backlogged(&self) -> usize {
        self.backlog.len()
    }

    /// Total retransmissions performed.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Whether everything offered has been delivered and acked.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty() && self.backlog.is_empty()
    }
}

/// Receiver half of the reliable channel.
#[derive(Debug, Default)]
pub struct ReliableReceiver {
    next_expected: u64,
    /// Out-of-order frames waiting for the gap to fill.
    pending: BTreeMap<u64, Arc<Event>>,
    duplicates: u64,
}

impl ReliableReceiver {
    /// Creates a receiver expecting sequence 0 first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes a frame; returns `(deliverable events in order, ack)`.
    pub fn on_frame(&mut self, frame: ReliableFrame) -> (Vec<Arc<Event>>, Ack) {
        if frame.seq < self.next_expected || self.pending.contains_key(&frame.seq) {
            self.duplicates += 1;
        } else {
            self.pending.insert(frame.seq, frame.event);
        }
        let mut out = Vec::new();
        while let Some(event) = self.pending.remove(&self.next_expected) {
            self.next_expected += 1;
            out.push(event);
        }
        (
            out,
            Ack {
                next_expected: self.next_expected,
            },
        )
    }

    /// Duplicate frames suppressed so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// The next sequence number the receiver needs.
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventClass;
    use crate::topic::Topic;
    use bytes::Bytes;
    use mmcs_util::id::ClientId;
    use mmcs_util::rng::DetRng;

    fn event(n: u64) -> Arc<Event> {
        Event::new(
            Topic::parse("ctl").unwrap(),
            ClientId::from_raw(1),
            n,
            EventClass::Data,
            Bytes::from(n.to_be_bytes().to_vec()),
        )
        .into_shared()
    }

    fn rto() -> SimDuration {
        SimDuration::from_millis(100)
    }

    #[test]
    fn lossless_channel_delivers_in_order() {
        let mut sender = ReliableSender::new(4, rto());
        let mut receiver = ReliableReceiver::new();
        let mut delivered = Vec::new();
        for n in 0..10 {
            for frame in sender.send(event(n), SimTime::ZERO) {
                let (events, ack) = receiver.on_frame(frame);
                delivered.extend(events.iter().map(|e| e.seq));
                sender.on_ack(ack, SimTime::ZERO);
            }
        }
        assert_eq!(delivered, (0..10).collect::<Vec<_>>());
        assert!(sender.is_idle());
        assert_eq!(sender.retransmissions(), 0);
        assert_eq!(receiver.duplicates(), 0);
    }

    #[test]
    fn window_limits_in_flight_and_backlogs_excess() {
        let mut sender = ReliableSender::new(2, rto());
        let f1 = sender.send(event(0), SimTime::ZERO);
        let f2 = sender.send(event(1), SimTime::ZERO);
        let f3 = sender.send(event(2), SimTime::ZERO);
        assert_eq!(f1.len() + f2.len() + f3.len(), 2, "window of 2");
        assert_eq!(sender.backlogged(), 1);
        // Acking the first releases the third.
        let released = sender.on_ack(Ack { next_expected: 1 }, SimTime::ZERO);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].seq, 2);
    }

    #[test]
    fn lost_frame_is_retransmitted_and_recovered() {
        let mut sender = ReliableSender::new(8, rto());
        let mut receiver = ReliableReceiver::new();
        let frames = [
            sender.send(event(0), SimTime::ZERO),
            sender.send(event(1), SimTime::ZERO),
            sender.send(event(2), SimTime::ZERO),
        ]
        .concat();
        // Frame 1 is lost; 0 and 2 arrive.
        let (d0, a0) = receiver.on_frame(frames[0].clone());
        assert_eq!(d0.len(), 1);
        let (d2, a2) = receiver.on_frame(frames[2].clone());
        assert!(d2.is_empty(), "gap holds delivery");
        assert_eq!(a2.next_expected, 1);
        sender.on_ack(a0, SimTime::ZERO);
        sender.on_ack(a2, SimTime::ZERO);
        // Nothing due before the timeout…
        assert!(sender.on_tick(SimTime::from_millis(50)).is_empty());
        // …then 1 and 2 retransmit (2 is also unacked).
        let retx = sender.on_tick(SimTime::from_millis(120));
        assert_eq!(retx.len(), 2);
        let (delivered, ack) = receiver.on_frame(
            retx.into_iter().find(|f| f.seq == 1).expect("frame 1"),
        );
        assert_eq!(delivered.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(ack.next_expected, 3);
        sender.on_ack(ack, SimTime::from_millis(120));
        assert!(sender.is_idle());
        assert!(sender.retransmissions() >= 1);
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut sender = ReliableSender::new(4, rto());
        let mut receiver = ReliableReceiver::new();
        let frames = sender.send(event(0), SimTime::ZERO);
        receiver.on_frame(frames[0].clone());
        let (dup_delivery, ack) = receiver.on_frame(frames[0].clone());
        assert!(dup_delivery.is_empty());
        assert_eq!(ack.next_expected, 1);
        assert_eq!(receiver.duplicates(), 1);
    }

    /// Regression for the `Vec::remove(0)` → `VecDeque::pop_front`
    /// backlog fix: a deep backlog drained under backpressure must come
    /// out in exactly the order the events were offered, with sequence
    /// numbers assigned in that same order.
    #[test]
    fn deep_backlog_drains_in_offer_order() {
        let mut sender = ReliableSender::new(3, rto());
        let mut transmitted = Vec::new();
        for n in 0..200 {
            transmitted.extend(sender.send(event(n), SimTime::ZERO));
        }
        assert_eq!(sender.backlogged(), 197, "window of 3 holds the rest");
        // Ack whatever is outstanding, a few frames at a time, until the
        // backlog is fully drained.
        while !sender.is_idle() {
            let acked = transmitted.last().map_or(0, |f: &ReliableFrame| f.seq + 1);
            transmitted.extend(sender.on_ack(Ack { next_expected: acked }, SimTime::ZERO));
        }
        let seqs: Vec<u64> = transmitted.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, (0..200).collect::<Vec<_>>(), "wire order == offer order");
        let payload_order: Vec<u64> = transmitted.iter().map(|f| f.event.seq).collect();
        assert_eq!(payload_order, (0..200).collect::<Vec<_>>());
        assert_eq!(sender.retransmissions(), 0);
    }

    /// Randomized adversarial channel: drop and reorder frames freely;
    /// with retransmission every offered event is eventually delivered
    /// exactly once, in order.
    #[test]
    fn survives_random_loss_and_reordering() {
        let mut rng = DetRng::new(2024);
        for _trial in 0..20 {
            let mut sender = ReliableSender::new(4, rto());
            let mut receiver = ReliableReceiver::new();
            let total = rng.range_u64(5, 40);
            let mut delivered: Vec<u64> = Vec::new();
            let mut now = SimTime::ZERO;
            let mut offered = 0u64;
            let mut wire: Vec<ReliableFrame> = Vec::new();
            let mut acks: Vec<Ack> = Vec::new();
            let mut steps = 0;
            while (delivered.len() as u64) < total {
                steps += 1;
                assert!(steps < 10_000, "protocol failed to converge");
                if offered < total {
                    wire.extend(sender.send(event(offered), now));
                    offered += 1;
                }
                rng.shuffle(&mut wire);
                // Deliver some frames, drop ~30%.
                let mut kept = Vec::new();
                for frame in wire.drain(..) {
                    if rng.chance(0.3) {
                        continue; // lost
                    }
                    if rng.chance(0.3) {
                        kept.push(frame); // delayed to a later step
                        continue;
                    }
                    let (events, ack) = receiver.on_frame(frame);
                    delivered.extend(events.iter().map(|e| e.seq));
                    acks.push(ack);
                }
                wire = kept;
                for ack in acks.drain(..) {
                    if rng.chance(0.8) {
                        wire.extend(
                            sender
                                .on_ack(ack, now)
                                .into_iter()
                                .collect::<Vec<_>>(),
                        );
                    } // else the ack itself is lost
                }
                now += SimDuration::from_millis(40);
                wire.extend(sender.on_tick(now));
            }
            assert_eq!(delivered, (0..total).collect::<Vec<_>>());
        }
    }

    #[test]
    fn frame_encode_decode_round_trips() {
        let frame = ReliableFrame {
            seq: 0xDEAD_BEEF_0000_0042,
            event: event(9),
        };
        let wire = frame.encode();
        let back = ReliableFrame::decode(&wire).unwrap();
        assert_eq!(back.seq, frame.seq);
        assert_eq!(*back.event, *frame.event);
        // The decoded payload borrows the encoded frame's storage.
        assert_eq!(back.event.payload.as_ptr(), wire[8 + 32 + 3..].as_ptr());
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let wire = ReliableFrame { seq: 3, event: event(1) }.encode();
        for len in 0..wire.len() {
            assert!(
                ReliableFrame::decode(&wire.slice(..len)).is_err(),
                "truncation to {len} bytes must not decode"
            );
        }
    }
}
