//! In-process threaded broker runtime.
//!
//! [`ThreadedBroker`] runs one [`BrokerNode`] on its own OS thread,
//! exchanging commands and deliveries over crossbeam channels. It gives
//! the examples and concurrency tests a *real* concurrent pub/sub bus
//! with the same semantics the simulator driver exercises, without any
//! virtual-time machinery.
//!
//! # Examples
//!
//! ```
//! use mmcs_broker::threaded::ThreadedBroker;
//! use mmcs_broker::topic::{Topic, TopicFilter};
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let broker = ThreadedBroker::spawn();
//! let publisher = broker.attach();
//! let subscriber = broker.attach();
//! subscriber.subscribe(TopicFilter::parse("news/#")?);
//!
//! publisher.publish(Topic::parse("news/tech")?, Bytes::from_static(b"hello"));
//! let event = subscriber.recv_timeout(Duration::from_secs(1)).unwrap();
//! assert_eq!(&event.payload[..], b"hello");
//! broker.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use mmcs_util::id::{BrokerId, ClientId};
use parking_lot::Mutex;

use crate::event::{Event, EventClass};
use crate::metrics::BrokerMetrics;
use crate::node::{Action, BrokerNode, Input, Origin};
use crate::profile::TransportProfile;
use crate::topic::{Topic, TopicFilter};

enum Command {
    Attach {
        client: ClientId,
        profile: TransportProfile,
        delivery: Sender<Arc<Event>>,
    },
    Detach(ClientId),
    Subscribe(ClientId, TopicFilter),
    Unsubscribe(ClientId, TopicFilter),
    Publish(ClientId, Arc<Event>),
    Shutdown,
}

/// A broker running on its own thread.
pub struct ThreadedBroker {
    commands: Sender<Command>,
    next_client: Arc<Mutex<u64>>,
    handle: Option<JoinHandle<()>>,
    metrics: Option<Arc<BrokerMetrics>>,
}

impl ThreadedBroker {
    /// Spawns the broker thread.
    pub fn spawn() -> Self {
        Self::spawn_inner(None)
    }

    /// Spawns the broker thread with telemetry installed: the node
    /// reports the hot-path instruments and the driver keeps
    /// `queue_depth` equal to the number of commands accepted but not
    /// yet processed by the broker loop.
    pub fn spawn_with_metrics(metrics: Arc<BrokerMetrics>) -> Self {
        Self::spawn_inner(Some(metrics))
    }

    fn spawn_inner(metrics: Option<Arc<BrokerMetrics>>) -> Self {
        let (tx, rx) = unbounded::<Command>();
        let loop_metrics = metrics.clone();
        let handle = std::thread::Builder::new()
            .name("mmcs-broker".to_owned())
            .spawn(move || broker_loop(rx, loop_metrics))
            .expect("spawn broker thread");
        Self {
            commands: tx,
            next_client: Arc::new(Mutex::new(1)),
            handle: Some(handle),
            metrics,
        }
    }

    /// Sends a command, bumping the queue-depth gauge first so the
    /// loop's decrement can never race it below zero.
    fn send(&self, command: Command) {
        if let Some(m) = &self.metrics {
            m.queue_depth.add(1);
        }
        if self.commands.send(command).is_err() {
            // Broker already shut down: the command will never be
            // processed, so take the depth bump back.
            if let Some(m) = &self.metrics {
                m.queue_depth.sub(1);
            }
        }
    }

    /// Attaches a client with the default (TCP) profile.
    pub fn attach(&self) -> ThreadedClient {
        self.attach_with(TransportProfile::default())
    }

    /// Attaches a client with an explicit transport profile.
    pub fn attach_with(&self, profile: TransportProfile) -> ThreadedClient {
        let client = {
            let mut next = self.next_client.lock();
            let id = ClientId::from_raw(*next);
            *next += 1;
            id
        };
        let (tx, rx) = unbounded();
        self.send(Command::Attach {
            client,
            profile,
            delivery: tx,
        });
        ThreadedClient {
            id: client,
            commands: self.commands.clone(),
            deliveries: rx,
            seq: Mutex::new(0),
            metrics: self.metrics.clone(),
        }
    }

    /// Stops the broker thread (idempotent). Clients created from this
    /// broker stop receiving deliveries.
    pub fn shutdown(&self) {
        self.send(Command::Shutdown);
    }
}

impl Drop for ThreadedBroker {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadedBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedBroker").finish_non_exhaustive()
    }
}

/// A client handle bound to a [`ThreadedBroker`].
pub struct ThreadedClient {
    id: ClientId,
    commands: Sender<Command>,
    deliveries: Receiver<Arc<Event>>,
    seq: Mutex<u64>,
    metrics: Option<Arc<BrokerMetrics>>,
}

impl ThreadedClient {
    /// Sends a command, mirroring [`ThreadedBroker::send`]'s
    /// queue-depth bookkeeping.
    fn send(&self, command: Command) {
        if let Some(m) = &self.metrics {
            m.queue_depth.add(1);
        }
        if self.commands.send(command).is_err() {
            if let Some(m) = &self.metrics {
                m.queue_depth.sub(1);
            }
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Subscribes to a filter.
    pub fn subscribe(&self, filter: TopicFilter) {
        self.send(Command::Subscribe(self.id, filter));
    }

    /// Removes one subscription.
    pub fn unsubscribe(&self, filter: TopicFilter) {
        self.send(Command::Unsubscribe(self.id, filter));
    }

    /// Publishes a data event.
    pub fn publish(&self, topic: Topic, payload: bytes::Bytes) {
        self.publish_class(topic, EventClass::Data, payload);
    }

    /// Publishes an event with an explicit class.
    pub fn publish_class(&self, topic: Topic, class: EventClass, payload: bytes::Bytes) {
        let seq = {
            let mut guard = self.seq.lock();
            let s = *guard;
            *guard += 1;
            s
        };
        let event = Event::new(topic, self.id, seq, class, payload).into_shared();
        self.send(Command::Publish(self.id, event));
    }

    /// Receives the next delivered event, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Arc<Event>> {
        self.deliveries.recv_timeout(timeout).ok()
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Option<Arc<Event>> {
        self.deliveries.try_recv().ok()
    }
}

impl Drop for ThreadedClient {
    fn drop(&mut self) {
        self.send(Command::Detach(self.id));
    }
}

impl std::fmt::Debug for ThreadedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedClient").field("id", &self.id).finish()
    }
}

fn broker_loop(rx: Receiver<Command>, metrics: Option<Arc<BrokerMetrics>>) {
    let mut node = BrokerNode::new(BrokerId::from_raw(1));
    if let Some(m) = &metrics {
        node.set_metrics(Arc::clone(m));
    }
    let mut delivery_channels: std::collections::HashMap<ClientId, Sender<Arc<Event>>> =
        std::collections::HashMap::new();
    // One action buffer for the whole loop: steady-state publishes reuse
    // its capacity instead of allocating per command.
    let mut actions: Vec<Action> = Vec::new();
    while let Ok(command) = rx.recv() {
        if let Some(m) = &metrics {
            m.queue_depth.sub(1);
        }
        let result = match command {
            Command::Attach {
                client,
                profile,
                delivery,
            } => {
                delivery_channels.insert(client, delivery);
                node.handle_into(Input::AttachClient { client, profile }, &mut actions)
            }
            Command::Detach(client) => {
                delivery_channels.remove(&client);
                node.handle_into(Input::DetachClient { client }, &mut actions)
            }
            Command::Subscribe(client, filter) => {
                node.handle_into(Input::Subscribe { client, filter }, &mut actions)
            }
            Command::Unsubscribe(client, filter) => {
                node.handle_into(Input::Unsubscribe { client, filter }, &mut actions)
            }
            Command::Publish(client, event) => node.handle_into(
                Input::Publish {
                    origin: Origin::Client(client),
                    event,
                },
                &mut actions,
            ),
            Command::Shutdown => break,
        };
        if result.is_err() {
            // A racing detach can invalidate a queued command; skip it.
            continue;
        }
        for action in actions.drain(..) {
            if let Action::Deliver { client, event, .. } = action {
                if let Some(channel) = delivery_channels.get(&client) {
                    let _ = channel.send(event);
                }
            }
            // Forward/Advertise cannot occur: a threaded broker has no
            // peer links.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn topic(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    fn filter(s: &str) -> TopicFilter {
        TopicFilter::parse(s).unwrap()
    }

    #[test]
    fn pub_sub_across_threads() {
        let broker = ThreadedBroker::spawn();
        let publisher = broker.attach();
        let subscriber = broker.attach();
        subscriber.subscribe(filter("a/#"));
        // Subscribe and publish race through the same command queue, so
        // ordering is guaranteed by channel FIFO.
        publisher.publish(topic("a/b"), Bytes::from_static(b"1"));
        let event = subscriber.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(&event.payload[..], b"1");
        assert_eq!(event.source, publisher.id());
    }

    #[test]
    fn concurrent_publishers_all_deliver() {
        let broker = ThreadedBroker::spawn();
        let subscriber = broker.attach();
        subscriber.subscribe(filter("load/#"));
        let mut handles = Vec::new();
        let broker = std::sync::Arc::new(broker);
        for t in 0..4 {
            let broker = std::sync::Arc::clone(&broker);
            handles.push(std::thread::spawn(move || {
                let publisher = broker.attach();
                for i in 0..50 {
                    publisher.publish(
                        topic(&format!("load/{t}")),
                        Bytes::from(format!("{t}-{i}").into_bytes()),
                    );
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let mut received = 0;
        while subscriber.recv_timeout(Duration::from_millis(500)).is_some() {
            received += 1;
            if received == 200 {
                break;
            }
        }
        assert_eq!(received, 200);
    }

    #[test]
    fn metrics_report_publishes_and_queue_drains() {
        let metrics = BrokerMetrics::detached();
        let broker = ThreadedBroker::spawn_with_metrics(Arc::clone(&metrics));
        let publisher = broker.attach();
        let subscriber = broker.attach();
        subscriber.subscribe(filter("m/#"));
        for _ in 0..10 {
            publisher.publish(topic("m/x"), Bytes::new());
        }
        for _ in 0..10 {
            assert!(subscriber.recv_timeout(Duration::from_secs(2)).is_some());
        }
        assert_eq!(metrics.events_in.get(), 10);
        assert_eq!(metrics.deliveries.get(), 10);
        assert_eq!(metrics.fanout.count(), 10);
        // Every delivery arrived, so every accepted command has been
        // processed: the queue gauge must read empty again.
        assert_eq!(metrics.queue_depth.get(), 0);
    }

    #[test]
    fn unsubscribe_stops_flow() {
        let broker = ThreadedBroker::spawn();
        let publisher = broker.attach();
        let subscriber = broker.attach();
        subscriber.subscribe(filter("x"));
        publisher.publish(topic("x"), Bytes::new());
        assert!(subscriber.recv_timeout(Duration::from_secs(2)).is_some());
        subscriber.unsubscribe(filter("x"));
        publisher.publish(topic("x"), Bytes::new());
        assert!(subscriber.recv_timeout(Duration::from_millis(200)).is_none());
    }

    #[test]
    fn dropping_client_detaches_it() {
        let broker = ThreadedBroker::spawn();
        let publisher = broker.attach();
        {
            let subscriber = broker.attach();
            subscriber.subscribe(filter("y"));
        } // dropped -> detach
        publisher.publish(topic("y"), Bytes::new());
        // Nothing panics inside the broker loop; a fresh subscriber works.
        let fresh = broker.attach();
        fresh.subscribe(filter("y"));
        publisher.publish(topic("y"), Bytes::new());
        assert!(fresh.recv_timeout(Duration::from_secs(2)).is_some());
    }

    #[test]
    fn shutdown_is_idempotent_and_stops_delivery() {
        let broker = ThreadedBroker::spawn();
        let subscriber = broker.attach();
        subscriber.subscribe(filter("z"));
        broker.shutdown();
        broker.shutdown();
        let publisher = broker.attach(); // commands now go nowhere
        publisher.publish(topic("z"), Bytes::new());
        assert!(subscriber.recv_timeout(Duration::from_millis(200)).is_none());
    }
}
