//! Broker liveness detection.
//!
//! NaradaBrokering runs "a dynamic collection of brokers": links come
//! and go, and a broker must notice a dead peer to withdraw its
//! interest (the node's `LinkDown` input) rather than blackhole events
//! forever. [`FailureDetector`] is the timeout-based heartbeat monitor
//! that drives those `LinkDown`s — sans-IO, polled with `now`.

use std::collections::HashMap;

use mmcs_util::id::BrokerId;
use mmcs_util::time::{SimDuration, SimTime};

/// A peer's liveness verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Heartbeats are current.
    Alive,
    /// Heartbeats stopped; the peer should be disconnected.
    Suspect,
}

/// Timeout-based heartbeat failure detector for broker links.
#[derive(Debug)]
pub struct FailureDetector {
    timeout: SimDuration,
    heartbeat_every: SimDuration,
    peers: HashMap<BrokerId, SimTime>,
    last_sent: Option<SimTime>,
}

impl FailureDetector {
    /// Creates a detector: send heartbeats every `heartbeat_every`,
    /// suspect a peer silent for `timeout`.
    ///
    /// # Panics
    ///
    /// Panics unless `timeout > heartbeat_every` (otherwise every peer
    /// flaps between beats).
    pub fn new(heartbeat_every: SimDuration, timeout: SimDuration) -> Self {
        assert!(
            timeout > heartbeat_every,
            "timeout must exceed the heartbeat interval"
        );
        Self {
            timeout,
            heartbeat_every,
            peers: HashMap::new(),
            last_sent: None,
        }
    }

    /// Starts watching a peer (treats `now` as its first heartbeat).
    pub fn watch(&mut self, peer: BrokerId, now: SimTime) {
        self.peers.insert(peer, now);
    }

    /// Stops watching a peer.
    pub fn unwatch(&mut self, peer: BrokerId) {
        self.peers.remove(&peer);
    }

    /// Records a heartbeat (or any traffic) from a peer.
    pub fn on_heartbeat(&mut self, peer: BrokerId, now: SimTime) {
        if let Some(last) = self.peers.get_mut(&peer) {
            *last = now;
        }
    }

    /// Whether we owe the network a heartbeat broadcast at `now`; call
    /// when a local timer fires and send to every peer if `true`.
    pub fn should_send_heartbeat(&mut self, now: SimTime) -> bool {
        match self.last_sent {
            Some(last) if now.saturating_duration_since(last) < self.heartbeat_every => false,
            _ => {
                self.last_sent = Some(now);
                true
            }
        }
    }

    /// A peer's current verdict (`None` if unwatched).
    pub fn liveness(&self, peer: BrokerId, now: SimTime) -> Option<Liveness> {
        self.peers.get(&peer).map(|last| {
            if now.saturating_duration_since(*last) >= self.timeout {
                Liveness::Suspect
            } else {
                Liveness::Alive
            }
        })
    }

    /// Peers newly suspect at `now`; each is unwatched as it is
    /// reported, so the caller issues exactly one `LinkDown` per death.
    pub fn take_suspects(&mut self, now: SimTime) -> Vec<BrokerId> {
        let timeout = self.timeout;
        let mut suspects: Vec<BrokerId> = self
            .peers
            .iter()
            .filter(|(_, last)| now.saturating_duration_since(**last) >= timeout)
            .map(|(peer, _)| *peer)
            .collect();
        suspects.sort_unstable();
        for peer in &suspects {
            self.peers.remove(peer);
        }
        suspects
    }

    /// Watched peer count.
    pub fn watched(&self) -> usize {
        self.peers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> FailureDetector {
        FailureDetector::new(SimDuration::from_millis(500), SimDuration::from_millis(1600))
    }

    fn peer(n: u64) -> BrokerId {
        BrokerId::from_raw(n)
    }

    #[test]
    fn healthy_peer_stays_alive() {
        let mut fd = detector();
        fd.watch(peer(1), SimTime::ZERO);
        for ms in (500..10_000).step_by(500) {
            fd.on_heartbeat(peer(1), SimTime::from_millis(ms));
        }
        assert_eq!(
            fd.liveness(peer(1), SimTime::from_millis(10_000)),
            Some(Liveness::Alive)
        );
        assert!(fd.take_suspects(SimTime::from_millis(10_000)).is_empty());
    }

    #[test]
    fn silent_peer_becomes_suspect_once() {
        let mut fd = detector();
        fd.watch(peer(1), SimTime::ZERO);
        fd.watch(peer(2), SimTime::ZERO);
        fd.on_heartbeat(peer(2), SimTime::from_millis(1500));
        let suspects = fd.take_suspects(SimTime::from_millis(1600));
        assert_eq!(suspects, vec![peer(1)]);
        // Reported exactly once.
        assert!(fd.take_suspects(SimTime::from_millis(2000)).is_empty());
        assert_eq!(fd.watched(), 1);
        assert_eq!(fd.liveness(peer(1), SimTime::from_millis(2000)), None);
    }

    #[test]
    fn heartbeat_pacing() {
        let mut fd = detector();
        assert!(fd.should_send_heartbeat(SimTime::ZERO));
        assert!(!fd.should_send_heartbeat(SimTime::from_millis(100)));
        assert!(fd.should_send_heartbeat(SimTime::from_millis(500)));
        assert!(!fd.should_send_heartbeat(SimTime::from_millis(999)));
        assert!(fd.should_send_heartbeat(SimTime::from_millis(1000)));
    }

    #[test]
    fn any_traffic_counts_as_heartbeat() {
        let mut fd = detector();
        fd.watch(peer(1), SimTime::ZERO);
        // Data keeps arriving just inside the timeout.
        for ms in [1500u64, 3000, 4500] {
            fd.on_heartbeat(peer(1), SimTime::from_millis(ms));
            assert_eq!(
                fd.liveness(peer(1), SimTime::from_millis(ms + 100)),
                Some(Liveness::Alive)
            );
        }
    }

    #[test]
    fn unwatch_forgets() {
        let mut fd = detector();
        fd.watch(peer(1), SimTime::ZERO);
        fd.unwatch(peer(1));
        assert!(fd.take_suspects(SimTime::from_secs(60)).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn degenerate_configuration_panics() {
        let _ = FailureDetector::new(SimDuration::from_secs(2), SimDuration::from_secs(1));
    }

    /// A peer that dies, is reported, and later rejoins (re-`watch`) must
    /// be reported again on its second death — `take_suspects` unwatching
    /// does not blacklist the peer forever.
    #[test]
    fn rewatched_peer_is_reported_on_second_death() {
        let mut fd = detector();
        fd.watch(peer(1), SimTime::ZERO);
        assert_eq!(fd.take_suspects(SimTime::from_millis(1600)), vec![peer(1)]);
        // Peer restarts and is watched again at t = 5 s.
        fd.watch(peer(1), SimTime::from_secs(5));
        assert_eq!(
            fd.liveness(peer(1), SimTime::from_millis(5100)),
            Some(Liveness::Alive)
        );
        // It goes silent again: second death, second (single) report.
        assert_eq!(fd.take_suspects(SimTime::from_millis(6600)), vec![peer(1)]);
        assert!(fd.take_suspects(SimTime::from_millis(7000)).is_empty());
    }

    /// Heartbeats from a peer nobody watches must not implicitly start
    /// watching it (that is `watch`'s job, taken on `LinkUp`).
    #[test]
    fn heartbeat_from_unwatched_peer_is_a_no_op() {
        let mut fd = detector();
        fd.on_heartbeat(peer(9), SimTime::from_millis(100));
        assert_eq!(fd.watched(), 0);
        assert_eq!(fd.liveness(peer(9), SimTime::from_millis(200)), None);
        assert!(fd.take_suspects(SimTime::from_secs(60)).is_empty());
    }

    /// `should_send_heartbeat` under irregular `now` values: a late poll
    /// sends immediately, pacing is measured from the actual send time
    /// (not an idealized grid), and a clock that reads the same instant
    /// twice sends only once.
    #[test]
    fn heartbeat_pacing_under_irregular_polls() {
        let mut fd = detector(); // every 500 ms
        assert!(fd.should_send_heartbeat(SimTime::from_millis(7)));
        // Same instant polled twice: one send.
        assert!(!fd.should_send_heartbeat(SimTime::from_millis(7)));
        // A long stall: the next poll sends immediately…
        assert!(fd.should_send_heartbeat(SimTime::from_millis(2300)));
        // …and the interval restarts from 2300, not from a multiple of 500.
        assert!(!fd.should_send_heartbeat(SimTime::from_millis(2500)));
        assert!(!fd.should_send_heartbeat(SimTime::from_millis(2799)));
        assert!(fd.should_send_heartbeat(SimTime::from_millis(2800)));
        // A poll that jumps backwards (e.g. replayed event) must not send:
        // saturating arithmetic reads it as zero elapsed.
        assert!(!fd.should_send_heartbeat(SimTime::from_millis(2600)));
    }
}
