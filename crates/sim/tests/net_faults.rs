//! Property tests for the network fault paths in `net.rs`/`engine.rs`:
//! jitter bounds, duplication ordering, and hard partitions.
//!
//! Each property drives a two-host simulation — one paced sender, one
//! recording receiver — under a randomized [`LinkConfig`] and checks
//! the delivery schedule the engine actually produced.

use proptest::prelude::*;

use mmcs_sim::net::NicConfig;
use mmcs_sim::{Context, LinkConfig, Packet, Process, ProcessId, Simulation};
use mmcs_util::time::{SimDuration, SimTime};

/// Paced sender: one `wire_bytes`-sized packet per tick, payload = the
/// packet's sequence number.
struct Pacer {
    dst: ProcessId,
    interval: SimDuration,
    remaining: u64,
    seq: u64,
    wire_bytes: usize,
}

impl Process for Pacer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.interval, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        ctx.send(self.dst, self.seq, self.wire_bytes);
        self.seq += 1;
        ctx.set_timer(self.interval, 0);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}
}

/// Burst sender: all packets handed to the NIC in one handler, so the
/// base (latency-only) delivery order is exactly the send order.
struct Burst {
    dst: ProcessId,
    count: u64,
    wire_bytes: usize,
}

impl Process for Burst {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for seq in 0..self.count {
            ctx.send(self.dst, seq, self.wire_bytes);
        }
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}
}

/// Records every arrival as `(seq, sent_at, arrived_at)`.
#[derive(Default)]
struct Recorder {
    arrivals: Vec<(u64, SimTime, SimTime)>,
}

impl Process for Recorder {
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let seq = *packet.payload::<u64>().expect("u64 payload");
        self.arrivals.push((seq, packet.sent_at, ctx.now()));
    }
}

fn two_host_sim(seed: u64, link: LinkConfig) -> (Simulation, mmcs_sim::net::HostId, mmcs_sim::net::HostId) {
    let mut sim = Simulation::new(seed);
    let a = sim.add_host("sender", NicConfig::default());
    let b = sim.add_host("receiver", NicConfig::default());
    sim.set_link(a, b, link);
    (sim, a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Jitter adds at most `jitter` delay: every delivery arrives in
    /// `[sent + tx + latency, sent + tx + latency + jitter]`, where tx
    /// is the NIC serialization time of one packet (sends are paced
    /// far apart, so packets never queue behind each other).
    #[test]
    fn jitter_stays_within_bound(
        seed in 0u64..10_000,
        latency_us in 50u64..5_000,
        jitter_us in 0u64..20_000,
        packets in 1u64..40,
    ) {
        let latency = SimDuration::from_micros(latency_us);
        let jitter = SimDuration::from_micros(jitter_us);
        let link = LinkConfig { latency, jitter, ..LinkConfig::default() };
        let (mut sim, sender, receiver) = two_host_sim(seed, link);
        let wire_bytes = 200usize;
        // 1 Gbps NIC: 8 ns per byte.
        let tx = SimDuration::from_nanos(8 * wire_bytes as u64);
        let recorder = {
            let recorder = sim.add_typed_process(receiver, Recorder::default());
            sim.add_typed_process(
                sender,
                Pacer {
                    dst: recorder,
                    // Paced far beyond jitter so copies cannot queue.
                    interval: SimDuration::from_micros(25_000),
                    remaining: packets,
                    seq: 0,
                    wire_bytes,
                },
            );
            recorder
        };
        sim.run_parallel(2);
        let arrivals = &sim.process_ref::<Recorder>(recorder).expect("recorder").arrivals;
        prop_assert_eq!(arrivals.len() as u64, packets, "lossless link delivers all");
        for (seq, sent_at, arrived_at) in arrivals {
            let delay = *arrived_at - *sent_at;
            prop_assert!(
                delay >= latency + tx,
                "packet {} arrived after {:?}, below latency+tx {:?}",
                seq, delay, latency + tx
            );
            prop_assert!(
                delay <= latency + tx + jitter,
                "packet {} arrived after {:?}, above latency+tx+jitter {:?}",
                seq, delay, latency + tx + jitter
            );
        }
    }

    /// `duplicate = 1.0` with zero jitter delivers every packet exactly
    /// twice and never reorders the FIFO base-latency order: arrivals
    /// are 0,0,1,1,2,2,… even for a single back-to-back burst.
    #[test]
    fn duplicates_preserve_fifo_order(
        seed in 0u64..10_000,
        latency_us in 50u64..5_000,
        packets in 1u64..60,
    ) {
        let link = LinkConfig {
            latency: SimDuration::from_micros(latency_us),
            duplicate: 1.0,
            ..LinkConfig::default()
        };
        let (mut sim, sender, receiver) = two_host_sim(seed, link);
        let recorder = {
            let recorder = sim.add_typed_process(receiver, Recorder::default());
            sim.add_typed_process(
                sender,
                Burst {
                    dst: recorder,
                    count: packets,
                    wire_bytes: 300,
                },
            );
            recorder
        };
        sim.run_parallel(2);
        let arrivals = &sim.process_ref::<Recorder>(recorder).expect("recorder").arrivals;
        prop_assert_eq!(
            arrivals.len() as u64,
            packets * 2,
            "every packet is delivered exactly twice"
        );
        prop_assert_eq!(sim.counter("net.duplicated"), packets);
        let seqs: Vec<u64> = arrivals.iter().map(|(seq, ..)| *seq).collect();
        let expected: Vec<u64> = (0..packets).flat_map(|seq| [seq, seq]).collect();
        prop_assert_eq!(seqs, expected, "duplicates must not reorder FIFO delivery");
        // Arrival times never go backwards (FIFO in time, not just seq).
        for pair in arrivals.windows(2) {
            prop_assert!(pair[0].2 <= pair[1].2);
        }
    }

    /// A `down` link delivers nothing and accounts every packet as
    /// `net.dropped.linkdown`.
    #[test]
    fn down_links_deliver_nothing(
        seed in 0u64..10_000,
        packets in 1u64..50,
    ) {
        let link = LinkConfig { down: true, ..LinkConfig::default() };
        let (mut sim, sender, receiver) = two_host_sim(seed, link);
        let recorder = {
            let recorder = sim.add_typed_process(receiver, Recorder::default());
            sim.add_typed_process(
                sender,
                Pacer {
                    dst: recorder,
                    interval: SimDuration::from_micros(500),
                    remaining: packets,
                    seq: 0,
                    wire_bytes: 100,
                },
            );
            recorder
        };
        sim.run_until(SimTime::from_secs(2));
        let arrivals = &sim.process_ref::<Recorder>(recorder).expect("recorder").arrivals;
        prop_assert!(arrivals.is_empty(), "a hard partition must stay dark");
        prop_assert_eq!(sim.counter("net.dropped.linkdown"), packets);
        prop_assert_eq!(sim.counter("net.delivered"), 0);
    }
}
