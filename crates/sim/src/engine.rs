//! The discrete-event engine: event queue, CPU gating, NIC serialization.
//!
//! Events are totally ordered by a deterministic `(time, origin, seq)`
//! key ([`EventKey`]): `origin` names the host whose execution produced
//! the event (0 for control pushes — process registration and restarts —
//! which happen identically in every run), and `seq` is that origin's
//! private push counter. A host's pushes happen only while its own
//! events execute, and a host's events execute in the same relative
//! order under the sequential engine and under every worker layout of
//! the parallel engine ([`crate::parsim`]) — so the keys, and therefore
//! the entire run, are bit-identical at any worker count.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::mpsc::Sender;
use std::sync::Arc;

use mmcs_util::rng::DetRng;
use mmcs_util::stats::OnlineStats;
use mmcs_util::time::{SimDuration, SimTime};

use crate::net::{HostId, LinkConfig, NetworkState, NicConfig};
use crate::parsim::ParsimStats;
use crate::process::{Context, Packet, Process, ProcessId};

/// A packet send requested during a callback, not yet routed.
pub(crate) struct PendingSend {
    pub src: ProcessId,
    pub dst: ProcessId,
    pub wire_bytes: usize,
    pub at: SimTime,
    pub payload: Arc<dyn Any + Send + Sync>,
}

/// An event body; deferred ones sit in a host's pending queue while its
/// CPU is busy.
#[derive(Debug)]
pub(crate) enum EventKind {
    Start(ProcessId),
    Deliver(Packet),
    /// A timer stamped with the incarnation of the process that armed
    /// it: timers armed before a crash never fire after the restart.
    Timer(ProcessId, u64, u64),
    /// Re-initialize a process after [`Simulation::restart_process`].
    Restart(ProcessId),
    /// Pop and run the next pending event on a host.
    Drain(HostId),
}

/// Alias used by the network module for the per-host pending queue.
pub(crate) type DeferredEvent = EventKind;

/// The deterministic total-order key for events.
///
/// `origin` is 0 for control pushes (start-of-simulation and restarts,
/// which are issued by the harness in a fixed order) and `host id + 1`
/// for events produced while that host executed. `seq` is the origin's
/// private push counter. Two events never share a key, and the key a
/// given event receives does not depend on how hosts are partitioned
/// across workers — the backbone of parallel determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EventKey {
    pub at: SimTime,
    pub origin: u64,
    pub seq: u64,
}

pub(crate) struct Event {
    pub key: EventKey,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest key pops first.
        other.key.cmp(&self.key)
    }
}

/// Outbound routes to the other workers of a parallel run (see
/// [`crate::parsim`]). `None` in sequential runs.
pub(crate) struct CrossLinks {
    /// This worker's index.
    pub me: usize,
    /// Host index -> owning worker index.
    pub owner: Arc<Vec<usize>>,
    /// One inbox sender per worker, indexed by worker.
    pub txs: Vec<Sender<Event>>,
}

/// Execution-trace record tags. Each trace record is
/// [`TRACE_WORDS`] consecutive `u64`s:
/// `(time ns, process id, tag, a, b, c)`.
pub(crate) const TRACE_START: u64 = 0;
pub(crate) const TRACE_TIMER: u64 = 1;
pub(crate) const TRACE_RESTART: u64 = 2;
pub(crate) const TRACE_DELIVER: u64 = 3;
/// Words per trace record.
pub const TRACE_WORDS: usize = 6;

/// Engine state shared with [`Context`]: network, clock, metrics.
pub struct EngineCore {
    pub(crate) net: NetworkState,
    pub(crate) now: SimTime,
    /// Master seed; per-host RNG streams derive from it.
    pub(crate) master_seed: u64,
    /// Push counter for control-origin events (origin 0).
    pub(crate) control_seq: u64,
    pub(crate) queue: BinaryHeap<Event>,
    pub(crate) counters: HashMap<String, u64>,
    pub(crate) observations: HashMap<String, OnlineStats>,
    pub(crate) proc_hosts: Vec<HostId>,
    /// Whether each process is currently crashed (deliveries dropped).
    pub(crate) proc_crashed: Vec<bool>,
    /// Bumped on every crash; timers armed under an older incarnation
    /// are discarded when they fire.
    pub(crate) proc_incarnation: Vec<u64>,
    pub(crate) stop_requested: bool,
    /// Whether dispatches append to the per-host execution traces.
    pub(crate) trace_on: bool,
    /// Worker-mode routing table; `None` outside parallel runs.
    pub(crate) cross: Option<CrossLinks>,
}

impl EngineCore {
    /// Pushes a control-origin event (registration order / restarts).
    pub(crate) fn push_control(&mut self, at: SimTime, kind: EventKind) {
        self.control_seq += 1;
        let key = EventKey {
            at,
            origin: 0,
            seq: self.control_seq,
        };
        self.queue.push(Event { key, kind });
    }

    /// Mints the next key for an event produced by `origin`'s execution.
    fn key_from(&mut self, origin: HostId, at: SimTime) -> EventKey {
        let host = self.net.host_mut(origin);
        host.push_seq += 1;
        EventKey {
            at,
            origin: origin.0 + 1,
            seq: host.push_seq,
        }
    }

    /// Pushes an event attributed to `origin` into the local queue.
    pub(crate) fn push_from(&mut self, origin: HostId, at: SimTime, kind: EventKind) {
        let key = self.key_from(origin, at);
        self.queue.push(Event { key, kind });
    }

    /// Pushes a delivery, routing it to the destination host's owning
    /// worker in a parallel run. The key is minted from the sender either
    /// way, so the sender's push counter advances identically under the
    /// sequential and parallel engines.
    fn push_deliver(&mut self, origin: HostId, dst_host: HostId, at: SimTime, packet: Packet) {
        let key = self.key_from(origin, at);
        let event = Event {
            key,
            kind: EventKind::Deliver(packet),
        };
        if let Some(cross) = &self.cross {
            let target = cross
                .owner
                .get(dst_host.0 as usize)
                .copied()
                .unwrap_or(cross.me);
            if target != cross.me {
                if let Some(tx) = cross.txs.get(target) {
                    // A send failure means the run is tearing down; the
                    // event dies with it.
                    let _ = tx.send(event);
                }
                return;
            }
        }
        self.queue.push(event);
    }

    pub(crate) fn schedule_timer(
        &mut self,
        process: ProcessId,
        origin: HostId,
        at: SimTime,
        token: u64,
    ) {
        let incarnation = self
            .proc_incarnation
            .get(process.0.saturating_sub(1) as usize)
            .copied()
            .unwrap_or(0);
        self.push_from(origin, at, EventKind::Timer(process, token, incarnation));
    }

    pub(crate) fn host_of(&self, process: ProcessId) -> Option<HostId> {
        let idx = process.0.checked_sub(1)? as usize;
        self.proc_hosts.get(idx).copied()
    }

    /// The host an event will execute on (where its key sorts it).
    pub(crate) fn target_host(&self, kind: &EventKind) -> Option<HostId> {
        match kind {
            EventKind::Start(p) | EventKind::Timer(p, _, _) | EventKind::Restart(p) => {
                self.host_of(*p)
            }
            EventKind::Deliver(packet) => self.host_of(packet.dst),
            EventKind::Drain(host) => Some(*host),
        }
    }

    /// The named host's private deterministic RNG stream.
    pub(crate) fn host_rng(&mut self, host: HostId) -> &mut DetRng {
        &mut self.net.host_mut(host).rng
    }

    pub(crate) fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    pub(crate) fn observe(&mut self, name: &str, value: f64) {
        self.observations
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    pub(crate) fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// Routes one send through loopback or the NIC + link model.
    ///
    /// All probabilistic draws (loss, duplication, jitter) come from the
    /// *sending* host's private RNG stream, so they depend only on that
    /// host's own execution order.
    fn route(&mut self, send: PendingSend) {
        let Some(src_host) = self.host_of(send.src) else {
            self.count("net.dropped.noroute", 1);
            return;
        };
        let Some(dst_host) = self.host_of(send.dst) else {
            self.count("net.dropped.noroute", 1);
            return;
        };

        let packet = Packet::new(send.src, send.dst, send.wire_bytes, send.at, send.payload);

        if src_host == dst_host {
            let latency = self.net.host(src_host).nic.loopback_latency;
            let at = send.at.saturating_add(latency);
            self.push_deliver(src_host, dst_host, at, packet);
            return;
        }

        // Egress NIC: serialization behind the current backlog, drop-tail
        // when the backlog exceeds the queue limit.
        let nic: NicConfig = self.net.host(src_host).nic;
        let nic_free_at = self.net.host(src_host).nic_free_at;
        let backlog = nic
            .bandwidth
            .bytes_in(nic_free_at.saturating_duration_since(send.at));
        if backlog + send.wire_bytes as u64 > nic.queue_bytes {
            self.count("net.dropped.queue", 1);
            return;
        }
        let start = if nic_free_at > send.at {
            nic_free_at
        } else {
            send.at
        };
        let tx_done = start.saturating_add(nic.bandwidth.transmit_time(send.wire_bytes));
        self.net.host_mut(src_host).nic_free_at = tx_done;

        let link: LinkConfig = self.net.link(src_host, dst_host);
        if link.down {
            self.count("net.dropped.linkdown", 1);
            return;
        }
        if link.loss > 0.0 && self.host_rng(src_host).chance(link.loss) {
            self.count("net.dropped.loss", 1);
            return;
        }
        // Network-level duplication delivers a second, independently
        // jittered copy; the duplicate costs no extra NIC time (it is
        // created inside the network, not at the sender).
        let copies = if link.duplicate > 0.0 && self.host_rng(src_host).chance(link.duplicate) {
            self.count("net.duplicated", 1);
            2
        } else {
            1
        };
        for _ in 0..copies {
            let extra = if link.jitter > SimDuration::ZERO {
                let bound = link.jitter.as_nanos().saturating_add(1);
                SimDuration::from_nanos(self.host_rng(src_host).range_u64(0, bound))
            } else {
                SimDuration::ZERO
            };
            let at = tx_done.saturating_add(link.latency).saturating_add(extra);
            self.push_deliver(src_host, dst_host, at, packet.clone());
        }
    }
}

/// Trait-object adapter so process state can be inspected after a run.
///
/// `Send` is a supertrait because the parallel engine moves processes to
/// worker threads for the duration of a run.
pub(crate) trait AnyProcess: Process + Send {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Process + Send + 'static> AnyProcess for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A deterministic discrete-event simulation.
///
/// See the [crate documentation](crate) for the model and an example,
/// and [`crate::parsim`] for the multi-threaded runner
/// ([`Simulation::run_parallel_until`]) that produces bit-identical
/// results on worker threads.
pub struct Simulation {
    pub(crate) core: EngineCore,
    pub(crate) processes: Vec<Option<Box<dyn AnyProcess>>>,
    pub(crate) started: bool,
    /// Cumulative parallel-run statistics (never part of counters, so
    /// fingerprints stay engine-independent).
    pub(crate) par_stats: ParsimStats,
}

impl Simulation {
    /// Creates an empty simulation seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            core: EngineCore {
                net: NetworkState::default(),
                now: SimTime::ZERO,
                master_seed: seed,
                control_seq: 0,
                queue: BinaryHeap::new(),
                counters: HashMap::new(),
                observations: HashMap::new(),
                proc_hosts: Vec::new(),
                proc_crashed: Vec::new(),
                proc_incarnation: Vec::new(),
                stop_requested: false,
                trace_on: false,
                cross: None,
            },
            processes: Vec::new(),
            started: false,
            par_stats: ParsimStats::default(),
        }
    }

    /// Adds a host (machine) with the given NIC configuration.
    pub fn add_host(&mut self, name: &str, nic: NicConfig) -> HostId {
        let master_seed = self.core.master_seed;
        self.core.net.add_host(name, nic, master_seed)
    }

    /// Registers a process on `host`. Ids are sequential starting at 1.
    ///
    /// Processes must be `Send`: the parallel engine moves them to worker
    /// threads for the duration of a run.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started running or if `host`
    /// does not exist.
    pub fn add_process(
        &mut self,
        host: HostId,
        process: Box<dyn Process + Send + 'static>,
    ) -> ProcessId {
        assert!(
            !self.started,
            "processes must be registered before the simulation runs"
        );
        assert!(
            (host.0 as usize) < self.core.net.hosts.len(),
            "unknown host {host}"
        );
        // Re-box through a concrete wrapper is unnecessary: Box<dyn Process>
        // does not implement Process itself, so wrap it.
        struct BoxedProcess(Box<dyn Process + Send>);
        impl Process for BoxedProcess {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                self.0.on_start(ctx);
            }
            fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
                self.0.on_packet(ctx, packet);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
                self.0.on_timer(ctx, token);
            }
            fn on_restart(&mut self, ctx: &mut Context<'_>) {
                self.0.on_restart(ctx);
            }
        }
        let id = ProcessId(self.processes.len() as u64 + 1);
        self.processes.push(Some(Box::new(BoxedProcess(process))));
        self.core.proc_hosts.push(host);
        self.core.proc_crashed.push(false);
        self.core.proc_incarnation.push(0);
        id
    }

    /// Registers a concrete process so it can be inspected later with
    /// [`Simulation::process_ref`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulation::add_process`].
    pub fn add_typed_process<T: Process + Send + 'static>(
        &mut self,
        host: HostId,
        process: T,
    ) -> ProcessId {
        assert!(
            !self.started,
            "processes must be registered before the simulation runs"
        );
        assert!(
            (host.0 as usize) < self.core.net.hosts.len(),
            "unknown host {host}"
        );
        let id = ProcessId(self.processes.len() as u64 + 1);
        self.processes.push(Some(Box::new(process)));
        self.core.proc_hosts.push(host);
        self.core.proc_crashed.push(false);
        self.core.proc_incarnation.push(0);
        id
    }

    /// Sets the default one-way latency between distinct hosts.
    pub fn set_default_latency(&mut self, latency: SimDuration) {
        self.core.net.default_link.latency = latency;
    }

    /// Sets the default link configuration between distinct hosts.
    pub fn set_default_link(&mut self, link: LinkConfig) {
        self.core.net.default_link = link;
    }

    /// Overrides the link between a specific pair of hosts (symmetric).
    ///
    /// May be called mid-run (between [`Simulation::step`] /
    /// [`Simulation::run_until`] calls) — this is the fault-injection
    /// hook chaos harnesses use to partition, degrade, and heal links.
    pub fn set_link(&mut self, a: HostId, b: HostId, link: LinkConfig) {
        self.core.net.link_overrides.insert((a, b), link);
    }

    /// The effective link configuration between two hosts right now.
    pub fn link_config(&self, a: HostId, b: HostId) -> LinkConfig {
        self.core.net.link(a, b)
    }

    /// Crashes a process: until [`Simulation::restart_process`], every
    /// packet addressed to it is dropped (counted as
    /// `net.dropped.crashed`) and its armed timers are permanently
    /// invalidated (a restart begins a new incarnation). The process's
    /// in-memory state is retained; what state survives the crash is the
    /// process's own `on_restart` policy. Idempotent.
    pub fn crash_process(&mut self, process: ProcessId) {
        let Some(idx) = process.0.checked_sub(1).map(|i| i as usize) else {
            return;
        };
        if idx >= self.core.proc_crashed.len() || self.core.proc_crashed[idx] {
            return;
        }
        self.core.proc_crashed[idx] = true;
        self.core.proc_incarnation[idx] += 1;
        self.core.count("sim.crashes", 1);
    }

    /// Restarts a crashed process: deliveries resume and
    /// [`Process::on_restart`] runs (at the current virtual time) so the
    /// process can re-initialize and re-arm its timers. No-op if the
    /// process is not crashed.
    pub fn restart_process(&mut self, process: ProcessId) {
        let Some(idx) = process.0.checked_sub(1).map(|i| i as usize) else {
            return;
        };
        if idx >= self.core.proc_crashed.len() || !self.core.proc_crashed[idx] {
            return;
        }
        self.core.proc_crashed[idx] = false;
        self.core.count("sim.restarts", 1);
        let now = self.core.now;
        self.core.push_control(now, EventKind::Restart(process));
    }

    /// Whether a process is currently crashed.
    pub fn is_crashed(&self, process: ProcessId) -> bool {
        process
            .0
            .checked_sub(1)
            .and_then(|i| self.core.proc_crashed.get(i as usize).copied())
            .unwrap_or(false)
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The label a host was registered with.
    ///
    /// # Panics
    ///
    /// Panics if `host` is unknown.
    pub fn host_name(&self, host: crate::net::HostId) -> &str {
        &self.core.net.host(host).name
    }

    /// Reads a metric counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.core.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, for reporting.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.core.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Reads an observation accumulator recorded via
    /// [`Context::observe`](crate::Context::observe).
    pub fn stat(&self, name: &str) -> Option<&OnlineStats> {
        self.core.observations.get(name)
    }

    /// Enables recording a per-host execution trace: every dispatched
    /// event appends a fixed-width record ([`TRACE_WORDS`] `u64`s) to its
    /// host's trace. Traces are the strongest equivalence witness the
    /// engine offers — identical traces mean identical event sequences
    /// per host, which the parallel engine must reproduce exactly.
    pub fn set_trace_enabled(&mut self, on: bool) {
        self.core.trace_on = on;
    }

    /// Drains and returns the per-host execution traces, indexed by host.
    pub fn take_traces(&mut self) -> Vec<Vec<u64>> {
        self.core
            .net
            .hosts
            .iter_mut()
            .map(|h| std::mem::take(&mut h.trace))
            .collect()
    }

    /// FNV-1a fingerprint over every host's execution trace, in host
    /// order. Equal fingerprints (with tracing enabled for the whole
    /// run) certify byte-identical per-host event sequences.
    pub fn trace_fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |value: u64| {
            for byte in value.to_be_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (idx, host) in self.core.net.hosts.iter().enumerate() {
            eat(idx as u64);
            eat(host.trace.len() as u64);
            for &word in &host.trace {
                eat(word);
            }
        }
        hash
    }

    /// Borrows a process's state, downcast to its concrete type.
    ///
    /// Only processes registered with [`Simulation::add_typed_process`]
    /// preserve their concrete type.
    pub fn process_ref<T: 'static>(&self, id: ProcessId) -> Option<&T> {
        self.processes
            .get(id.0.checked_sub(1)? as usize)?
            .as_deref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutably borrows a process's state, downcast to its concrete type.
    pub fn process_mut<T: 'static>(&mut self, id: ProcessId) -> Option<&mut T> {
        self.processes
            .get_mut(id.0.checked_sub(1)? as usize)?
            .as_deref_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    pub(crate) fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.processes.len() {
            let pid = ProcessId(i as u64 + 1);
            self.core.push_control(SimTime::ZERO, EventKind::Start(pid));
        }
    }

    /// Executes the next event. Returns `false` when the queue is empty or
    /// a process requested a stop.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        if self.core.stop_requested {
            return false;
        }
        let Some(event) = self.core.queue.pop() else {
            return false;
        };
        debug_assert!(event.key.at >= self.core.now, "time ran backwards");
        self.core.now = event.key.at;
        let now = event.key.at;

        let kind = match event.kind {
            EventKind::Drain(host) => {
                let host_state = self.core.net.host_mut(host);
                host_state.drain_scheduled = false;
                let Some(kind) = host_state.pending.pop_front() else {
                    return true;
                };
                self.dispatch(kind, now);
                self.schedule_drain_for(host, now);
                return true;
            }
            other => other,
        };

        let pid = match &kind {
            EventKind::Start(p) => *p,
            EventKind::Timer(p, _, _) => *p,
            EventKind::Restart(p) => *p,
            EventKind::Deliver(pkt) => pkt.dst,
            EventKind::Drain(_) => {
                // Consumed by the match above; stated as an assert so
                // the dispatch path carries no reachable panic.
                debug_assert!(false, "Drain is handled before pid extraction");
                return true;
            }
        };
        let Some(host) = self.core.host_of(pid) else {
            // Destination process never existed; count and move on.
            self.core.count("net.dropped.noroute", 1);
            return true;
        };

        // CPU gating: if the host CPU is busy (or older work is already
        // queued behind it), the event joins the host's FIFO backlog.
        let host_state = self.core.net.host_mut(host);
        if host_state.cpu_free_at > now || !host_state.pending.is_empty() {
            let resume_at = if host_state.cpu_free_at > now {
                host_state.cpu_free_at
            } else {
                now
            };
            host_state.pending.push_back(kind);
            if !host_state.drain_scheduled {
                host_state.drain_scheduled = true;
                self.core.push_from(host, resume_at, EventKind::Drain(host));
            }
            return true;
        }

        self.dispatch(kind, now);
        self.schedule_drain_for(host, now);
        true
    }

    /// Runs one event body to completion at `now`.
    fn dispatch(&mut self, kind: EventKind, now: SimTime) {
        let (pid, is_delivery) = match &kind {
            EventKind::Start(p) => (*p, false),
            EventKind::Timer(p, _, _) => (*p, false),
            EventKind::Restart(p) => (*p, false),
            EventKind::Deliver(pkt) => (pkt.dst, true),
            EventKind::Drain(_) => return,
        };
        let Some(host) = self.core.host_of(pid) else {
            self.core.count("net.dropped.noroute", 1);
            return;
        };
        if self.core.trace_on {
            let record: [u64; TRACE_WORDS] = match &kind {
                EventKind::Start(p) => [now.as_nanos(), p.0, TRACE_START, 0, 0, 0],
                EventKind::Timer(p, token, inc) => {
                    [now.as_nanos(), p.0, TRACE_TIMER, *token, *inc, 0]
                }
                EventKind::Restart(p) => [now.as_nanos(), p.0, TRACE_RESTART, 0, 0, 0],
                EventKind::Deliver(pkt) => [
                    now.as_nanos(),
                    pkt.dst.0,
                    TRACE_DELIVER,
                    pkt.src.0,
                    pkt.sent_at.as_nanos(),
                    pkt.wire_bytes as u64,
                ],
                EventKind::Drain(_) => return,
            };
            self.core.net.host_mut(host).trace.extend_from_slice(&record);
        }
        let Some(idx) = pid.0.checked_sub(1).map(|i| i as usize) else {
            return;
        };
        if self.core.proc_crashed.get(idx).copied().unwrap_or(false) {
            // A dead process neither receives nor computes; what was in
            // flight toward it is lost.
            match kind {
                EventKind::Deliver(_) => self.core.count("net.dropped.crashed", 1),
                _ => self.core.count("sim.event.crashed", 1),
            }
            return;
        }
        if let EventKind::Timer(_, _, incarnation) = &kind {
            let current = self.core.proc_incarnation.get(idx).copied().unwrap_or(0);
            if *incarnation != current {
                // Armed by a previous incarnation; the crash killed it.
                self.core.count("sim.timer.stale", 1);
                return;
            }
        }
        let Some(mut process) = self.processes.get_mut(idx).and_then(Option::take) else {
            return;
        };

        let mut ctx = Context {
            core: &mut self.core,
            me: pid,
            host,
            started_at: now,
            elapsed: SimDuration::ZERO,
            sends: Vec::new(),
        };
        match kind {
            EventKind::Start(_) => process.on_start(&mut ctx),
            EventKind::Timer(_, token, _) => process.on_timer(&mut ctx, token),
            EventKind::Restart(_) => process.on_restart(&mut ctx),
            EventKind::Deliver(packet) => {
                ctx.core.count("net.delivered", 1);
                process.on_packet(&mut ctx, packet);
            }
            EventKind::Drain(_) => {}
        }
        let elapsed = ctx.elapsed;
        let sends = std::mem::take(&mut ctx.sends);
        drop(ctx);
        if let Some(slot) = self.processes.get_mut(idx) {
            *slot = Some(process);
        }

        if is_delivery || elapsed > SimDuration::ZERO {
            let busy_until = now.saturating_add(elapsed);
            let host_state = self.core.net.host_mut(host);
            if busy_until > host_state.cpu_free_at {
                host_state.cpu_free_at = busy_until;
            }
        }
        for send in sends {
            self.core.route(send);
        }
    }

    /// After a dispatch on `host`, arms its drain timer if work is still
    /// pending (each drain event processes exactly one deferred event, so
    /// a backlog of K drains in K events instead of K^2 heap churn).
    fn schedule_drain_for(&mut self, host: HostId, now: SimTime) {
        let host_state = self.core.net.host_mut(host);
        if !host_state.pending.is_empty() && !host_state.drain_scheduled {
            host_state.drain_scheduled = true;
            let at = if host_state.cpu_free_at > now {
                host_state.cpu_free_at
            } else {
                now
            };
            self.core.push_from(host, at, EventKind::Drain(host));
        }
    }

    /// Runs until the event queue drains, a stop is requested, or virtual
    /// time would pass `deadline`. Returns the reached time.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.ensure_started();
        loop {
            match self.core.queue.peek() {
                Some(event) if event.key.at <= deadline => {
                    if !self.step() {
                        break;
                    }
                }
                _ => break,
            }
        }
        if self.core.now < deadline && self.core.queue.peek().is_some() {
            // Stopped early by request; clock stays where it was.
        } else if self.core.now < deadline {
            self.core.now = deadline;
        }
        self.core.now
    }

    /// Runs for `span` of virtual time from the current instant
    /// (saturating at the far future).
    pub fn run_for(&mut self, span: SimDuration) -> SimTime {
        let deadline = self.core.now.saturating_add(span);
        self.run_until(deadline)
    }

    /// Runs until the event queue is exhausted or a stop is requested.
    pub fn run_to_completion(&mut self) -> SimTime {
        self.ensure_started();
        while self.step() {}
        self.core.now
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.core.now)
            .field("hosts", &self.core.net.hosts.len())
            .field("processes", &self.processes.len())
            .field("pending_events", &self.core.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmcs_util::rate::Bandwidth;

    /// Sends `count` packets of `bytes` each to `dst` at start.
    struct Blaster {
        dst: ProcessId,
        count: usize,
        bytes: usize,
    }

    impl Process for Blaster {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for i in 0..self.count {
                ctx.send(self.dst, i as u64, self.bytes);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}
    }

    /// Records arrival times and per-packet CPU cost.
    #[derive(Default)]
    struct Sink {
        arrivals: Vec<SimTime>,
        cpu_cost: SimDuration,
    }

    impl Process for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, _packet: Packet) {
            ctx.spend_cpu(self.cpu_cost);
            self.arrivals.push(ctx.now());
        }
    }

    fn two_host_sim(bandwidth: Bandwidth) -> (Simulation, HostId, HostId) {
        let mut sim = Simulation::new(42);
        let a = sim.add_host(
            "a",
            NicConfig {
                bandwidth,
                ..NicConfig::default()
            },
        );
        let b = sim.add_host("b", NicConfig::default());
        (sim, a, b)
    }

    #[test]
    fn nic_serialization_spaces_out_packets() {
        // 1 Mbps NIC, 1250-byte packets -> 10 ms serialization each.
        let (mut sim, a, b) = two_host_sim(Bandwidth::from_mbps(1));
        sim.set_default_latency(SimDuration::from_millis(1));
        let sink = sim.add_typed_process(b, Sink::default());
        sim.add_process(
            a,
            Box::new(Blaster {
                dst: sink,
                count: 3,
                bytes: 1250,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let sink_state: &Sink = sim.process_ref(sink).unwrap();
        let at: Vec<u64> = sink_state.arrivals.iter().map(|t| t.as_millis()).collect();
        // Arrivals at 11, 21, 31 ms (serialization 10 ms each + 1 ms latency).
        assert_eq!(at, vec![11, 21, 31]);
    }

    #[test]
    fn queue_limit_drops_excess() {
        let (mut sim, a, b) = two_host_sim(Bandwidth::from_mbps(1));
        // Queue only fits 2 packets' worth of backlog.
        {
            let host = sim.core.net.host_mut(a);
            host.nic.queue_bytes = 2600;
        }
        let sink = sim.add_typed_process(b, Sink::default());
        sim.add_process(
            a,
            Box::new(Blaster {
                dst: sink,
                count: 10,
                bytes: 1250,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.counter("net.dropped.queue") > 0);
        let delivered = sim.counter("net.delivered");
        assert!(delivered < 10);
        assert_eq!(delivered + sim.counter("net.dropped.queue"), 10);
    }

    #[test]
    fn link_loss_drops_probabilistically() {
        let (mut sim, a, b) = two_host_sim(Bandwidth::from_gbps(1));
        sim.set_link(
            a,
            b,
            LinkConfig {
                latency: SimDuration::from_micros(100),
                loss: 0.5,
                ..LinkConfig::default()
            },
        );
        let sink = sim.add_typed_process(b, Sink::default());
        sim.add_process(
            a,
            Box::new(Blaster {
                dst: sink,
                count: 1000,
                bytes: 100,
            }),
        );
        sim.run_until(SimTime::from_secs(5));
        let lost = sim.counter("net.dropped.loss");
        assert!((300..700).contains(&lost), "lost={lost}");
        assert_eq!(lost + sim.counter("net.delivered"), 1000);
    }

    #[test]
    fn cpu_cost_serializes_handling_on_one_host() {
        // Two sinks on one host, each spending 10 ms per packet: the
        // second delivery must wait for the first handler to finish.
        let mut sim = Simulation::new(7);
        let a = sim.add_host("a", NicConfig::default());
        let b = sim.add_host("b", NicConfig::default());
        sim.set_default_latency(SimDuration::from_micros(100));
        let s1 = sim.add_typed_process(
            b,
            Sink {
                arrivals: Vec::new(),
                cpu_cost: SimDuration::from_millis(10),
            },
        );
        let s2 = sim.add_typed_process(
            b,
            Sink {
                arrivals: Vec::new(),
                cpu_cost: SimDuration::from_millis(10),
            },
        );
        struct DualSend(ProcessId, ProcessId);
        impl Process for DualSend {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(self.0, (), 100);
                ctx.send(self.1, (), 100);
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _p: Packet) {}
        }
        sim.add_process(a, Box::new(DualSend(s1, s2)));
        sim.run_until(SimTime::from_secs(1));
        let t1 = sim.process_ref::<Sink>(s1).unwrap().arrivals[0];
        let t2 = sim.process_ref::<Sink>(s2).unwrap().arrivals[0];
        // Handler 2 starts only after handler 1's 10 ms of CPU.
        assert!(t2.saturating_duration_since(t1) >= SimDuration::from_millis(9));
    }

    #[test]
    fn loopback_bypasses_nic() {
        // Tiny NIC bandwidth, but same-host traffic must still be fast.
        let mut sim = Simulation::new(1);
        let a = sim.add_host(
            "a",
            NicConfig {
                bandwidth: Bandwidth::from_kbps(1),
                ..NicConfig::default()
            },
        );
        let sink = sim.add_typed_process(a, Sink::default());
        sim.add_process(
            a,
            Box::new(Blaster {
                dst: sink,
                count: 5,
                bytes: 10_000,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let sink_state: &Sink = sim.process_ref(sink).unwrap();
        assert_eq!(sink_state.arrivals.len(), 5);
        assert!(sink_state.arrivals[4] < SimTime::from_millis(1));
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Default)]
        struct TimerProc {
            fired: Vec<u64>,
        }
        impl Process for TimerProc {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _p: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut sim = Simulation::new(1);
        let a = sim.add_host("a", NicConfig::default());
        let p = sim.add_typed_process(a, TimerProc::default());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.process_ref::<TimerProc>(p).unwrap().fired, vec![1, 2, 3]);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        fn run() -> (u64, u64) {
            let (mut sim, a, b) = two_host_sim(Bandwidth::from_mbps(10));
            sim.set_link(
                a,
                b,
                LinkConfig {
                    latency: SimDuration::from_micros(500),
                    loss: 0.2,
                    ..LinkConfig::default()
                },
            );
            let sink = sim.add_typed_process(b, Sink::default());
            sim.add_process(
                a,
                Box::new(Blaster {
                    dst: sink,
                    count: 500,
                    bytes: 500,
                }),
            );
            sim.run_until(SimTime::from_secs(2));
            (sim.counter("net.delivered"), sim.counter("net.dropped.loss"))
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim = Simulation::new(1);
        sim.add_host("a", NicConfig::default());
        let end = sim.run_until(SimTime::from_secs(3));
        assert_eq!(end, SimTime::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn stop_request_halts_run() {
        struct Stopper;
        impl Process for Stopper {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(5), 0);
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _p: Packet) {}
            fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
                ctx.stop();
                ctx.set_timer(SimDuration::from_millis(5), 0);
            }
        }
        let mut sim = Simulation::new(1);
        let a = sim.add_host("a", NicConfig::default());
        sim.add_process(a, Box::new(Stopper));
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_millis(5));
    }

    #[test]
    fn observe_records_stats() {
        struct Observer;
        impl Process for Observer {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.observe("x", 1.0);
                ctx.observe("x", 3.0);
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _p: Packet) {}
        }
        let mut sim = Simulation::new(1);
        let a = sim.add_host("a", NicConfig::default());
        sim.add_process(a, Box::new(Observer));
        sim.run_until(SimTime::from_secs(1));
        let stats = sim.stat("x").unwrap();
        assert_eq!(stats.count(), 2);
        assert_eq!(stats.mean(), 2.0);
    }

    #[test]
    #[should_panic(expected = "unknown host")]
    fn adding_process_to_missing_host_panics() {
        let mut sim = Simulation::new(1);
        sim.add_process(HostId(5), Box::new(Sink::default()));
    }
}

#[cfg(test)]
mod drain_tests {
    use super::*;
    use crate::net::NicConfig;
    use crate::process::{Context, Packet, Process, ProcessId};
    use mmcs_util::time::{SimDuration, SimTime};

    /// Records the order stimuli are handled in while burning CPU.
    #[derive(Default)]
    struct BusyRecorder {
        log: Vec<(u64, SimTime)>,
        cpu: SimDuration,
    }

    impl Process for BusyRecorder {
        fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
            let tag = *packet.payload::<u64>().expect("tagged payload");
            self.log.push((tag, ctx.now()));
            ctx.spend_cpu(self.cpu);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
            self.log.push((1000 + token, ctx.now()));
            ctx.spend_cpu(self.cpu);
        }
    }

    struct Burst {
        dst: ProcessId,
    }

    impl Process for Burst {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for tag in 0..5u64 {
                ctx.send(self.dst, tag, 100);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}
    }

    /// A CPU backlog drains in FIFO arrival order, and a timer that
    /// fires mid-backlog waits its turn behind earlier arrivals.
    #[test]
    fn backlog_drains_fifo_with_timers_interleaved() {
        let mut sim = Simulation::new(1);
        let a = sim.add_host("a", NicConfig::default());
        let b = sim.add_host("b", NicConfig::default());
        let recorder = sim.add_typed_process(
            b,
            BusyRecorder {
                log: Vec::new(),
                cpu: SimDuration::from_millis(10),
            },
        );
        sim.add_typed_process(a, Burst { dst: recorder });
        // A sibling process on the same busy host arms a 15 ms timer;
        // its firing must wait behind the recorder's CPU backlog.
        struct TimerArm {
            target_cpu: SimDuration,
        }
        impl Process for TimerArm {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(15), 7);
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _p: Packet) {}
            fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
                // Runs on host b too: must have waited for the backlog.
                ctx.observe("timer.fired_at_ms", ctx.now().as_millis_f64());
                let _ = self.target_cpu;
            }
        }
        sim.add_typed_process(
            b,
            TimerArm {
                target_cpu: SimDuration::ZERO,
            },
        );
        sim.run_until(SimTime::from_secs(1));

        let log = &sim.process_ref::<BusyRecorder>(recorder).unwrap().log;
        let tags: Vec<u64> = log.iter().map(|(tag, _)| *tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4], "FIFO drain order");
        // Five handlers x 10 ms CPU: the last starts at >= 40 ms.
        assert!(log[4].1 >= SimTime::from_millis(40));
        // The sibling's 15 ms timer waited for the CPU backlog (fires
        // after the ~50 ms of recorder work, not at 15 ms).
        let fired = sim.stat("timer.fired_at_ms").unwrap().mean();
        assert!(fired >= 40.0, "timer fired at {fired} ms");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::net::NicConfig;
    use crate::process::{Context, Packet, Process, ProcessId};
    use mmcs_util::time::{SimDuration, SimTime};

    /// Counts packets and records restart notifications.
    #[derive(Default)]
    struct Tally {
        packets: u64,
        restarts: u64,
        timer_fires: Vec<u64>,
    }

    impl Process for Tally {
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {
            self.packets += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_>, token: u64) {
            self.timer_fires.push(token);
        }
        fn on_restart(&mut self, ctx: &mut Context<'_>) {
            self.restarts += 1;
            ctx.set_timer(SimDuration::from_millis(10), 99);
        }
    }

    /// Sends one packet to `dst` every 10 ms.
    struct Ticker {
        dst: ProcessId,
    }

    impl Process for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(10), 0);
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _p: Packet) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
            ctx.send(self.dst, (), 100);
            ctx.set_timer(SimDuration::from_millis(10), 0);
        }
    }

    #[test]
    fn link_down_partitions_and_heals() {
        let mut sim = Simulation::new(1);
        let a = sim.add_host("a", NicConfig::default());
        let b = sim.add_host("b", NicConfig::default());
        let sink = sim.add_typed_process(b, Tally::default());
        sim.add_typed_process(a, Ticker { dst: sink });
        sim.run_until(SimTime::from_millis(100));
        let before = sim.process_ref::<Tally>(sink).unwrap().packets;
        assert!(before > 0);

        sim.set_link(
            a,
            b,
            LinkConfig {
                down: true,
                ..LinkConfig::default()
            },
        );
        // One packet may already be in flight when the link drops; let it
        // land, then assert the partition is absolute.
        sim.run_until(SimTime::from_millis(120));
        let during = sim.process_ref::<Tally>(sink).unwrap().packets;
        sim.run_until(SimTime::from_millis(200));
        assert_eq!(sim.process_ref::<Tally>(sink).unwrap().packets, during);
        assert!(sim.counter("net.dropped.linkdown") > 0);

        sim.set_link(a, b, LinkConfig::default());
        sim.run_until(SimTime::from_millis(300));
        assert!(sim.process_ref::<Tally>(sink).unwrap().packets > during);
    }

    #[test]
    fn duplicate_probability_delivers_copies() {
        struct Blast {
            dst: ProcessId,
        }
        impl Process for Blast {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for _ in 0..10 {
                    ctx.send(self.dst, (), 100);
                }
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _p: Packet) {}
        }
        let mut sim = Simulation::new(3);
        let a = sim.add_host("a", NicConfig::default());
        let b = sim.add_host("b", NicConfig::default());
        sim.set_link(
            a,
            b,
            LinkConfig {
                duplicate: 1.0,
                ..LinkConfig::default()
            },
        );
        let sink = sim.add_typed_process(b, Tally::default());
        sim.add_typed_process(a, Blast { dst: sink });
        sim.run_until(SimTime::from_secs(1));
        let got = sim.process_ref::<Tally>(sink).unwrap().packets;
        assert_eq!(sim.counter("net.duplicated"), 10);
        assert_eq!(got, 20, "every packet delivered exactly twice");
    }

    #[test]
    fn jitter_reorders_back_to_back_packets() {
        // Two packets sent back to back with jitter far exceeding their
        // spacing: under seed 7 at least one pair arrives out of order.
        #[derive(Default)]
        struct SeqSink {
            seen: Vec<u64>,
        }
        impl Process for SeqSink {
            fn on_packet(&mut self, _ctx: &mut Context<'_>, packet: Packet) {
                self.seen.push(*packet.payload::<u64>().unwrap());
            }
        }
        struct SeqBlast {
            dst: ProcessId,
        }
        impl Process for SeqBlast {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for i in 0..50u64 {
                    ctx.send(self.dst, i, 100);
                }
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _p: Packet) {}
        }
        let mut sim = Simulation::new(7);
        let a = sim.add_host("a", NicConfig::default());
        let b = sim.add_host("b", NicConfig::default());
        sim.set_link(
            a,
            b,
            LinkConfig {
                jitter: SimDuration::from_millis(50),
                ..LinkConfig::default()
            },
        );
        let sink = sim.add_typed_process(b, SeqSink::default());
        sim.add_typed_process(a, SeqBlast { dst: sink });
        sim.run_until(SimTime::from_secs(1));
        let seen = &sim.process_ref::<SeqSink>(sink).unwrap().seen;
        assert_eq!(seen.len(), 50, "jitter must not lose packets");
        assert!(
            seen.windows(2).any(|w| w[0] > w[1]),
            "expected at least one reordering: {seen:?}"
        );
    }

    #[test]
    fn crash_drops_deliveries_and_restart_resumes() {
        let mut sim = Simulation::new(2);
        let a = sim.add_host("a", NicConfig::default());
        let b = sim.add_host("b", NicConfig::default());
        let sink = sim.add_typed_process(b, Tally::default());
        sim.add_typed_process(a, Ticker { dst: sink });
        sim.run_until(SimTime::from_millis(100));
        let before = sim.process_ref::<Tally>(sink).unwrap().packets;

        sim.crash_process(sink);
        assert!(sim.is_crashed(sink));
        sim.run_until(SimTime::from_millis(200));
        assert_eq!(sim.process_ref::<Tally>(sink).unwrap().packets, before);
        assert!(sim.counter("net.dropped.crashed") > 0);

        sim.restart_process(sink);
        assert!(!sim.is_crashed(sink));
        sim.run_until(SimTime::from_millis(300));
        let state = sim.process_ref::<Tally>(sink).unwrap();
        assert!(state.packets > before, "deliveries resume after restart");
        assert_eq!(state.restarts, 1, "on_restart ran once");
        assert_eq!(sim.counter("sim.crashes"), 1);
        assert_eq!(sim.counter("sim.restarts"), 1);
    }

    #[test]
    fn timers_from_before_a_crash_never_fire_after_restart() {
        struct SlowTimer;
        #[derive(Default)]
        struct Victim {
            fires: Vec<u64>,
        }
        impl Process for Victim {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                // Armed pre-crash, due at 500 ms — after the restart.
                ctx.set_timer(SimDuration::from_millis(500), 1);
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _p: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_>, token: u64) {
                self.fires.push(token);
            }
            fn on_restart(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(100), 2);
            }
        }
        let _ = SlowTimer;
        let mut sim = Simulation::new(4);
        let a = sim.add_host("a", NicConfig::default());
        let victim = sim.add_typed_process(a, Victim::default());
        sim.run_until(SimTime::from_millis(50));
        sim.crash_process(victim);
        sim.run_until(SimTime::from_millis(60));
        sim.restart_process(victim);
        sim.run_until(SimTime::from_secs(1));
        let fires = &sim.process_ref::<Victim>(victim).unwrap().fires;
        // Only the post-restart timer (token 2) fired; the pre-crash
        // token-1 timer was invalidated by the incarnation bump.
        assert_eq!(fires, &vec![2]);
        assert_eq!(sim.counter("sim.timer.stale"), 1);
    }

    #[test]
    fn crash_and_restart_are_idempotent() {
        let mut sim = Simulation::new(5);
        let a = sim.add_host("a", NicConfig::default());
        let p = sim.add_typed_process(a, Tally::default());
        sim.restart_process(p); // not crashed: no-op
        sim.crash_process(p);
        sim.crash_process(p); // already crashed: no-op
        assert_eq!(sim.counter("sim.crashes"), 1);
        sim.restart_process(p);
        sim.restart_process(p); // already alive: no-op
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.counter("sim.restarts"), 1);
        assert_eq!(sim.process_ref::<Tally>(p).unwrap().restarts, 1);
    }

    /// Overflow regression: a timer delay near `u64::MAX` nanoseconds
    /// must saturate to the far future (effectively "never"), not wrap
    /// around to the past and fire immediately — and `run_for` from a
    /// late `now` must clamp its deadline the same way.
    #[test]
    fn far_future_timer_saturates_instead_of_wrapping() {
        struct FarFuture;
        impl Process for FarFuture {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_nanos(u64::MAX), 7);
                ctx.set_timer(SimDuration::from_millis(1), 1);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
                ctx.count(if token == 7 { "timer.far" } else { "timer.near" }, 1);
            }
            fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}
        }
        let mut sim = Simulation::new(9);
        let a = sim.add_host("a", NicConfig::default());
        sim.add_typed_process(a, FarFuture);
        sim.run_until(SimTime::from_secs(1));
        // The near timer fired; the saturated one stays pending forever.
        assert_eq!(sim.counter("timer.near"), 1);
        assert_eq!(sim.counter("timer.far"), 0);
        // The saturated timer is still pending, so `now` holds at the
        // last executed event rather than jumping to the deadline.
        assert_eq!(sim.now(), SimTime::from_millis(1));
        // run_for with an overflowing span clamps to the far future
        // rather than wrapping the deadline into the past.
        sim.run_for(SimDuration::from_nanos(u64::MAX - 1));
        assert_eq!(sim.counter("timer.far"), 1);
        assert_eq!(sim.now(), SimTime::MAX);
    }
}
