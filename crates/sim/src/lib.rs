//! A deterministic discrete-event network simulator.
//!
//! The paper's evaluation ran on two 2003-era lab machines; this crate is
//! the substitution substrate (see `DESIGN.md` §2): it models exactly the
//! first-order effects that produced the paper's Figure 3 —
//!
//! * **CPU contention** — each host has one serial CPU; packet handling
//!   costs declared with [`Context::spend_cpu`] queue up behind each
//!   other, which is how a slow reflector falls behind a 600 Kbps fan-out
//!   and how 12 co-located receivers perturb the sender machine.
//! * **NIC serialization** — every egress packet occupies the NIC for
//!   `bytes × 8 / bandwidth`; back-to-back fan-out to 400 receivers queues
//!   behind itself. Queues are drop-tail with a byte limit.
//! * **Link propagation and loss** — per-pair latency and loss
//!   probability.
//!
//! Components are actor-style [`Process`]es exchanging [`Packet`]s; all
//! scheduling is virtual-time ([`SimTime`](mmcs_util::time::SimTime)), all
//! randomness is seeded, so runs are bit-reproducible — including on the
//! conservative-parallel engine ([`parsim`]), which shards hosts across
//! worker threads ([`Simulation::run_parallel_until`]) while reproducing
//! the sequential engine's event order bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use mmcs_sim::{Context, Packet, Process, Simulation};
//! use mmcs_sim::net::NicConfig;
//! use mmcs_util::time::{SimDuration, SimTime};
//!
//! struct Ping;
//! struct Pong;
//!
//! impl Process for Ping {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         // Process ids are handed out in registration order, starting
//!         // at 1; the Pong below is process 2.
//!         ctx.send(2.into(), "ping", 100);
//!     }
//!     fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}
//! }
//!
//! impl Process for Pong {
//!     fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
//!         assert_eq!(packet.payload::<&str>(), Some(&"ping"));
//!         ctx.send(packet.src, "pong", 100);
//!     }
//! }
//!
//! let mut sim = Simulation::new(1);
//! let a = sim.add_host("a", NicConfig::default());
//! let b = sim.add_host("b", NicConfig::default());
//! sim.set_default_latency(SimDuration::from_millis(1));
//! sim.add_process(a, Box::new(Ping));
//! sim.add_process(b, Box::new(Pong));
//! sim.run_until(SimTime::from_secs(1));
//! assert!(sim.counter("net.delivered") >= 2);
//! ```

pub mod engine;
pub mod net;
pub mod parsim;
pub mod process;

pub use engine::Simulation;
pub use net::{LinkConfig, NicConfig};
pub use parsim::ParsimStats;
pub use process::{Context, Packet, Process, ProcessId};
