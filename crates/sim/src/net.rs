//! The network model: hosts, NICs and links.
//!
//! Each host owns one egress NIC with finite [`Bandwidth`] and a drop-tail
//! byte-limited queue, and one serial CPU (managed by the engine). Pairs
//! of hosts communicate over implicit duplex links configured by a default
//! [`LinkConfig`] plus per-pair overrides. Same-host traffic bypasses the
//! NIC and pays only a small loopback latency.

use std::collections::HashMap;

use mmcs_util::rate::Bandwidth;
use mmcs_util::rng::DetRng;
use mmcs_util::time::{SimDuration, SimTime};

/// Identifies a simulated host (machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HostId(pub u64);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host-{}", self.0)
    }
}

/// Egress NIC configuration for a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicConfig {
    /// Egress capacity. Default: 1 Gbps.
    pub bandwidth: Bandwidth,
    /// Drop-tail limit on bytes backlogged behind the NIC.
    /// Default: 4 MiB (a few hundred ms at typical rates).
    pub queue_bytes: u64,
    /// Latency applied to same-host (loopback) deliveries. Default: 20 µs.
    pub loopback_latency: SimDuration,
}

impl Default for NicConfig {
    fn default() -> Self {
        Self {
            bandwidth: Bandwidth::from_gbps(1),
            queue_bytes: 4 * 1024 * 1024,
            loopback_latency: SimDuration::from_micros(20),
        }
    }
}

/// Properties of the path between two hosts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation delay. Default: 200 µs (a campus LAN).
    pub latency: SimDuration,
    /// Independent per-packet loss probability in `[0, 1]`. Default: 0.
    pub loss: f64,
    /// Independent probability in `[0, 1]` that a surviving packet is
    /// delivered twice (network-level duplication). Default: 0.
    pub duplicate: f64,
    /// Upper bound on uniformly random extra delay added per packet.
    /// Any nonzero value reorders back-to-back packets. Default: 0.
    pub jitter: SimDuration,
    /// Administratively down (a hard partition): every packet on the
    /// link is dropped and counted as `net.dropped.linkdown`.
    /// Default: `false`.
    pub down: bool,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            latency: SimDuration::from_micros(200),
            loss: 0.0,
            duplicate: 0.0,
            jitter: SimDuration::ZERO,
            down: false,
        }
    }
}

#[derive(Debug)]
pub(crate) struct HostState {
    /// Human-readable label, surfaced via `Simulation::host_name`.
    pub name: String,
    pub nic: NicConfig,
    /// When the egress NIC finishes its current backlog.
    pub nic_free_at: SimTime,
    /// When the host CPU finishes its current work.
    pub cpu_free_at: SimTime,
    /// Events waiting for the CPU, in arrival order. Kept per host (not
    /// in the global heap) so a long backlog drains in O(1) per event
    /// instead of re-sorting the whole backlog after every handler.
    pub pending: std::collections::VecDeque<crate::engine::DeferredEvent>,
    /// Whether a drain event is already scheduled for this host.
    pub drain_scheduled: bool,
    /// Deterministic RNG stream private to this host. Every random draw
    /// attributable to the host (its processes' `ctx.rng()`, plus
    /// loss/duplication/jitter on packets it sends) comes from here, so
    /// the draw sequence depends only on the host's own execution order —
    /// which is identical under the sequential and parallel engines.
    pub rng: DetRng,
    /// Private counter for event keys minted with this host as origin.
    /// See `engine::EventKey` for the total-order argument.
    pub push_seq: u64,
    /// Execution trace (fixed-width records, see `engine` trace tags);
    /// only appended to while `Simulation::set_trace_enabled(true)`.
    pub trace: Vec<u64>,
}

impl HostState {
    /// An inert placeholder occupying a non-owned slot in a parallel
    /// worker's host table (see `crate::parsim`). Never executed.
    pub(crate) fn placeholder() -> Self {
        Self {
            name: String::new(),
            nic: NicConfig::default(),
            nic_free_at: SimTime::ZERO,
            cpu_free_at: SimTime::ZERO,
            pending: std::collections::VecDeque::new(),
            drain_scheduled: false,
            rng: DetRng::new(0),
            push_seq: 0,
            trace: Vec::new(),
        }
    }
}

/// Derives a host's private RNG seed from the simulation master seed.
/// The odd multiplier (the 64-bit golden ratio) spreads consecutive host
/// ids across the seed space so stream prefixes don't correlate.
pub(crate) fn host_stream_seed(master_seed: u64, id: u64) -> u64 {
    master_seed ^ (id + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Host and link state shared by the engine.
#[derive(Debug, Default)]
pub(crate) struct NetworkState {
    pub hosts: Vec<HostState>,
    pub default_link: LinkConfig,
    pub link_overrides: HashMap<(HostId, HostId), LinkConfig>,
}

impl NetworkState {
    pub fn add_host(&mut self, name: &str, nic: NicConfig, master_seed: u64) -> HostId {
        let id = HostId(self.hosts.len() as u64);
        self.hosts.push(HostState {
            name: name.to_owned(),
            nic,
            nic_free_at: SimTime::ZERO,
            cpu_free_at: SimTime::ZERO,
            pending: std::collections::VecDeque::new(),
            drain_scheduled: false,
            rng: DetRng::new(host_stream_seed(master_seed, id.0)),
            push_seq: 0,
            trace: Vec::new(),
        });
        id
    }

    pub fn host(&self, id: HostId) -> &HostState {
        &self.hosts[id.0 as usize]
    }

    pub fn host_mut(&mut self, id: HostId) -> &mut HostState {
        &mut self.hosts[id.0 as usize]
    }

    /// Link configuration between two hosts, checking both key orders.
    pub fn link(&self, a: HostId, b: HostId) -> LinkConfig {
        self.link_overrides
            .get(&(a, b))
            .or_else(|| self.link_overrides.get(&(b, a)))
            .copied()
            .unwrap_or(self.default_link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let nic = NicConfig::default();
        assert_eq!(nic.bandwidth, Bandwidth::from_gbps(1));
        assert!(nic.queue_bytes > 0);
        let link = LinkConfig::default();
        assert_eq!(link.loss, 0.0);
        assert!(link.latency > SimDuration::ZERO);
    }

    #[test]
    fn link_override_is_symmetric() {
        let mut net = NetworkState::default();
        let a = net.add_host("a", NicConfig::default(), 1);
        let b = net.add_host("b", NicConfig::default(), 1);
        let cfg = LinkConfig {
            latency: SimDuration::from_millis(5),
            loss: 0.25,
            ..LinkConfig::default()
        };
        net.link_overrides.insert((a, b), cfg);
        assert_eq!(net.link(a, b).latency, cfg.latency);
        assert_eq!(net.link(b, a).latency, cfg.latency);
        let c = net.add_host("c", NicConfig::default(), 1);
        assert_eq!(net.link(a, c), LinkConfig::default());
    }

    #[test]
    fn host_ids_are_sequential() {
        let mut net = NetworkState::default();
        assert_eq!(net.add_host("x", NicConfig::default(), 1), HostId(0));
        assert_eq!(net.add_host("y", NicConfig::default(), 1), HostId(1));
        assert_eq!(net.host(HostId(1)).name, "y");
        assert_eq!(HostId(1).to_string(), "host-1");
    }
}
