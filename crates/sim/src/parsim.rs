//! Conservative-parallel execution of a [`Simulation`].
//!
//! [`Simulation::run_parallel_until`] shards the simulation by host
//! across worker threads and advances them in bulk-synchronous
//! conservative windows:
//!
//! 1. each worker drains its inbox of cross-worker deliveries, then
//!    publishes a lower bound on its next local event time (publishing
//!    `u64::MAX` when idle is the null message that keeps an idle shard
//!    from stalling the watermark);
//! 2. a barrier; every worker computes the same global watermark `T` =
//!    the minimum published bound;
//! 3. if `T` passes the deadline (or everyone is idle), all workers
//!    break — otherwise each executes its local events in the window
//!    `[T, T + lookahead)`, capped at the deadline;
//! 4. a second barrier, so the next round's publishes cannot race the
//!    current round's reads.
//!
//! The window is safe because a cross-host packet sent at time `t`
//! arrives no earlier than `t + lookahead`: delivery time is
//! `tx_done + link latency + jitter` with `tx_done >= t` and
//! `jitter >= 0`, and `lookahead` is the minimum configured link
//! latency (`down` links deliver nothing at all). Events generated
//! inside the window therefore land strictly after it, and are picked
//! up by the receiving worker's next drain before the next watermark is
//! computed.
//!
//! Determinism is inherited from the engine's `(time, origin, seq)`
//! event keys: a host's events execute in the same relative order on
//! any worker, so every key — and every per-host trace, counter, and
//! fingerprint — is bit-identical to the sequential engine at any
//! worker count (`tests/parsim_equivalence.rs` proves it at 1/2/4/8).
//! See DESIGN.md §14 for the full protocol and argument.
//!
//! Known divergence: [`Context::stop`](crate::Context::stop) takes
//! effect at window granularity — other workers finish their current
//! window before halting — so post-stop clock position can differ from
//! the sequential engine. Fault injection (`set_link`, crash/restart)
//! happens between runs and is unaffected.

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;

use mmcs_util::time::{SimDuration, SimTime};

use crate::engine::{AnyProcess, CrossLinks, EngineCore, Event, Simulation};
use crate::net::{HostState, NetworkState};

/// Cumulative statistics about parallel runs, kept outside the metric
/// counters so chaos fingerprints stay engine-independent.
#[derive(Debug, Clone, Default)]
pub struct ParsimStats {
    /// Parallel runs that actually fanned out to worker threads.
    pub parallel_runs: u64,
    /// Runs that fell back to the sequential engine (one worker, fewer
    /// than two hosts, or a zero-latency link leaving no lookahead).
    pub sequential_fallbacks: u64,
    /// Synchronization rounds (watermark advances), summed over runs.
    pub rounds: u64,
    /// Events executed per worker, indexed by worker.
    pub worker_events: Vec<u64>,
    /// Watermark stalls per worker: rounds where the worker had no event
    /// inside the safe window and only republished its bound (its null
    /// message still advanced the watermark for everyone else).
    pub worker_stalls: Vec<u64>,
}

impl ParsimStats {
    fn ensure_workers(&mut self, n: usize) {
        if self.worker_events.len() < n {
            self.worker_events.resize(n, 0);
            self.worker_stalls.resize(n, 0);
        }
    }
}

/// A sense-reversing spin barrier.
///
/// Windows are typically microseconds of work, so parking threads in the
/// kernel (as `std::sync::Barrier`'s mutex + condvar does) would dominate
/// the run. Spinning with `spin_loop` plus a periodic `yield_now` keeps
/// the barrier in the tens-of-nanoseconds range when all workers are
/// runnable and stays polite when they are not.
struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    /// Set when a worker panics; waiters return `false` immediately so
    /// the run aborts instead of spinning forever on a dead peer.
    poisoned: AtomicBool,
}

impl SpinBarrier {
    fn new(parties: usize) -> Self {
        Self {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Waits for all parties. Returns `false` if the barrier was
    /// poisoned (a peer panicked) and the caller should abandon the run.
    fn wait(&self) -> bool {
        if self.poisoned.load(Ordering::Acquire) {
            return false;
        }
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
            return true;
        }
        let mut spins: u32 = 0;
        while self.generation.load(Ordering::Acquire) == generation {
            if self.poisoned.load(Ordering::Acquire) {
                return false;
            }
            spins = spins.saturating_add(1);
            // Short pure-spin burst (covers the common all-runnable
            // case), then yield on every iteration: when workers
            // outnumber cores the peer we are waiting on needs our
            // timeslice, and burning it spinning inverts the priority.
            if spins > 256 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        true
    }
}

/// Coordination state shared by every worker of one parallel run.
struct SharedSync {
    barrier: SpinBarrier,
    /// Per-worker published lower bound on its next event time (nanos);
    /// `u64::MAX` = idle (the null message).
    next_time: Vec<AtomicU64>,
    /// Set when any worker's simulation requests a stop.
    stop: AtomicBool,
}

/// What a worker hands back when its run completes.
pub(crate) struct WorkerOutcome {
    sim: Simulation,
    /// Virtual time of the last event this worker executed.
    last_exec: SimTime,
    executed: u64,
    stalls: u64,
    rounds: u64,
}

/// One worker of a parallel run: a full-width `Simulation` whose host
/// and process tables are populated only at the slots this worker owns
/// (the rest are inert placeholders), plus the coordination handles.
pub(crate) struct SimWorker {
    sim: Simulation,
    me: usize,
    deadline: SimTime,
    /// Minimum cross-host link propagation delay: events a worker
    /// executes in `[T, T + lookahead)` cannot affect any other worker
    /// inside that same window.
    lookahead: SimDuration,
    inbox: Receiver<Event>,
    shared: Arc<SharedSync>,
}

impl SimWorker {
    /// The conservative worker loop; see the module docs for the
    /// protocol and its safety argument.
    pub(crate) fn run(mut self) -> WorkerOutcome {
        let mut last_exec = self.sim.core.now;
        let mut executed_total: u64 = 0;
        let mut stalls: u64 = 0;
        let mut rounds: u64 = 0;
        loop {
            self.drain_inbox();
            let bound = match self.sim.core.queue.peek() {
                Some(event) => event.key.at.as_nanos(),
                None => u64::MAX,
            };
            self.publish(bound);
            if !self.shared.barrier.wait() {
                break;
            }
            // Between the two barriers `next_time` is frozen, so every
            // worker computes the same watermark and makes the same
            // break/continue decision — the loop stays in lockstep.
            if self.shared.stop.load(Ordering::Acquire) {
                break;
            }
            let watermark = self.agreed_watermark();
            if watermark == SimTime::MAX || watermark > self.deadline {
                break;
            }
            let limit = window_limit(watermark, self.lookahead, self.deadline);
            let ran = self.execute(limit, &mut last_exec);
            executed_total += ran;
            if ran == 0 {
                stalls += 1;
            }
            rounds += 1;
            if self.sim.core.stop_requested {
                self.shared.stop.store(true, Ordering::Release);
            }
            if !self.shared.barrier.wait() {
                break;
            }
        }
        // Every cross-worker send of the final round happened before the
        // barrier above, so one last drain empties the channel for the
        // merge.
        self.drain_inbox();
        WorkerOutcome {
            sim: self.sim,
            last_exec,
            executed: executed_total,
            stalls,
            rounds,
        }
    }

    fn drain_inbox(&mut self) {
        while let Ok(event) = self.inbox.try_recv() {
            self.sim.core.queue.push(event);
        }
    }

    fn publish(&self, bound: u64) {
        if let Some(slot) = self.shared.next_time.get(self.me) {
            slot.store(bound, Ordering::Release);
        }
    }

    fn agreed_watermark(&self) -> SimTime {
        let mut min = u64::MAX;
        for slot in &self.shared.next_time {
            min = min.min(slot.load(Ordering::Acquire));
        }
        SimTime::from_nanos(min)
    }

    /// Executes every local event with `at <= limit`, in key order.
    fn execute(&mut self, limit: SimTime, last_exec: &mut SimTime) -> u64 {
        let mut ran: u64 = 0;
        loop {
            match self.sim.core.queue.peek() {
                Some(event) if event.key.at <= limit => {
                    let at = event.key.at;
                    if !self.sim.step() {
                        break;
                    }
                    *last_exec = at;
                    ran += 1;
                }
                _ => break,
            }
        }
        ran
    }
}

/// Inclusive per-round execution limit: `min(T + lookahead - 1 ns,
/// deadline)`. Saturating arithmetic keeps a `SimTime::MAX` deadline or
/// a far-future watermark from wrapping (see the overflow regressions
/// in `mmcs_util::time`).
fn window_limit(watermark: SimTime, lookahead: SimDuration, deadline: SimTime) -> SimTime {
    let span = lookahead.saturating_sub(SimDuration::from_nanos(1));
    let end = watermark.saturating_add(span);
    if end > deadline {
        deadline
    } else {
        end
    }
}

impl Simulation {
    /// Runs until `deadline` on `workers` threads, sharding hosts
    /// round-robin across workers. Behaves exactly like
    /// [`Simulation::run_until`]: same event order per host, same
    /// counters, same traces, same fingerprints — at any worker count
    /// (`tests/parsim_equivalence.rs` is the proof).
    ///
    /// Falls back to the sequential engine (recorded in
    /// [`Simulation::parallel_stats`]) when `workers <= 1`, the topology
    /// has fewer than two hosts, or some link has zero latency (no
    /// lookahead to parallelize under).
    pub fn run_parallel_until(&mut self, deadline: SimTime, workers: usize) -> SimTime {
        self.ensure_started();
        let host_count = self.core.net.hosts.len();
        let workers = workers.min(host_count.max(1)).max(1);
        let lookahead = self.cross_lookahead();
        if workers <= 1 || host_count < 2 || lookahead == SimDuration::ZERO {
            self.par_stats.sequential_fallbacks += 1;
            return self.run_until(deadline);
        }
        self.par_stats.parallel_runs += 1;
        self.par_stats.ensure_workers(workers);

        let owner: Arc<Vec<usize>> = Arc::new((0..host_count).map(|h| h % workers).collect());

        // Partition pending events by the worker owning their target host.
        let mut queues: Vec<BinaryHeap<Event>> = (0..workers).map(|_| BinaryHeap::new()).collect();
        for event in std::mem::take(&mut self.core.queue) {
            let worker = self
                .core
                .target_host(&event.kind)
                .and_then(|h| owner.get(h.0 as usize).copied())
                .unwrap_or(0);
            queues[worker].push(event);
        }

        let mut txs = Vec::with_capacity(workers);
        let mut rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel();
            txs.push(tx);
            rxs.push(rx);
        }

        let shared = Arc::new(SharedSync {
            barrier: SpinBarrier::new(workers),
            next_time: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            stop: AtomicBool::new(false),
        });

        // Move every host's state and process to its owning worker;
        // non-owned slots get inert placeholders so indices stay global.
        let mut host_slots: Vec<Option<HostState>> = std::mem::take(&mut self.core.net.hosts)
            .into_iter()
            .map(Some)
            .collect();
        let mut proc_slots: Vec<Option<Box<dyn AnyProcess>>> = std::mem::take(&mut self.processes);
        let proc_count = proc_slots.len();

        let mut worker_sims: Vec<SimWorker> = Vec::with_capacity(workers);
        for (w, rx) in rxs.into_iter().enumerate() {
            let hosts: Vec<HostState> = (0..host_count)
                .map(|h| {
                    if owner[h] == w {
                        host_slots[h].take().unwrap_or_else(HostState::placeholder)
                    } else {
                        HostState::placeholder()
                    }
                })
                .collect();
            let procs: Vec<Option<Box<dyn AnyProcess>>> = (0..proc_count)
                .map(|p| {
                    let h = self.core.proc_hosts.get(p).map(|h| h.0 as usize);
                    if h.and_then(|h| owner.get(h).copied()) == Some(w) {
                        proc_slots[p].take()
                    } else {
                        None
                    }
                })
                .collect();
            let core = EngineCore {
                net: NetworkState {
                    hosts,
                    default_link: self.core.net.default_link,
                    link_overrides: self.core.net.link_overrides.clone(),
                },
                now: self.core.now,
                master_seed: self.core.master_seed,
                control_seq: self.core.control_seq,
                queue: std::mem::take(&mut queues[w]),
                counters: HashMap::new(),
                observations: HashMap::new(),
                proc_hosts: self.core.proc_hosts.clone(),
                proc_crashed: self.core.proc_crashed.clone(),
                proc_incarnation: self.core.proc_incarnation.clone(),
                stop_requested: false,
                trace_on: self.core.trace_on,
                cross: Some(CrossLinks {
                    me: w,
                    owner: Arc::clone(&owner),
                    txs: txs.clone(),
                }),
            };
            let sim = Simulation {
                core,
                processes: procs,
                started: true,
                par_stats: ParsimStats::default(),
            };
            worker_sims.push(SimWorker {
                sim,
                me: w,
                deadline,
                lookahead,
                inbox: rx,
                shared: Arc::clone(&shared),
            });
        }
        drop(txs);

        let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = worker_sims
                .into_iter()
                .map(|worker| {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || worker.run(),
                        ));
                        match result {
                            Ok(outcome) => outcome,
                            Err(payload) => {
                                // Unblock peers before re-raising, else
                                // they spin on the barrier forever.
                                shared.barrier.poison();
                                std::panic::resume_unwind(payload);
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("sim worker thread panicked"))
                .collect()
        });

        // Merge everything back into the flat sequential representation.
        let mut host_back: Vec<Option<HostState>> = (0..host_count).map(|_| None).collect();
        let mut procs_back: Vec<Option<Box<dyn AnyProcess>>> =
            (0..proc_count).map(|_| None).collect();
        let mut merged_queue: BinaryHeap<Event> = BinaryHeap::new();
        let mut last_exec = self.core.now;
        let mut stopped = false;
        let mut rounds: u64 = 0;
        for (w, outcome) in outcomes.into_iter().enumerate() {
            let mut wsim = outcome.sim;
            for event in std::mem::take(&mut wsim.core.queue) {
                merged_queue.push(event);
            }
            for (h, state) in wsim.core.net.hosts.into_iter().enumerate() {
                if owner.get(h).copied() == Some(w) {
                    host_back[h] = Some(state);
                }
            }
            for (p, slot) in wsim.processes.into_iter().enumerate() {
                if let Some(process) = slot {
                    procs_back[p] = Some(process);
                }
            }
            for (name, value) in wsim.core.counters {
                *self.core.counters.entry(name).or_insert(0) += value;
            }
            for (name, stats) in wsim.core.observations {
                self.core.observations.entry(name).or_default().merge(&stats);
            }
            stopped |= wsim.core.stop_requested;
            if outcome.last_exec > last_exec {
                last_exec = outcome.last_exec;
            }
            rounds = rounds.max(outcome.rounds);
            if let Some(slot) = self.par_stats.worker_events.get_mut(w) {
                *slot += outcome.executed;
            }
            if let Some(slot) = self.par_stats.worker_stalls.get_mut(w) {
                *slot += outcome.stalls;
            }
        }
        self.par_stats.rounds += rounds;
        self.core.net.hosts = host_back
            .into_iter()
            .map(|slot| slot.unwrap_or_else(HostState::placeholder))
            .collect();
        self.processes = procs_back;
        self.core.queue = merged_queue;
        self.core.stop_requested = stopped;

        // Clock semantics mirror `run_until` exactly: advance to the
        // deadline only when no events remain past it.
        self.core.now = last_exec;
        if self.core.now < deadline && !self.core.queue.is_empty() {
            // Events remain (stop request or post-deadline work); the
            // clock stays at the last executed event.
        } else if self.core.now < deadline {
            self.core.now = deadline;
        }
        self.core.now
    }

    /// Parallel counterpart of [`Simulation::run_for`].
    pub fn run_parallel_for(&mut self, span: SimDuration, workers: usize) -> SimTime {
        let deadline = self.core.now.saturating_add(span);
        self.run_parallel_until(deadline, workers)
    }

    /// Parallel counterpart of [`Simulation::run_to_completion`]: runs
    /// on `workers` threads until every queue drains. (An event at
    /// exactly `SimTime::MAX` is indistinguishable from "idle" and never
    /// executes; `MAX` is the engine's far-future sentinel.)
    pub fn run_parallel(&mut self, workers: usize) -> SimTime {
        self.run_parallel_until(SimTime::MAX, workers)
    }

    /// Cumulative statistics from parallel runs of this simulation.
    pub fn parallel_stats(&self) -> &ParsimStats {
        &self.par_stats
    }

    /// The conservative cross-worker lookahead: the minimum link
    /// propagation delay over the default link and every override.
    /// Recomputed per run, so mid-run `set_link` fault injection between
    /// runs keeps the window sound.
    fn cross_lookahead(&self) -> SimDuration {
        let net = &self.core.net;
        let mut lookahead = net.default_link.latency;
        for link in net.link_overrides.values() {
            lookahead = lookahead.min(link.latency);
        }
        lookahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NicConfig;
    use crate::process::{Context, Packet, Process, ProcessId};

    /// Sends `count` packets to `dst` at start, 10 ms apart via timers.
    struct Pinger {
        dst: ProcessId,
        count: u64,
        sent: u64,
    }

    impl Process for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(10), 0);
        }
        fn on_packet(&mut self, _ctx: &mut Context<'_>, _p: Packet) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
            if self.sent < self.count {
                self.sent += 1;
                ctx.send(self.dst, self.sent, 200);
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
    }

    /// Echoes every packet back to its sender.
    struct Echo;

    impl Process for Echo {
        fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
            let value = packet.payload::<u64>().copied().unwrap_or(0);
            ctx.send(packet.src, value, 100);
            ctx.count("echoed", 1);
        }
    }

    fn build(seed: u64) -> Simulation {
        let mut sim = Simulation::new(seed);
        let mut procs = Vec::new();
        for i in 0..4 {
            let host = sim.add_host(&format!("h{i}"), NicConfig::default());
            procs.push((host, i));
        }
        let echo_host = procs[0].0;
        let echo = sim.add_typed_process(echo_host, Echo);
        for &(host, _) in &procs[1..] {
            sim.add_typed_process(
                host,
                Pinger {
                    dst: echo,
                    count: 20,
                    sent: 0,
                },
            );
        }
        sim.set_trace_enabled(true);
        sim
    }

    #[test]
    fn parallel_matches_sequential_simple_topology() {
        let mut seq = build(11);
        seq.run_until(SimTime::from_secs(1));
        let mut par = build(11);
        par.run_parallel_until(SimTime::from_secs(1), 4);
        assert_eq!(par.now(), seq.now());
        assert_eq!(par.counter("echoed"), seq.counter("echoed"));
        assert_eq!(par.counter("net.delivered"), seq.counter("net.delivered"));
        assert_eq!(par.trace_fingerprint(), seq.trace_fingerprint());
        assert_eq!(par.take_traces(), seq.take_traces());
        assert!(par.parallel_stats().parallel_runs >= 1);
    }

    #[test]
    fn one_worker_falls_back_to_sequential() {
        let mut sim = build(3);
        sim.run_parallel_until(SimTime::from_millis(50), 1);
        assert_eq!(sim.parallel_stats().sequential_fallbacks, 1);
        assert_eq!(sim.parallel_stats().parallel_runs, 0);
    }

    #[test]
    fn zero_latency_link_falls_back_to_sequential() {
        let mut sim = build(3);
        sim.set_default_latency(SimDuration::ZERO);
        sim.run_parallel_until(SimTime::from_millis(50), 4);
        assert_eq!(sim.parallel_stats().sequential_fallbacks, 1);
    }

    #[test]
    fn repeated_parallel_runs_resume_consistently() {
        let mut seq = build(9);
        let mut par = build(9);
        for ms in [100u64, 250, 400, 1000] {
            seq.run_until(SimTime::from_millis(ms));
            par.run_parallel_until(SimTime::from_millis(ms), 3);
            assert_eq!(par.now(), seq.now(), "clocks agree at {ms} ms");
        }
        assert_eq!(par.trace_fingerprint(), seq.trace_fingerprint());
        assert_eq!(par.take_traces(), seq.take_traces());
    }

    #[test]
    fn window_limit_saturates_at_far_future() {
        let limit = window_limit(
            SimTime::MAX,
            SimDuration::from_micros(200),
            SimTime::MAX,
        );
        assert_eq!(limit, SimTime::MAX);
        let capped = window_limit(
            SimTime::from_nanos(u64::MAX - 10),
            SimDuration::from_secs(5),
            SimTime::MAX,
        );
        assert_eq!(capped, SimTime::MAX);
    }
}
