//! Processes, packets and the execution context.
//!
//! A [`Process`] is an actor living on a simulated host. It reacts to
//! three stimuli — start-of-simulation, packet arrival and timer expiry —
//! and interacts with the world exclusively through the [`Context`] handed
//! to each callback: sending packets, arming timers, spending CPU time and
//! bumping named counters.

use std::any::Any;
use std::sync::Arc;

use mmcs_util::rng::DetRng;
use mmcs_util::time::{SimDuration, SimTime};

use crate::engine::{EngineCore, PendingSend};
use crate::net::HostId;

/// Identifies a process registered with a [`Simulation`](crate::Simulation).
///
/// Ids are handed out in registration order starting at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u64);

impl ProcessId {
    /// The underlying numeric value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl From<u64> for ProcessId {
    fn from(raw: u64) -> Self {
        ProcessId(raw)
    }
}

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "proc-{}", self.0)
    }
}

/// A packet delivered to a process.
///
/// The payload is reference-counted (atomically, so packets may cross
/// worker threads under the parallel engine) — a fan-out of one logical
/// message to hundreds of receivers does not copy the payload;
/// `wire_bytes` is the size the network charges for serialization.
#[derive(Debug, Clone)]
pub struct Packet {
    /// The sending process.
    pub src: ProcessId,
    /// The destination process.
    pub dst: ProcessId,
    /// Bytes occupied on the wire (headers + payload).
    pub wire_bytes: usize,
    /// When the sender handed the packet to its NIC.
    pub sent_at: SimTime,
    payload: Arc<dyn Any + Send + Sync>,
}

impl Packet {
    pub(crate) fn new(
        src: ProcessId,
        dst: ProcessId,
        wire_bytes: usize,
        sent_at: SimTime,
        payload: Arc<dyn Any + Send + Sync>,
    ) -> Self {
        Self {
            src,
            dst,
            wire_bytes,
            sent_at,
            payload,
        }
    }

    /// Downcasts the payload to a concrete type.
    pub fn payload<T: 'static>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }

    /// Clones the payload handle (cheap; reference-counted).
    pub fn payload_handle(&self) -> Arc<dyn Any + Send + Sync> {
        Arc::clone(&self.payload)
    }
}

/// An actor running on a simulated host.
///
/// Implementations are sans-IO protocol cores; all effects go through the
/// [`Context`].
pub trait Process {
    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Called when a packet addressed to this process arrives.
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet);

    /// Called when a timer armed with [`Context::set_timer`] fires.
    ///
    /// `token` is the caller-chosen value passed when arming the timer.
    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Called after [`Simulation::restart_process`](crate::Simulation::restart_process)
    /// revives this process from a crash.
    ///
    /// Timers armed before the crash never fire again, so implementations
    /// must re-arm whatever periodic work they need, and decide which of
    /// their in-memory state a restart preserves (durable) versus resets
    /// (volatile). The default does nothing — a restarted process that
    /// ignores this hook simply stays silent until a packet arrives.
    fn on_restart(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }
}

/// The world interface handed to every [`Process`] callback.
///
/// The context tracks virtual CPU time spent during the callback
/// ([`Context::spend_cpu`]); packets sent later in the callback are
/// stamped correspondingly later, and the host CPU stays busy for the
/// total, delaying whatever work is queued behind this callback.
pub struct Context<'a> {
    pub(crate) core: &'a mut EngineCore,
    pub(crate) me: ProcessId,
    pub(crate) host: HostId,
    /// Virtual time at which this callback began executing.
    pub(crate) started_at: SimTime,
    /// CPU time consumed so far within this callback.
    pub(crate) elapsed: SimDuration,
    pub(crate) sends: Vec<PendingSend>,
}

impl<'a> Context<'a> {
    /// The current virtual time: callback start plus CPU already spent.
    pub fn now(&self) -> SimTime {
        self.started_at + self.elapsed
    }

    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The host this process runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The host a process runs on, if it exists.
    pub fn host_of(&self, process: ProcessId) -> Option<HostId> {
        self.core.host_of(process)
    }

    /// Consumes `cost` of virtual CPU time.
    ///
    /// Subsequent [`Context::send`] calls are stamped after the cost, and
    /// the host CPU remains busy for the callback's total cost, delaying
    /// queued deliveries to any process on this host.
    pub fn spend_cpu(&mut self, cost: SimDuration) {
        self.elapsed += cost;
    }

    /// Sends `payload` to `dst` as a `wire_bytes`-sized packet through the
    /// simulated network (loopback if `dst` is on the same host).
    ///
    /// The payload may be any `Send + Sync + 'static` value (packets can
    /// cross worker threads under the parallel engine); receivers
    /// downcast with [`Packet::payload`]. For fan-out, pass an `Arc` via
    /// [`Context::send_shared`] to avoid cloning.
    pub fn send<T: Send + Sync + 'static>(&mut self, dst: ProcessId, payload: T, wire_bytes: usize) {
        self.send_shared(dst, Arc::new(payload), wire_bytes);
    }

    /// Sends an already reference-counted payload (cheap fan-out).
    pub fn send_shared(
        &mut self,
        dst: ProcessId,
        payload: Arc<dyn Any + Send + Sync>,
        wire_bytes: usize,
    ) {
        self.sends.push(PendingSend {
            src: self.me,
            dst,
            wire_bytes,
            at: self.now(),
            payload,
        });
    }

    /// Arms a timer that fires on this process after `delay`, passing
    /// `token` back to [`Process::on_timer`].
    ///
    /// The deadline saturates at the far future rather than wrapping, so
    /// arming a timer with a near-`u64::MAX` delay means "never fires"
    /// instead of firing in the past.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let at = self.now().saturating_add(delay);
        self.core.schedule_timer(self.me, self.host, at, token);
    }

    /// A deterministic RNG stream private to this process's host.
    ///
    /// Draws depend only on the host's own execution order, which is the
    /// same under the sequential and parallel engines — so replays stay
    /// bit-identical at any worker count.
    pub fn rng(&mut self) -> &mut DetRng {
        self.core.host_rng(self.host)
    }

    /// Adds `delta` to the named metric counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        self.core.count(name, delta);
    }

    /// Records a floating-point observation under `name` (mean/min/max are
    /// retained; see [`Simulation::stat`](crate::Simulation::stat)).
    pub fn observe(&mut self, name: &str, value: f64) {
        self.core.observe(name, value);
    }

    /// Requests that the simulation stop after the current event.
    pub fn stop(&mut self) {
        self.core.request_stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display_and_conversion() {
        let id = ProcessId::from(9);
        assert_eq!(id.to_string(), "proc-9");
        assert_eq!(id.value(), 9);
    }

    #[test]
    fn packet_payload_downcast() {
        let p = Packet::new(
            ProcessId(1),
            ProcessId(2),
            100,
            SimTime::ZERO,
            Arc::new(42u32),
        );
        assert_eq!(p.payload::<u32>(), Some(&42));
        assert_eq!(p.payload::<u64>(), None);
        let handle = p.payload_handle();
        assert_eq!(handle.downcast_ref::<u32>(), Some(&42));
    }
}
