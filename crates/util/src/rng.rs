//! Deterministic pseudo-random numbers.
//!
//! All randomness in the workspace flows through [`DetRng`] so a whole
//! simulated experiment is reproducible from a single seed. The generator
//! is SplitMix64 — tiny, fast, and statistically fine for workload
//! generation (we are not doing cryptography).
//!
//! [`DetRng::fork`] derives an independent child stream; give each
//! simulated component its own fork so adding a component does not perturb
//! the random sequence seen by the others.
//!
//! # Examples
//!
//! ```
//! use mmcs_util::rng::DetRng;
//!
//! let mut a = DetRng::new(42);
//! let mut b = DetRng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//!
//! let x = a.range_f64(0.0, 1.0);
//! assert!((0.0..1.0).contains(&x));
//! ```

use crate::time::SimDuration;

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. The same seed always produces the
    /// same stream.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64: empty range {lo}..{hi}");
        // Modulo bias is negligible for the span sizes used here
        // (workload parameters, far below 2^64).
        lo + self.next_u64() % (hi - lo)
    }

    /// Returns a uniformly distributed integer in `[lo, hi)` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Returns a uniformly distributed float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "range_f64: empty range {lo}..{hi}");
        lo + self.next_f64() * (hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Samples an exponentially distributed duration with the given mean.
    ///
    /// Used for Poisson inter-arrival processes (e.g. background traffic,
    /// GC pause spacing).
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        let u = 1.0 - self.next_f64(); // avoid ln(0)
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// Samples a normally distributed value (Box–Muller) with the given
    /// mean and standard deviation.
    pub fn normal_f64(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Derives an independent child generator.
    ///
    /// The child's stream does not overlap the parent's continuation in
    /// practice (different seed trajectory through the SplitMix64 state
    /// space).
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0, i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "pick: empty slice");
        &slice[self.range_usize(0, slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = DetRng::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = DetRng::new(11);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped instead of panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn exp_duration_mean_is_close() {
        let mut rng = DetRng::new(9);
        let mean = SimDuration::from_millis(100);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exp_duration(mean).as_secs_f64()).sum();
        let avg = total / n as f64;
        assert!((avg - 0.1).abs() < 0.005, "avg {avg} not near 0.1s");
    }

    #[test]
    fn normal_mean_and_spread_are_close() {
        let mut rng = DetRng::new(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal_f64(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = DetRng::new(21);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..10).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..10).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = DetRng::new(19);
        let items = [1, 2, 3];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
