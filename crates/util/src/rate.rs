//! Bandwidth arithmetic and rate limiting.
//!
//! [`Bandwidth`] converts between bits-per-second and the time it takes to
//! serialize a packet onto a link — the core quantity behind the fan-out
//! queueing that produces Figure 3's delay curves. [`TokenBucket`] models
//! rate-limited producers (e.g. a pacing media source).
//!
//! # Examples
//!
//! ```
//! use mmcs_util::rate::Bandwidth;
//!
//! let fast_ethernet = Bandwidth::from_mbps(100);
//! // A 1250-byte packet is 10_000 bits: 100 microseconds at 100 Mbps.
//! assert_eq!(fast_ethernet.transmit_time(1250).as_micros(), 100);
//! ```

use crate::time::{SimDuration, SimTime};
use core::fmt;

/// A link or NIC capacity in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Creates a bandwidth from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero; a zero-capacity link can never transmit
    /// and would make serialization time infinite.
    pub fn from_bps(bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        Self(bps)
    }

    /// Creates a bandwidth from kilobits per second.
    pub fn from_kbps(kbps: u64) -> Self {
        Self::from_bps(kbps * 1_000)
    }

    /// Creates a bandwidth from megabits per second.
    pub fn from_mbps(mbps: u64) -> Self {
        Self::from_bps(mbps * 1_000_000)
    }

    /// Creates a bandwidth from gigabits per second.
    pub fn from_gbps(gbps: u64) -> Self {
        Self::from_bps(gbps * 1_000_000_000)
    }

    /// Bits per second.
    pub const fn bps(self) -> u64 {
        self.0
    }

    /// Megabits per second as a float.
    pub fn mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time to serialize `bytes` onto a link of this capacity.
    pub fn transmit_time(self, bytes: usize) -> SimDuration {
        let bits = bytes as u64 * 8;
        // nanos = bits / bps * 1e9, computed in u128 to avoid overflow.
        let nanos = (bits as u128 * 1_000_000_000u128) / self.0 as u128;
        SimDuration::from_nanos(nanos as u64)
    }

    /// How many bytes this capacity can carry in `window`.
    pub fn bytes_in(self, window: SimDuration) -> u64 {
        (self.0 as u128 * window.as_nanos() as u128 / 8 / 1_000_000_000) as u64
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.1}Gbps", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.1}Mbps", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.1}Kbps", self.0 as f64 / 1e3)
        }
    }
}

/// A token bucket rate limiter over virtual time.
///
/// Tokens are measured in bytes and refill continuously at `rate`. The
/// bucket never holds more than `burst` bytes.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: Bandwidth,
    burst_bytes: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    ///
    /// # Panics
    ///
    /// Panics if `burst_bytes` is zero.
    pub fn new(rate: Bandwidth, burst_bytes: u64, now: SimTime) -> Self {
        assert!(burst_bytes > 0, "burst must be positive");
        Self {
            rate,
            burst_bytes: burst_bytes as f64,
            tokens: burst_bytes as f64,
            last_refill: now,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.tokens = (self.tokens + self.rate.bps() as f64 / 8.0 * elapsed.as_secs_f64())
            .min(self.burst_bytes);
        self.last_refill = now;
    }

    /// Attempts to consume `bytes` tokens at `now`; returns whether the
    /// packet conforms to the rate.
    pub fn try_consume(&mut self, bytes: usize, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// Returns when `bytes` tokens will next be available (possibly `now`).
    pub fn next_available(&mut self, bytes: usize, now: SimTime) -> SimTime {
        self.refill(now);
        if self.tokens >= bytes as f64 {
            now
        } else {
            let deficit = bytes as f64 - self.tokens;
            let secs = deficit * 8.0 / self.rate.bps() as f64;
            now + SimDuration::from_secs_f64(secs)
        }
    }

    /// Currently available tokens in bytes (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> u64 {
        self.refill(now);
        self.tokens as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmit_time_examples() {
        // 600 Kbps video, ~1000-byte packets: 13.33 ms of link time each.
        let video = Bandwidth::from_kbps(600);
        assert_eq!(video.transmit_time(1000).as_millis(), 13);
        // Gigabit: 1250 bytes in 10 us.
        assert_eq!(Bandwidth::from_gbps(1).transmit_time(1250).as_micros(), 10);
    }

    #[test]
    fn bytes_in_window_inverts_transmit_time() {
        let bw = Bandwidth::from_mbps(100);
        let window = SimDuration::from_millis(10);
        // 100 Mbps for 10 ms = 1 Mbit = 125_000 bytes.
        assert_eq!(bw.bytes_in(window), 125_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        let _ = Bandwidth::from_bps(0);
    }

    #[test]
    fn display_units() {
        assert_eq!(Bandwidth::from_kbps(600).to_string(), "600.0Kbps");
        assert_eq!(Bandwidth::from_mbps(240).to_string(), "240.0Mbps");
        assert_eq!(Bandwidth::from_gbps(1).to_string(), "1.0Gbps");
    }

    #[test]
    fn token_bucket_starts_full_and_drains() {
        let t0 = SimTime::ZERO;
        let mut tb = TokenBucket::new(Bandwidth::from_kbps(8), 1000, t0); // 1000 B/s refill
        assert!(tb.try_consume(1000, t0));
        assert!(!tb.try_consume(1, t0));
        // After half a second, 500 bytes refilled.
        let t1 = t0 + SimDuration::from_millis(500);
        assert!(tb.try_consume(500, t1));
        assert!(!tb.try_consume(1, t1));
    }

    #[test]
    fn token_bucket_next_available() {
        let t0 = SimTime::ZERO;
        let mut tb = TokenBucket::new(Bandwidth::from_kbps(8), 1000, t0);
        assert_eq!(tb.next_available(500, t0), t0);
        assert!(tb.try_consume(1000, t0));
        // Need 250 bytes at 1000 B/s -> 250 ms.
        let when = tb.next_available(250, t0);
        assert_eq!(when.as_millis(), 250);
    }

    #[test]
    fn token_bucket_caps_at_burst() {
        let t0 = SimTime::ZERO;
        let mut tb = TokenBucket::new(Bandwidth::from_mbps(8), 100, t0);
        let much_later = t0 + SimDuration::from_secs(60);
        assert_eq!(tb.available(much_later), 100);
    }
}
