//! Shared utilities for the Global-MMCS reproduction.
//!
//! This crate holds the small building blocks every other crate in the
//! workspace uses:
//!
//! * [`id`] — strongly-typed numeric identifiers ([`id::UserId`],
//!   [`id::SessionId`], …) so a user id can never be confused with a
//!   terminal id at compile time.
//! * [`time`] — virtual time ([`time::SimTime`], [`time::SimDuration`])
//!   used by the discrete-event simulator and by every sans-IO protocol
//!   core. Nanosecond resolution, purely arithmetic, no OS clocks.
//! * [`rng`] — a small deterministic PRNG ([`rng::DetRng`], SplitMix64)
//!   so whole-system simulations are bit-reproducible from a seed.
//! * [`xml`] — a minimal XML document model, writer and parser. XGSP,
//!   SOAP and the IM stanzas are XML protocols and no XML crate is on the
//!   allowed offline dependency list, so we carry our own.
//! * [`stats`] — online statistics, histograms and time-series capture
//!   used by the benchmark harnesses.
//! * [`rate`] — bandwidth/serialization arithmetic and a token bucket.
//! * [`pool`] — thread-local size-classed buffer pools backing the
//!   zero-copy wire path (the one module with a dependency: the vendored
//!   `bytes` shim, so pooled frames can escape as shared [`bytes::Bytes`]).
//!
//! # Examples
//!
//! ```
//! use mmcs_util::time::{SimDuration, SimTime};
//!
//! let t = SimTime::ZERO + SimDuration::from_millis(20);
//! assert_eq!(t.as_millis_f64(), 20.0);
//! ```

pub mod id;
pub mod pool;
pub mod rate;
pub mod rng;
pub mod stats;
pub mod time;
pub mod xml;
