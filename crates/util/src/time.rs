//! Virtual time for deterministic simulation.
//!
//! The whole system — simulator, protocol state machines, media sources,
//! statistics — runs on [`SimTime`], a nanosecond counter starting at
//! [`SimTime::ZERO`], and [`SimDuration`], a nanosecond span. No OS clock
//! is ever consulted, which is what makes every experiment in
//! `EXPERIMENTS.md` bit-reproducible.
//!
//! The API intentionally mirrors `std::time::{Instant, Duration}` so the
//! code reads naturally, but the types are plain `u64` arithmetic.
//!
//! The one sanctioned bridge to the OS clock is [`monotonic_now`]: the
//! threaded and network drivers need real elapsed time (span latencies,
//! timeouts), and funneling every reading through this module keeps the
//! `no-direct-instant-now` lint meaningful everywhere else — swap the
//! clock here and the whole workspace follows.
//!
//! # Examples
//!
//! ```
//! use mmcs_util::time::{SimDuration, SimTime};
//!
//! let start = SimTime::ZERO;
//! let later = start + SimDuration::from_millis(150);
//! assert_eq!(later - start, SimDuration::from_millis(150));
//! assert_eq!(later.as_millis_f64(), 150.0);
//! ```

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time with nanosecond resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        Self((secs * 1e9).round() as u64)
    }

    /// Creates a duration from fractional milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Returns the duration as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as whole microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition: clamps at the largest representable duration
    /// instead of overflowing. Use this when either operand can be a
    /// far-future sentinel (e.g. a watermark lookahead near `u64::MAX`).
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Checked addition: `None` instead of overflowing.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}us", self.as_micros())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        assert!(rhs.is_finite() && rhs >= 0.0, "duration scale must be finite and non-negative");
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

/// A point in virtual time, measured as nanoseconds since [`SimTime::ZERO`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch: the instant every run starts at.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinity" sentinel
    /// for timers that are not armed.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Creates an instant from milliseconds since the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000_000)
    }

    /// Creates an instant from seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional milliseconds since the epoch.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; virtual time never runs
    /// backwards, so that would indicate a simulator bug.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Saturating variant of [`SimTime::duration_since`], returning zero
    /// when `earlier` is in the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition: clamps at [`SimTime::MAX`] instead of
    /// overflowing. This is the only sound way to advance an instant
    /// that may already be a far-future sentinel — the simulator's
    /// watermark arithmetic (`safe time + lookahead`) and timer
    /// scheduling both use it so a timer armed near `u64::MAX`
    /// saturates to "never" rather than wrapping into the past.
    pub fn saturating_add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Checked addition: `None` instead of overflowing.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("instant subtraction underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

/// Monotonic wall-clock reading: nanoseconds since the first call in
/// this process, as a [`SimTime`].
///
/// This is the **only** place in the workspace that consults the OS
/// clock (`std::time::Instant`); everything else goes through either
/// the simulator's virtual clock or this function, so the
/// `no-direct-instant-now` lint can forbid `Instant::now()` outright.
/// Readings are monotone non-decreasing and start near zero, which lets
/// wall time and virtual time share the same `SimTime`/`SimDuration`
/// vocabulary (telemetry spans, driver timeouts).
pub fn monotonic_now() -> SimTime {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    SimTime::from_nanos(epoch.elapsed().as_nanos() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_millis_f64(1.5), SimDuration::from_micros(1500));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(a + b, SimDuration::from_millis(14));
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(a * 3, SimDuration::from_millis(30));
        assert_eq!(a / 2, SimDuration::from_millis(5));
        assert_eq!(a * 0.5, SimDuration::from_millis(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_subtraction_underflow_panics() {
        let _ = SimDuration::from_millis(1) - SimDuration::from_millis(2);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimTime::from_millis(100);
        let t1 = t0 + SimDuration::from_millis(50);
        assert_eq!(t1 - t0, SimDuration::from_millis(50));
        assert_eq!(t1.duration_since(t0).as_millis(), 50);
        assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
        assert_eq!(t1 - SimDuration::from_millis(150), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "future")]
    fn duration_since_future_panics() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_millis(1));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "t=1.000000s");
    }

    #[test]
    fn monotonic_now_is_monotone() {
        let a = monotonic_now();
        let b = monotonic_now();
        assert!(b >= a, "wall clock ran backwards: {a} then {b}");
        // Readings are anchored at the first call, so they stay small
        // relative to an absolute epoch (sanity: under an hour).
        assert!(b.as_secs_f64() < 3600.0);
    }

    #[test]
    fn conversions_round_trip() {
        let d = SimDuration::from_nanos(1_234_567_890);
        assert_eq!(d.as_millis(), 1234);
        assert!((d.as_secs_f64() - 1.23456789).abs() < 1e-12);
        let t = SimTime::from_nanos(5_000_000);
        assert_eq!(t.as_millis(), 5);
        assert_eq!(t.as_millis_f64(), 5.0);
    }

    #[test]
    fn saturating_add_clamps_at_the_far_future() {
        // The watermark-boundary cases: an instant or duration already
        // near u64::MAX must clamp, not wrap into the past.
        let near_max = SimTime::from_nanos(u64::MAX - 10);
        assert_eq!(near_max.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(
            near_max.saturating_add(SimDuration::from_nanos(10)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::from_secs(1).saturating_add(SimDuration::from_secs(2)),
            SimTime::from_secs(3)
        );
        let huge = SimDuration::from_nanos(u64::MAX - 1);
        assert_eq!(
            huge.saturating_add(SimDuration::from_secs(5)),
            SimDuration::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn checked_add_reports_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
        assert_eq!(
            SimTime::from_secs(1).checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(2))
        );
        assert_eq!(
            SimDuration::from_nanos(u64::MAX).checked_add(SimDuration::from_nanos(1)),
            None
        );
        assert_eq!(
            SimDuration::from_secs(1).checked_add(SimDuration::from_secs(1)),
            Some(SimDuration::from_secs(2))
        );
    }
}
