//! Statistics collection for experiments.
//!
//! Three tools, matching what the paper's figures need:
//!
//! * [`OnlineStats`] — streaming count/mean/variance/min/max (Welford).
//! * [`SampleSeries`] — stores every sample so percentiles and the
//!   per-packet series of Figure 3 can be reported and written to CSV.
//! * [`Histogram`] — fixed-width bucket counts for distribution shape.
//!
//! # Examples
//!
//! ```
//! use mmcs_util::stats::OnlineStats;
//!
//! let mut s = OnlineStats::new();
//! for x in [1.0, 2.0, 3.0] {
//!     s.record(x);
//! }
//! assert_eq!(s.mean(), 2.0);
//! assert_eq!(s.count(), 3);
//! ```

use core::cell::{Cell, RefCell};
use core::fmt;

/// Streaming mean/variance/min/max using Welford's algorithm.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            if self.count == 0 { 0.0 } else { self.min },
            if self.count == 0 { 0.0 } else { self.max },
        )
    }
}

/// Stores every sample for percentile queries and series export.
///
/// Percentile queries sort lazily and cache the sorted order, so a
/// burst of quantile reads (p50/p90/p99 in a report) sorts once;
/// recording a new sample invalidates the cache. The cache lives in a
/// [`RefCell`], which makes the type `!Sync` — experiment collection is
/// single-threaded, so nothing shares a series across threads.
pub struct SampleSeries {
    samples: Vec<f64>,
    sorted: RefCell<Option<Vec<f64>>>,
    sorts: Cell<u64>,
}

impl SampleSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            sorted: RefCell::new(None),
            sorts: Cell::new(0),
        }
    }

    /// Appends one sample.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted.get_mut().take();
    }

    /// All samples in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using nearest-rank interpolation, or 0
    /// when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "percentile out of range: {q}");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut cache = self.sorted.borrow_mut();
        let sorted = cache.get_or_insert_with(|| {
            self.sorts.set(self.sorts.get() + 1);
            let mut sorted = self.samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in series"));
            sorted
        });
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    }

    /// How many times percentile queries have had to sort; a burst of
    /// queries against an unchanged series costs exactly one sort.
    pub fn sorts_performed(&self) -> u64 {
        self.sorts.get()
    }

    /// Downsamples the series by averaging consecutive windows of `width`
    /// samples — how we turn 2000 per-packet values into a plot-friendly
    /// series like the paper's Figure 3.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn window_means(&self, width: usize) -> Vec<f64> {
        assert!(width > 0, "window width must be positive");
        self.samples
            .chunks(width)
            .map(|chunk| chunk.iter().sum::<f64>() / chunk.len() as f64)
            .collect()
    }

    /// Writes the series as two-column CSV (`index,value`) with a header.
    pub fn to_csv(&self, value_name: &str) -> String {
        let mut out = format!("index,{value_name}\n");
        for (i, v) in self.samples.iter().enumerate() {
            out.push_str(&format!("{i},{v:.6}\n"));
        }
        out
    }
}

impl fmt::Debug for SampleSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SampleSeries")
            .field("samples", &self.samples)
            .finish_non_exhaustive()
    }
}

impl Clone for SampleSeries {
    fn clone(&self) -> Self {
        // The sort cache is cheap to rebuild; clones start cold.
        Self {
            samples: self.samples.clone(),
            sorted: RefCell::new(None),
            sorts: Cell::new(0),
        }
    }
}

impl PartialEq for SampleSeries {
    fn eq(&self, other: &Self) -> bool {
        // Cache state is not part of a series' value.
        self.samples == other.samples
    }
}

impl Default for SampleSeries {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<f64> for SampleSeries {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self {
            samples: iter.into_iter().collect(),
            sorted: RefCell::new(None),
            sorts: Cell::new(0),
        }
    }
}

impl Extend<f64> for SampleSeries {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.samples.extend(iter);
        self.sorted.get_mut().take();
    }
}

/// Fixed-width bucket histogram over `[lo, hi)` with overflow/underflow
/// buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range is empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Self {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            if let Some(bucket) = self.buckets.get_mut(idx) {
                *bucket += 1;
            }
        }
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The inclusive-exclusive value range `[lo, hi)` of bucket `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn bucket_range(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.buckets.len(), "bucket index out of range");
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + width * idx as f64, self.lo + width * (idx + 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.count(), 0);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(1.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn series_percentiles() {
        let s: SampleSeries = (1..=100).map(|i| i as f64).collect();
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(1.0), 100.0);
        // Nearest-rank: index round(99 * 0.5) = 50 -> value 51.
        assert_eq!(s.percentile(0.5), 51.0);
        assert!((s.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn repeated_percentiles_sort_once_and_agree() {
        let mut s: SampleSeries = (0..500).map(|i| ((i * 7919) % 500) as f64).collect();
        let first: Vec<f64> = [0.0, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| s.percentile(q))
            .collect();
        for _ in 0..10 {
            let again: Vec<f64> = [0.0, 0.5, 0.9, 0.99, 1.0]
                .iter()
                .map(|&q| s.percentile(q))
                .collect();
            assert_eq!(again, first);
        }
        assert_eq!(s.sorts_performed(), 1);

        // Recording invalidates the cache: one more sort, new answers
        // reflect the new sample.
        s.record(f64::from(10_000));
        assert_eq!(s.percentile(1.0), 10_000.0);
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.sorts_performed(), 2);
    }

    #[test]
    fn series_window_means() {
        let s: SampleSeries = vec![1.0, 3.0, 5.0, 7.0, 10.0].into_iter().collect();
        assert_eq!(s.window_means(2), vec![2.0, 6.0, 10.0]);
    }

    #[test]
    fn series_csv_has_header_and_rows() {
        let mut s = SampleSeries::new();
        s.record(1.5);
        let csv = s.to_csv("delay_ms");
        assert!(csv.starts_with("index,delay_ms\n"));
        assert!(csv.contains("0,1.500000"));
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.0);
        h.record(5.5);
        h.record(9.999);
        h.record(10.0);
        h.record(42.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.total(), 6);
        assert_eq!(h.bucket_range(0), (0.0, 1.0));
        assert_eq!(h.bucket_range(9), (9.0, 10.0));
    }
}
