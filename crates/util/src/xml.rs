//! A minimal XML document model, writer and parser.
//!
//! XGSP, SOAP and the IM stanzas are XML protocols; no XML crate is on the
//! allowed offline dependency list, so this module provides the subset the
//! workspace needs: elements, attributes, text content, entity escaping,
//! comments, CDATA and an optional `<?xml …?>` declaration. Namespaces are
//! carried verbatim in names/attributes (no prefix resolution) — exactly
//! how the 2003-era toolkits the paper used treated them.
//!
//! # Examples
//!
//! ```
//! use mmcs_util::xml::Element;
//!
//! let msg = Element::new("xgsp:join")
//!     .with_attr("session", "session-7")
//!     .with_child(Element::new("user").with_text("alice"));
//! let text = msg.to_xml();
//! let parsed = Element::parse(&text)?;
//! assert_eq!(parsed.attr("session"), Some("session-7"));
//! assert_eq!(parsed.child("user").unwrap().text(), "alice");
//! # Ok::<(), mmcs_util::xml::ParseXmlError>(())
//! ```

use core::fmt;

/// A node in an XML tree: a child element or a run of text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// Character data (already unescaped).
    Text(String),
}

/// An XML element: name, attributes and child nodes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Node>,
}

impl Element {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The tag name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds or replaces an attribute, builder style.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Appends a child element, builder style.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Appends a text node, builder style.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Adds or replaces an attribute.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.attrs.push((key, value));
        }
    }

    /// Appends a child element.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Appends a text node.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// Looks up an attribute value.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All attributes in document order.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attrs
    }

    /// All child nodes in document order.
    pub fn nodes(&self) -> &[Node] {
        &self.children
    }

    /// Iterates over child *elements* only.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// The first child element with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// All child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// The concatenated text content of this element (direct text nodes
    /// only, not descendants).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let Node::Text(t) = node {
                out.push_str(t);
            }
        }
        out
    }

    /// Convenience: the text of the first child element with `name`.
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.child(name).map(Element::text)
    }

    /// Serializes the element (without an XML declaration).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes the element with a standard `<?xml …?>` declaration,
    /// which SOAP payloads conventionally carry.
    pub fn to_document(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out, true);
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for node in &self.children {
            match node {
                Node::Element(e) => e.write(out),
                Node::Text(t) => escape_into(t, out, false),
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Parses a document or fragment into its root element.
    ///
    /// Leading XML declarations, comments and whitespace are skipped;
    /// trailing comments/whitespace after the root element are allowed.
    ///
    /// # Errors
    ///
    /// Returns [`ParseXmlError`] on malformed input: unclosed tags,
    /// mismatched end tags, bad attribute syntax, unknown entities, or
    /// trailing garbage.
    pub fn parse(input: &str) -> Result<Element, ParseXmlError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_prolog();
        let root = parser.parse_element()?;
        parser.skip_misc();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing content after root element"));
        }
        Ok(root)
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

impl std::str::FromStr for Element {
    type Err = ParseXmlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Element::parse(s)
    }
}

/// Error produced when parsing malformed XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXmlError {
    message: String,
    offset: usize,
}

impl ParseXmlError {
    /// Byte offset in the input where the problem was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid xml at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseXmlError {}

fn escape_into(s: &str, out: &mut String, in_attr: bool) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if in_attr => out.push_str("&quot;"),
            '\'' if in_attr => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseXmlError {
        ParseXmlError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, needle: &str) -> bool {
        while self.pos < self.bytes.len() {
            if self.starts_with(needle) {
                self.pos += needle.len();
                return true;
            }
            self.pos += 1;
        }
        false
    }

    /// Skips declaration, comments, processing instructions, whitespace.
    fn skip_prolog(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>");
            } else if self.starts_with("<!--") {
                self.skip_until("-->");
            } else {
                return;
            }
        }
    }

    /// Skips trailing comments/whitespace after the root element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if !self.skip_until("-->") {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseXmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element, ParseXmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut element = Element::new(name);

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1;
                    let value = unescape(&raw).map_err(|m| self.err(m))?;
                    element.set_attr(key, value);
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }

        // Content until matching end tag.
        loop {
            if self.starts_with("<!--") {
                if !self.skip_until("-->") {
                    return Err(self.err("unterminated comment"));
                }
                continue;
            }
            if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let start = self.pos;
                if !self.skip_until("]]>") {
                    return Err(self.err("unterminated CDATA section"));
                }
                let text =
                    String::from_utf8_lossy(&self.bytes[start..self.pos - 3]).into_owned();
                element.push_text(text);
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let end_name = self.parse_name()?;
                if end_name != element.name {
                    return Err(self.err(format!(
                        "mismatched end tag: expected </{}>, found </{end_name}>",
                        element.name
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in end tag"));
                }
                self.pos += 1;
                return Ok(element);
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.parse_element()?;
                    element.push_child(child);
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'<') {
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    let text = unescape(&raw).map_err(|m| self.err(m))?;
                    // Pure-whitespace runs between elements are formatting,
                    // not data; keep text only if it has substance or the
                    // element has no element children yet (mixed content).
                    if !text.trim().is_empty() {
                        element.push_text(text);
                    }
                }
                None => return Err(self.err("unexpected end of input in element content")),
            }
        }
    }
}

fn unescape(raw: &str) -> Result<String, String> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let end = rest
            .find(';')
            .ok_or_else(|| "unterminated entity".to_owned())?;
        let entity = &rest[1..end];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("bad hex character reference &{entity};"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| format!("invalid character reference &{entity};"))?,
                );
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..]
                    .parse()
                    .map_err(|_| format!("bad character reference &{entity};"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| format!("invalid character reference &{entity};"))?,
                );
            }
            other => return Err(format!("unknown entity &{other};")),
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_serialize() {
        let e = Element::new("a")
            .with_attr("k", "v")
            .with_child(Element::new("b").with_text("hi"))
            .with_child(Element::new("c"));
        assert_eq!(e.to_xml(), r#"<a k="v"><b>hi</b><c/></a>"#);
    }

    #[test]
    fn document_has_declaration() {
        let doc = Element::new("root").to_document();
        assert!(doc.starts_with("<?xml version=\"1.0\""));
        assert!(doc.ends_with("<root/>"));
    }

    #[test]
    fn parse_round_trip() {
        let src = r#"<session id="7"><member role="chair">alice</member><member>bob</member></session>"#;
        let e = Element::parse(src).unwrap();
        assert_eq!(e.name(), "session");
        assert_eq!(e.attr("id"), Some("7"));
        let members: Vec<_> = e.children_named("member").collect();
        assert_eq!(members.len(), 2);
        assert_eq!(members[0].attr("role"), Some("chair"));
        assert_eq!(members[0].text(), "alice");
        assert_eq!(e.to_xml(), src);
    }

    #[test]
    fn escaping_round_trips() {
        let e = Element::new("t")
            .with_attr("q", "a\"b'c<d>e&f")
            .with_text("x < y && z > \"w\"");
        let parsed = Element::parse(&e.to_xml()).unwrap();
        assert_eq!(parsed.attr("q"), Some("a\"b'c<d>e&f"));
        assert_eq!(parsed.text(), "x < y && z > \"w\"");
    }

    #[test]
    fn numeric_entities() {
        let e = Element::parse("<t>&#65;&#x42;</t>").unwrap();
        assert_eq!(e.text(), "AB");
    }

    #[test]
    fn prolog_comments_and_whitespace_are_skipped() {
        let src = "\n<?xml version=\"1.0\"?>\n<!-- hello -->\n<root>\n  <a/>\n</root>\n<!-- bye -->\n";
        let e = Element::parse(src).unwrap();
        assert_eq!(e.name(), "root");
        assert!(e.child("a").is_some());
        // Inter-element whitespace is not kept as text.
        assert_eq!(e.text(), "");
    }

    #[test]
    fn cdata_is_preserved_verbatim() {
        let e = Element::parse("<t><![CDATA[a <raw> & b]]></t>").unwrap();
        assert_eq!(e.text(), "a <raw> & b");
    }

    #[test]
    fn mismatched_tags_error() {
        let err = Element::parse("<a><b></a></b>").unwrap_err();
        assert!(err.to_string().contains("mismatched end tag"), "{err}");
    }

    #[test]
    fn trailing_garbage_errors() {
        let err = Element::parse("<a/>junk").unwrap_err();
        assert!(err.to_string().contains("trailing content"), "{err}");
    }

    #[test]
    fn unknown_entity_errors() {
        let err = Element::parse("<a>&bogus;</a>").unwrap_err();
        assert!(err.to_string().contains("unknown entity"), "{err}");
    }

    #[test]
    fn unterminated_inputs_error() {
        assert!(Element::parse("<a>").is_err());
        assert!(Element::parse("<a attr=>").is_err());
        assert!(Element::parse("<a attr=\"x>").is_err());
        assert!(Element::parse("<a><![CDATA[x]]</a>").is_err());
        assert!(Element::parse("").is_err());
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("x");
        e.set_attr("k", "1");
        e.set_attr("k", "2");
        assert_eq!(e.attr("k"), Some("2"));
        assert_eq!(e.attrs().len(), 1);
    }

    #[test]
    fn namespaced_names_parse() {
        let e = Element::parse(r#"<soap:Envelope xmlns:soap="http://x"><soap:Body/></soap:Envelope>"#)
            .unwrap();
        assert_eq!(e.name(), "soap:Envelope");
        assert_eq!(e.attr("xmlns:soap"), Some("http://x"));
        assert!(e.child("soap:Body").is_some());
    }

    #[test]
    fn child_text_helper() {
        let e = Element::parse("<m><user>alice</user></m>").unwrap();
        assert_eq!(e.child_text("user").as_deref(), Some("alice"));
        assert_eq!(e.child_text("missing"), None);
    }

    #[test]
    fn from_str_impl() {
        let e: Element = "<ok/>".parse().unwrap();
        assert_eq!(e.name(), "ok");
    }
}
