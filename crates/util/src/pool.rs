//! Thread-local size-classed buffer pools for the hot wire path.
//!
//! Encoding an event or RTP packet needs a scratch buffer for a few
//! microseconds; allocating one per packet puts the allocator on the
//! per-packet cost path the paper's capacity claims depend on. This
//! module keeps small free lists of fixed-capacity `Vec<u8>` buffers in
//! thread-local storage, checked out as [`PooledBuf`] and returned
//! automatically on drop — including after the bytes have escaped as a
//! shared [`Bytes`] via [`PooledBuf::freeze`], in which case the last
//! surviving clone performs the return (possibly on another thread's
//! free list, which is fine: lists are per-thread but interchangeable).
//!
//! Four size classes cover the workspace's traffic shapes: control
//! events and audio RTP (≤ 256 B), video RTP and typical events (≤ 2 KiB),
//! jumbo events (≤ 16 KiB) and streaming chunks (≤ 128 KiB). Requests
//! larger than the top class fall back to plain heap allocation and are
//! counted, not pooled.
//!
//! # Examples
//!
//! ```
//! use bytes::BufMut;
//! use mmcs_util::pool;
//!
//! let mut buf = pool::acquire(64);
//! buf.put_slice(b"frame");
//! assert_eq!(buf.as_slice(), b"frame");
//! drop(buf); // returned to this thread's free list
//! let again = pool::acquire(64);
//! assert!(again.capacity() >= 64);
//! ```

use std::cell::RefCell;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;

/// Buffer capacities of the four pool classes, ascending.
pub const SIZE_CLASSES: [usize; 4] = [256, 2_048, 16_384, 131_072];

/// Free-list depth cap per class per thread; buffers returned beyond the
/// cap are simply freed so an idle thread cannot hoard memory.
pub const PER_CLASS_CAP: usize = 64;

thread_local! {
    static FREE: [RefCell<Vec<Vec<u8>>>; 4] = const {
        [
            RefCell::new(Vec::new()),
            RefCell::new(Vec::new()),
            RefCell::new(Vec::new()),
            RefCell::new(Vec::new()),
        ]
    };
}

// Process-wide telemetry. The pool lives below the telemetry crate in the
// dependency graph, so it carries its own relaxed atomics; the telemetry
// registry snapshots them via [`stats`].
// `outstanding` is derived in [`stats`] as acquisitions minus returns
// rather than maintained as a fifth counter: every acquire and every
// release already bump exactly one counter below, and adding a second
// RMW to each would put a measurable cost on the per-frame hot path.
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static OVERSIZE: AtomicU64 = AtomicU64::new(0);
static RETURNS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the pool counters (process-wide, cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served from a free list.
    pub hits: u64,
    /// Acquisitions that had to allocate a fresh class-sized buffer.
    pub misses: u64,
    /// Acquisitions larger than the top class (unpooled fallback).
    pub oversize: u64,
    /// Buffers handed back (by `PooledBuf` drop or frozen-`Bytes` drop).
    pub returns: u64,
    /// Buffers currently checked out (acquired minus returned).
    pub outstanding: i64,
}

/// Snapshots the process-wide pool counters.
pub fn stats() -> PoolStats {
    let hits = HITS.load(Ordering::Relaxed);
    let misses = MISSES.load(Ordering::Relaxed);
    let oversize = OVERSIZE.load(Ordering::Relaxed);
    let returns = RETURNS.load(Ordering::Relaxed);
    PoolStats {
        hits,
        misses,
        oversize,
        returns,
        outstanding: (hits + misses + oversize) as i64 - returns as i64,
    }
}

#[inline]
fn class_for(min_capacity: usize) -> Option<usize> {
    SIZE_CLASSES.iter().position(|&c| c >= min_capacity)
}

/// Checks out an empty buffer with at least `min_capacity` bytes of
/// capacity. Warm requests within the size classes touch no allocator;
/// oversize requests fall back to a plain heap allocation.
#[inline]
pub fn acquire(min_capacity: usize) -> PooledBuf {
    let Some(idx) = class_for(min_capacity) else {
        OVERSIZE.fetch_add(1, Ordering::Relaxed);
        return PooledBuf {
            buf: Vec::with_capacity(min_capacity),
            class: None,
            armed: true,
        };
    };
    // `class_for` returned `position`, so `idx < SIZE_CLASSES.len()`; the
    // `get` forms keep acquire panic-free on the hot path.
    let reused = FREE.with(|lists| lists.get(idx).and_then(|list| list.borrow_mut().pop()));
    let buf = match reused {
        Some(mut buf) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            buf.clear();
            buf
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            let cap = SIZE_CLASSES.get(idx).copied().unwrap_or(min_capacity);
            Vec::with_capacity(cap)
        }
    };
    PooledBuf {
        buf,
        class: Some(idx),
        armed: true,
    }
}

#[inline]
fn release(buf: Vec<u8>, class: Option<usize>) {
    RETURNS.fetch_add(1, Ordering::Relaxed);
    if let Some(idx) = class {
        // `try_with` so returns during TLS teardown degrade to a free.
        let _ = FREE.try_with(|lists| {
            let Some(slot) = lists.get(idx) else {
                return;
            };
            let mut list = slot.borrow_mut();
            if list.len() < PER_CLASS_CAP {
                list.push(buf);
            }
        });
    }
}

/// A checked-out pool buffer. Write through [`bytes::BufMut`]; read via
/// [`Deref`]/[`PooledBuf::as_slice`]. Dropping it returns the backing
/// storage to the dropping thread's free list.
#[derive(Debug)]
pub struct PooledBuf {
    buf: Vec<u8>,
    /// Pool class index, or `None` for an oversize (unpooled) buffer.
    class: Option<usize>,
    /// Cleared by `freeze`, which transfers the return duty to the
    /// `Bytes` owner.
    armed: bool,
}

impl PooledBuf {
    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Usable capacity without reallocating.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Discards the written bytes, keeping the capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Converts the written bytes into a shared [`Bytes`] without
    /// copying. The pool buffer rides along as the owner: when the last
    /// clone of the returned `Bytes` drops, the storage goes back to a
    /// free list. (The `Bytes` handle itself costs one small `Arc`
    /// allocation — use plain drop, not freeze, where the proof of zero
    /// allocations matters.)
    pub fn freeze(mut self) -> Bytes {
        let buf = std::mem::take(&mut self.buf);
        let class = self.class;
        self.armed = false;
        Bytes::from_owner(Reclaim { buf, class })
    }
}

impl Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl bytes::BufMut for PooledBuf {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if self.armed {
            release(std::mem::take(&mut self.buf), self.class);
        }
    }
}

/// The owner installed behind a frozen pooled buffer: keeps the storage
/// alive for the `Bytes` views and returns it to the pool on final drop.
struct Reclaim {
    buf: Vec<u8>,
    class: Option<usize>,
}

impl AsRef<[u8]> for Reclaim {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl Drop for Reclaim {
    fn drop(&mut self) {
        release(std::mem::take(&mut self.buf), self.class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    #[test]
    fn class_selection_rounds_up() {
        assert_eq!(class_for(0), Some(0));
        assert_eq!(class_for(256), Some(0));
        assert_eq!(class_for(257), Some(1));
        assert_eq!(class_for(131_072), Some(3));
        assert_eq!(class_for(131_073), None);
    }

    #[test]
    fn acquire_reuses_returned_buffer() {
        let mut first = acquire(1_000);
        first.put_slice(b"warm");
        let ptr = first.as_slice().as_ptr();
        assert!(first.capacity() >= 2_048, "rounded up to the class size");
        drop(first);
        let second = acquire(1_000);
        assert_eq!(second.as_slice().as_ptr(), ptr, "same storage came back");
        assert!(second.is_empty(), "reused buffer is cleared");
    }

    #[test]
    fn freeze_returns_storage_when_last_view_drops() {
        let before = stats();
        let mut buf = acquire(100);
        buf.put_slice(b"0123456789");
        let ptr = buf.as_slice().as_ptr();
        let frozen = buf.freeze();
        let view = frozen.slice(2..6);
        drop(frozen);
        assert_eq!(&view[..], b"2345", "view outlives the original handle");
        drop(view);
        let after = stats();
        assert_eq!(after.returns - before.returns, 1, "exactly one return");
        // The storage is back on this thread's free list.
        let again = acquire(100);
        assert_eq!(again.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn oversize_requests_fall_back_to_heap() {
        let before = stats();
        let huge = acquire(200_000);
        assert!(huge.capacity() >= 200_000);
        drop(huge);
        let after = stats();
        assert_eq!(after.oversize - before.oversize, 1);
        assert_eq!(after.returns - before.returns, 1);
    }

    #[test]
    fn outstanding_tracks_checkouts() {
        let before = stats().outstanding;
        let a = acquire(10);
        let b = acquire(10);
        assert_eq!(stats().outstanding - before, 2);
        drop(a);
        drop(b);
        assert_eq!(stats().outstanding - before, 0);
    }

    #[test]
    fn free_list_depth_is_capped() {
        // Fill the smallest class past the cap; the extras must be freed,
        // not hoarded.
        let held: Vec<PooledBuf> = (0..PER_CLASS_CAP + 8).map(|_| acquire(1)).collect();
        drop(held);
        let depth = FREE.with(|lists| lists[0].borrow().len());
        assert!(depth <= PER_CLASS_CAP);
    }
}
