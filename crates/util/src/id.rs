//! Strongly-typed numeric identifiers.
//!
//! Every entity in Global-MMCS (users, terminals, sessions, communities,
//! brokers, simulated hosts, …) is identified by a `u64` wrapped in a
//! dedicated newtype, following the C-NEWTYPE guideline: a
//! [`UserId`] can never be passed where a [`TerminalId`] is expected.
//!
//! Ids are allocated by [`IdAllocator`], a simple monotonically increasing
//! counter that each directory/server owns.
//!
//! # Examples
//!
//! ```
//! use mmcs_util::id::{IdAllocator, UserId};
//!
//! let mut alloc = IdAllocator::new();
//! let a: UserId = alloc.next();
//! let b: UserId = alloc.next();
//! assert_ne!(a, b);
//! assert_eq!(a.value() + 1, b.value());
//! ```

use core::fmt;
use std::marker::PhantomData;

/// Implements a `u64`-backed identifier newtype with the common traits.
macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw `u64` value.
            pub const fn from_raw(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the underlying `u64` value.
            pub const fn value(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}-{}", $prefix, self.0)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> $name {
                $name(raw)
            }
        }
    };
}

define_id!(
    /// Identifies a registered user account in the user directory.
    UserId,
    "user"
);
define_id!(
    /// Identifies a media terminal (an H.323 endpoint, SIP UA, Admire
    /// client, player, …) bound to a user.
    TerminalId,
    "term"
);
define_id!(
    /// Identifies an XGSP collaboration session (a meeting).
    SessionId,
    "session"
);
define_id!(
    /// Identifies an autonomous collaboration community (e.g. the Admire
    /// deployment in China, an H.323 administrative domain).
    CommunityId,
    "community"
);
define_id!(
    /// Identifies one broker node in the NaradaBrokering-style network.
    BrokerId,
    "broker"
);
define_id!(
    /// Identifies a client connection attached to a broker.
    ClientId,
    "client"
);
define_id!(
    /// Identifies a host (machine) in the simulated network.
    HostId,
    "host"
);
define_id!(
    /// Identifies a collaboration server registered through WSDL-CI
    /// (an MCU, an Admire server, a Helix server, …).
    ServerId,
    "server"
);
define_id!(
    /// Identifies a media stream within a session (one RTP source).
    StreamId,
    "stream"
);
define_id!(
    /// Identifies a scheduled reservation in the meeting calendar.
    ReservationId,
    "reservation"
);

/// Monotonic allocator for one id type.
///
/// Each directory owns its own allocator; ids are unique within that
/// directory, not globally.
///
/// # Examples
///
/// ```
/// use mmcs_util::id::{IdAllocator, SessionId};
///
/// let mut alloc: IdAllocator<SessionId> = IdAllocator::new();
/// assert_eq!(alloc.next().value(), 1);
/// assert_eq!(alloc.next().value(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct IdAllocator<T> {
    next: u64,
    _marker: PhantomData<fn() -> T>,
}

impl<T: From<u64>> IdAllocator<T> {
    /// Creates an allocator whose first id has value 1.
    ///
    /// Value 0 is reserved so that `Default`-constructed ids are
    /// recognizably "unset".
    pub fn new() -> Self {
        Self {
            next: 1,
            _marker: PhantomData,
        }
    }

    /// Returns the next id, advancing the counter.
    // Not an Iterator: allocation never ends and needs &mut discipline.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> T {
        let id = T::from(self.next);
        self.next += 1;
        id
    }

    /// Returns how many ids have been handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next - 1
    }
}

impl<T: From<u64>> Default for IdAllocator<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(UserId::from_raw(7).to_string(), "user-7");
        assert_eq!(SessionId::from_raw(3).to_string(), "session-3");
        assert_eq!(BrokerId::from_raw(0).to_string(), "broker-0");
    }

    #[test]
    fn ids_round_trip_through_u64() {
        let id = TerminalId::from_raw(42);
        let raw: u64 = id.into();
        assert_eq!(TerminalId::from(raw), id);
    }

    #[test]
    fn allocator_is_monotonic_and_starts_at_one() {
        let mut alloc: IdAllocator<HostId> = IdAllocator::new();
        let first = alloc.next();
        assert_eq!(first.value(), 1);
        let mut prev = first;
        for _ in 0..100 {
            let next = alloc.next();
            assert!(next > prev);
            prev = next;
        }
        assert_eq!(alloc.allocated(), 101);
    }

    #[test]
    fn default_id_is_zero_and_distinct_from_allocated() {
        let mut alloc: IdAllocator<ClientId> = IdAllocator::new();
        assert_ne!(ClientId::default(), alloc.next());
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(StreamId::from_raw(1) < StreamId::from_raw(2));
    }
}
