//! The JMF-reflector baseline.
//!
//! The paper compares NaradaBrokering against "a JMF reflector program
//! written in Java": a single process that receives each RTP packet and
//! retransmits it to every receiver over unicast, one send at a time,
//! with no transmission optimizations — running on a JVM that
//! periodically stops the world to collect garbage. This crate models
//! exactly those mechanisms:
//!
//! * [`ReflectorProcess`] — serial per-receiver fan-out with a
//!   configurable (higher) per-send CPU cost and **no batching**.
//! * [`GcModel`] — stop-the-world pauses with exponential spacing and
//!   normally distributed length, injected as CPU time on the reflector's
//!   host.
//! * [`RtpDirectSender`] / [`RtpDirectSink`] — media endpoints that talk
//!   raw RTP to the reflector (no broker event framing), mirroring how
//!   the paper's JMF clients worked.
//!
//! The `fig3` benchmark runs this reflector and the broker side by side
//! on identical workloads; `EXPERIMENTS.md` records how the calibrated
//! constants (`ReflectorCost::jmf`, `GcModel::java_1_4`) were chosen.
//!
//! # Examples
//!
//! ```
//! use mmcs_jmf::{ReflectorCost, GcModel};
//!
//! let cost = ReflectorCost::jmf();
//! // The JMF reflector's marginal per-send cost exceeds the optimized
//! // broker's batched marginal cost for the same packet.
//! let broker = mmcs_broker::batch::CostModel::narada();
//! assert!(cost.send_cost(1060) > broker.send_cost(1, 1060));
//! assert!(GcModel::java_1_4().mean_interval.as_millis() > 0);
//! ```

use bytes::Bytes;
use mmcs_rtp::packet::RtpPacket;
use mmcs_rtp::recv::ReceiverStats;
use mmcs_rtp::source::{AudioSource, VideoSource};
use mmcs_sim::{Context, Packet, Process, ProcessId};
use mmcs_util::time::{SimDuration, SimTime};

/// CPU cost profile of the reflector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReflectorCost {
    /// Fixed cost to receive and classify one packet.
    pub routing: SimDuration,
    /// Cost of each unicast retransmission (paid in full for every
    /// receiver — the JMF reflector has no batching).
    pub per_send: SimDuration,
    /// Additional cost per kilobyte copied (Java buffer churn).
    pub per_kilobyte: SimDuration,
}

impl ReflectorCost {
    /// The calibrated JMF profile (see `EXPERIMENTS.md`): roughly 3× the
    /// optimized broker's per-send cost, as the paper's 229 ms vs 81 ms
    /// averages imply.
    pub fn jmf() -> Self {
        Self {
            routing: SimDuration::from_micros(40),
            per_send: SimDuration::from_nanos(20_300),
            per_kilobyte: SimDuration::from_micros(9),
        }
    }

    /// Cost of one retransmission of `bytes`.
    pub fn send_cost(&self, bytes: usize) -> SimDuration {
        self.per_send + self.per_kilobyte * (bytes as f64 / 1024.0)
    }
}

/// Stop-the-world garbage-collection pause model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcModel {
    /// Mean spacing between pauses (exponentially distributed).
    pub mean_interval: SimDuration,
    /// Mean pause length.
    pub pause_mean: SimDuration,
    /// Pause length standard deviation.
    pub pause_std: SimDuration,
}

impl GcModel {
    /// A 2003-era JVM under allocation pressure from packet buffers:
    /// a full-heap pause every ~2.5 s averaging ~120 ms.
    pub fn java_1_4() -> Self {
        Self {
            mean_interval: SimDuration::from_millis(2500),
            pause_mean: SimDuration::from_millis(120),
            pause_std: SimDuration::from_millis(40),
        }
    }

    /// No pauses at all (for ablations).
    pub fn none() -> Self {
        Self {
            mean_interval: SimDuration::from_secs(u64::MAX / 2_000_000_000),
            pause_mean: SimDuration::ZERO,
            pause_std: SimDuration::ZERO,
        }
    }
}

/// A raw RTP packet in flight between JMF endpoints, stamped with its
/// original send time so sinks can measure end-to-end delay.
#[derive(Debug, Clone)]
pub struct RawRtp {
    /// Encoded RTP packet.
    pub bytes: Bytes,
    /// When the original sender emitted it.
    pub sent_at: SimTime,
}

/// Messages understood by the reflector.
#[derive(Debug, Clone)]
pub enum ReflectorMsg {
    /// A receiver registers for the reflected stream.
    Register(ProcessId),
    /// An RTP packet to reflect.
    Rtp(RawRtp),
}

/// UDP/IP framing bytes per reflected packet.
const UDP_OVERHEAD: usize = 28;

/// The serial unicast reflector. See the [crate docs](crate).
pub struct ReflectorProcess {
    cost: ReflectorCost,
    gc: GcModel,
    receivers: Vec<ProcessId>,
    reflected: u64,
}

impl ReflectorProcess {
    /// Creates a reflector with the given cost and GC profiles.
    pub fn new(cost: ReflectorCost, gc: GcModel) -> Self {
        Self {
            cost,
            gc,
            receivers: Vec::new(),
            reflected: 0,
        }
    }

    /// Pre-registers a receiver (the bench harness uses this instead of
    /// `Register` messages when the topology is static).
    pub fn add_receiver(&mut self, receiver: ProcessId) {
        self.receivers.push(receiver);
    }

    /// Packets reflected so far (each counted once regardless of fan-out).
    pub fn reflected(&self) -> u64 {
        self.reflected
    }

    fn schedule_gc(&mut self, ctx: &mut Context<'_>) {
        let interval = {
            let mean = self.gc.mean_interval;
            ctx.rng().exp_duration(mean)
        };
        ctx.set_timer(interval, 1);
    }
}

impl Process for ReflectorProcess {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.gc.pause_mean > SimDuration::ZERO {
            self.schedule_gc(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(msg) = packet.payload::<ReflectorMsg>() else {
            ctx.count("reflector.bad_payload", 1);
            return;
        };
        match msg {
            ReflectorMsg::Register(receiver) => {
                self.receivers.push(*receiver);
            }
            ReflectorMsg::Rtp(raw) => {
                ctx.spend_cpu(self.cost.routing);
                let wire = raw.bytes.len() + UDP_OVERHEAD;
                let shared = packet.payload_handle();
                for receiver in &self.receivers {
                    // Serial unicast: every receiver pays the full cost.
                    ctx.spend_cpu(self.cost.send_cost(wire));
                    ctx.send_shared(*receiver, std::sync::Arc::clone(&shared), wire);
                }
                self.reflected += 1;
                ctx.count("reflector.reflected", 1);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        // Stop-the-world: burn CPU so every queued packet waits.
        let pause_secs = ctx
            .rng()
            .normal_f64(
                self.gc.pause_mean.as_secs_f64(),
                self.gc.pause_std.as_secs_f64(),
            )
            .max(0.0);
        ctx.spend_cpu(SimDuration::from_secs_f64(pause_secs));
        ctx.count("reflector.gc_pauses", 1);
        ctx.observe("reflector.gc_pause_ms", pause_secs * 1e3);
        self.schedule_gc(ctx);
    }
}

/// Media the direct sender produces.
pub enum DirectMedia {
    /// Bursty video frames.
    Video(VideoSource),
    /// Constant-rate audio.
    Audio(AudioSource),
}

/// A media sender feeding the reflector with raw RTP.
pub struct RtpDirectSender {
    reflector: ProcessId,
    media: DirectMedia,
    start_delay: SimDuration,
    max_packets: u64,
    send_cpu: SimDuration,
    sent: u64,
}

impl RtpDirectSender {
    /// Creates a sender; media starts after `start_delay` and stops after
    /// `max_packets`.
    pub fn new(
        reflector: ProcessId,
        media: DirectMedia,
        start_delay: SimDuration,
        max_packets: u64,
    ) -> Self {
        Self {
            reflector,
            media,
            start_delay,
            max_packets,
            send_cpu: SimDuration::from_micros(5),
            sent: 0,
        }
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn emit(&mut self, ctx: &mut Context<'_>, rtp: RtpPacket) {
        ctx.spend_cpu(self.send_cpu);
        let bytes = rtp.encode();
        let wire = bytes.len() + UDP_OVERHEAD;
        ctx.send(
            self.reflector,
            ReflectorMsg::Rtp(RawRtp {
                bytes,
                sent_at: ctx.now(),
            }),
            wire,
        );
        self.sent += 1;
        ctx.count("jmf.rtp_sent", 1);
    }
}

impl Process for RtpDirectSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.start_delay, 0);
    }

    fn on_packet(&mut self, _ctx: &mut Context<'_>, _packet: Packet) {}

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if self.sent >= self.max_packets {
            return;
        }
        let (packets, interval) = match &mut self.media {
            DirectMedia::Video(source) => (source.next_frame(), source.frame_interval()),
            DirectMedia::Audio(source) => (vec![source.next_packet()], source.frame_interval()),
        };
        for rtp in packets {
            if self.sent >= self.max_packets {
                break;
            }
            self.emit(ctx, rtp);
        }
        ctx.set_timer(interval, 0);
    }
}

/// A receiver of reflected RTP, measuring quality.
pub struct RtpDirectSink {
    recv_cpu: SimDuration,
    stats: ReceiverStats,
}

impl RtpDirectSink {
    /// Creates a sink; `payload_type` selects the jitter clock rate.
    pub fn new(payload_type: u8, recv_cpu: SimDuration) -> Self {
        Self {
            recv_cpu,
            stats: ReceiverStats::new(0, payload_type),
        }
    }

    /// Enables per-packet series capture.
    pub fn with_series_capture(mut self) -> Self {
        self.stats = self.stats.with_series_capture();
        self
    }

    /// This sink's quality statistics.
    pub fn stats(&self) -> &ReceiverStats {
        &self.stats
    }
}

impl Process for RtpDirectSink {
    fn on_packet(&mut self, ctx: &mut Context<'_>, packet: Packet) {
        let Some(ReflectorMsg::Rtp(raw)) = packet.payload::<ReflectorMsg>() else {
            ctx.count("jmf.sink_bad_payload", 1);
            return;
        };
        let arrival = ctx.now();
        match RtpPacket::decode(&raw.bytes) {
            Ok(rtp) => {
                self.stats.record(&rtp.header, raw.sent_at, arrival);
                ctx.count("jmf.rtp_received", 1);
            }
            Err(_) => ctx.count("jmf.rtp_decode_error", 1),
        }
        ctx.spend_cpu(self.recv_cpu);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmcs_rtp::packet::payload_type;
    use mmcs_rtp::source::{AudioCodec, VideoSourceConfig};
    use mmcs_sim::net::NicConfig;
    use mmcs_sim::Simulation;
    use mmcs_util::rng::DetRng;

    fn build(seed: u64, receivers: usize, gc: GcModel) -> (Simulation, Vec<ProcessId>) {
        let mut sim = Simulation::new(seed);
        let sender_host = sim.add_host("sender", NicConfig::default());
        let reflector_host = sim.add_host("reflector", NicConfig::default());
        let client_host = sim.add_host("clients", NicConfig::default());

        let mut reflector = ReflectorProcess::new(ReflectorCost::jmf(), gc);
        let mut sink_ids = Vec::new();
        // Registering receivers needs their process ids, so create sinks
        // first using a placeholder loop, then the reflector.
        let reflector_id_placeholder = ProcessId(0);
        let _ = reflector_id_placeholder;
        let mut sinks = Vec::new();
        for _ in 0..receivers {
            sinks.push(RtpDirectSink::new(
                payload_type::H263,
                SimDuration::from_micros(30),
            ));
        }
        for sink in sinks {
            sink_ids.push(sim.add_typed_process(client_host, sink));
        }
        for id in &sink_ids {
            reflector.add_receiver(*id);
        }
        let reflector_id = sim.add_typed_process(reflector_host, reflector);
        let source = VideoSource::new(VideoSourceConfig::default(), 1, DetRng::new(seed));
        sim.add_typed_process(
            sender_host,
            RtpDirectSender::new(
                reflector_id,
                DirectMedia::Video(source),
                SimDuration::from_millis(100),
                200,
            ),
        );
        (sim, sink_ids)
    }

    #[test]
    fn reflector_reaches_every_receiver() {
        let (mut sim, sinks) = build(7, 5, GcModel::none());
        sim.run_until(SimTime::from_secs(20));
        assert_eq!(sim.counter("jmf.rtp_sent"), 200);
        for sink in &sinks {
            let stats = sim.process_ref::<RtpDirectSink>(*sink).unwrap().stats();
            assert_eq!(stats.received(), 200);
            assert_eq!(stats.lost(), 0);
        }
    }

    #[test]
    fn gc_pauses_add_delay() {
        let (mut quiet_sim, quiet_sinks) = build(8, 5, GcModel::none());
        quiet_sim.run_until(SimTime::from_secs(20));
        let (mut gc_sim, gc_sinks) = build(8, 5, GcModel::java_1_4());
        gc_sim.run_until(SimTime::from_secs(20));
        let quiet: f64 = quiet_sinks
            .iter()
            .map(|s| quiet_sim.process_ref::<RtpDirectSink>(*s).unwrap().stats().delay_ms().mean())
            .sum();
        let paused: f64 = gc_sinks
            .iter()
            .map(|s| gc_sim.process_ref::<RtpDirectSink>(*s).unwrap().stats().delay_ms().mean())
            .sum();
        assert!(gc_sim.counter("reflector.gc_pauses") > 0);
        assert!(paused > quiet, "gc {paused} vs quiet {quiet}");
    }

    #[test]
    fn audio_reflection_works() {
        let mut sim = Simulation::new(1);
        let host = sim.add_host("all", NicConfig::default());
        let sink_id = sim.add_typed_process(
            host,
            RtpDirectSink::new(payload_type::PCMU, SimDuration::from_micros(10)),
        );
        let mut reflector = ReflectorProcess::new(ReflectorCost::jmf(), GcModel::none());
        reflector.add_receiver(sink_id);
        let reflector_id = sim.add_typed_process(host, reflector);
        sim.add_typed_process(
            host,
            RtpDirectSender::new(
                reflector_id,
                DirectMedia::Audio(AudioSource::new(AudioCodec::Pcmu, 5)),
                SimDuration::from_millis(10),
                25,
            ),
        );
        sim.run_until(SimTime::from_secs(2));
        let stats = sim.process_ref::<RtpDirectSink>(sink_id).unwrap().stats();
        assert_eq!(stats.received(), 25);
    }

    #[test]
    fn dynamic_registration_via_message() {
        struct Registrar {
            reflector: ProcessId,
            me_registered: bool,
        }
        impl Process for Registrar {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(self.reflector, ReflectorMsg::Register(ctx.me()), 64);
                self.me_registered = true;
            }
            fn on_packet(&mut self, ctx: &mut Context<'_>, _packet: Packet) {
                ctx.count("registrar.got_packet", 1);
            }
        }
        let mut sim = Simulation::new(1);
        let host = sim.add_host("all", NicConfig::default());
        let reflector_id = sim.add_typed_process(
            host,
            ReflectorProcess::new(ReflectorCost::jmf(), GcModel::none()),
        );
        sim.add_typed_process(
            host,
            Registrar {
                reflector: reflector_id,
                me_registered: false,
            },
        );
        sim.add_typed_process(
            host,
            RtpDirectSender::new(
                reflector_id,
                DirectMedia::Audio(AudioSource::new(AudioCodec::Pcmu, 5)),
                SimDuration::from_millis(50),
                3,
            ),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.counter("registrar.got_packet"), 3);
    }

    #[test]
    fn serial_fanout_is_slower_per_receiver_than_batched_broker() {
        // Pure cost-model check: reflecting to 400 receivers costs more
        // CPU than the batched broker fanning out the same packet.
        let jmf = ReflectorCost::jmf();
        let broker = mmcs_broker::batch::CostModel::narada();
        let bytes = 1060;
        let jmf_total: SimDuration =
            (0..400).map(|_| jmf.send_cost(bytes)).fold(SimDuration::ZERO, |a, b| a + b);
        let broker_total = broker.fanout_cost(400, bytes);
        assert!(jmf_total > broker_total * 1.5);
    }
}
