//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps [`std::sync`] primitives with `parking_lot`'s poison-free API:
//! `lock()` returns a guard directly, recovering the data if a previous
//! holder panicked (matching parking_lot, which has no poisoning).
//!
//! Unlike the real crate, this shim is **instrumented**: in debug builds
//! every lock carries the `file:line` of its construction site and every
//! blocking acquisition feeds a global lock-order graph. Acquiring locks
//! in an order that contradicts an order seen earlier — a potential
//! deadlock — panics immediately with both acquisition stacks, and a
//! watchdog records guards held longer than a threshold. See the
//! [`deadlock`] module. Release builds compile all of it away.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync;

pub mod deadlock;

use deadlock::Tracked;

/// A mutual-exclusion lock that never poisons.
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    site: &'static Location<'static>,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Declared before `tracked` so the std guard drops (unlocks) first
    // and the tracker then records the release.
    inner: sync::MutexGuard<'a, T>,
    #[allow(dead_code)]
    tracked: Tracked,
}

impl<T> Mutex<T> {
    /// Creates a new mutex. The caller's location becomes the lock's
    /// site id in the deadlock detector.
    #[track_caller]
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(debug_assertions)]
            site: Location::caller(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if this acquisition creates a lock-order
    /// cycle with acquisitions recorded earlier (potential deadlock).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        deadlock::on_blocking_acquire(self.site);
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
            tracked: self.tracked(),
        }
    }

    /// Tries to acquire the lock without blocking. Never records a
    /// lock-order edge: a non-blocking acquisition cannot close a wait
    /// cycle.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        deadlock::on_try_acquire(self.site);
        Some(MutexGuard {
            inner,
            tracked: self.tracked(),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    fn tracked(&self) -> Tracked {
        #[cfg(debug_assertions)]
        {
            Tracked::new(self.site)
        }
        #[cfg(not(debug_assertions))]
        {
            Tracked::new()
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    site: &'static Location<'static>,
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    #[allow(dead_code)]
    tracked: Tracked,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    #[allow(dead_code)]
    tracked: Tracked,
}

impl<T> RwLock<T> {
    /// Creates a new lock. The caller's location becomes the lock's site
    /// id in the deadlock detector.
    #[track_caller]
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(debug_assertions)]
            site: Location::caller(),
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if this acquisition creates a lock-order
    /// cycle with acquisitions recorded earlier (potential deadlock).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        deadlock::on_blocking_acquire(self.site);
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
            tracked: self.tracked(),
        }
    }

    /// Acquires exclusive write access.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if this acquisition creates a lock-order
    /// cycle with acquisitions recorded earlier (potential deadlock).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        deadlock::on_blocking_acquire(self.site);
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
            tracked: self.tracked(),
        }
    }

    fn tracked(&self) -> Tracked {
        #[cfg(debug_assertions)]
        {
            Tracked::new(self.site)
        }
        #[cfg(not(debug_assertions))]
        {
            Tracked::new()
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn consistent_nesting_order_does_not_panic() {
        let outer = Mutex::new(());
        let inner = Mutex::new(());
        for _ in 0..3 {
            let _a = outer.lock();
            let _b = inner.lock();
        }
    }
}
