//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps [`std::sync`] primitives with `parking_lot`'s poison-free API:
//! `lock()` returns a guard directly, recovering the data if a previous
//! holder panicked (matching parking_lot, which has no poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(guard)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
